//! End-to-end pipeline tests: the timing core must execute real kernels
//! correctly (oracle-verified) and reproduce the paper's first-order
//! effects — CFD eliminating mispredictions and beating the baseline.

use cfd_analysis::apply_cfd;
use cfd_core::{BqMissPolicy, CheckpointPolicy, Core, CoreConfig, PerfectMode, RunReport};
use cfd_isa::{Assembler, Machine, MemImage, Program, Reg};

fn r(i: usize) -> Reg {
    Reg::new(i)
}

/// The canonical separable-branch kernel (soplex Fig. 8 shape): scan
/// `test[]` against a threshold; the guarded region does real work.
/// `p_taken_percent` controls predicate randomness (50 = hardest).
fn separable_kernel(n: i64, p_taken_percent: u64) -> (Program, u32, MemImage) {
    let (i, nn, base, x, eps, p, tmp, cnt, sum) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
    let mut a = Assembler::new();
    a.li(nn, n);
    a.li(base, 0x10000);
    a.li(eps, p_taken_percent as i64);
    a.label("top");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, base);
    a.ld(x, 0, tmp);
    a.slt(p, x, eps);
    let bpc = a.here();
    a.annotate("separable branch");
    a.beqz(p, "skip");
    a.add(sum, sum, x);
    a.addi(cnt, cnt, 1);
    a.xor(r(10), sum, cnt);
    a.add(r(11), r(11), r(10));
    a.sub(r(12), r(11), sum);
    a.add(r(13), r(12), 7i64);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, nn, "top");
    a.halt();
    let program = a.finish().unwrap();
    let mut mem = MemImage::new();
    let mut x = 0x853c49e6748fea9bu64;
    for k in 0..n as u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mem.write_u64(0x10000 + 8 * k, x % 100);
    }
    (program, bpc, mem)
}

fn run(cfg: CoreConfig, program: Program, mem: MemImage) -> RunReport {
    Core::new(cfg, program, mem).unwrap().run(50_000_000).expect("simulation completes")
}

fn final_regs(program: &Program, mem: &MemImage, regs: &[Reg]) -> Vec<i64> {
    let mut m = Machine::new(program.clone(), mem.clone());
    m.run_to_halt().unwrap();
    regs.iter().map(|&x| m.regs.read(x)).collect()
}

#[test]
fn baseline_runs_and_verifies_against_oracle() {
    let (program, _, mem) = separable_kernel(2_000, 50);
    let rep = run(CoreConfig::default(), program, mem);
    assert!(rep.stats.retired > 2_000 * 8);
    assert!(rep.ipc() > 0.2, "ipc = {}", rep.ipc()); // streaming cold misses feed the branch
}

#[test]
fn random_separable_branch_mispredicts_in_baseline() {
    let (program, bpc, mem) = separable_kernel(4_000, 50);
    let rep = run(CoreConfig::default(), program, mem);
    let b = rep.stats.branches.get(&bpc).expect("branch retired");
    let rate = b.mispredicted as f64 / b.executed as f64;
    assert!(rate > 0.2, "a 50/50 data-dependent branch must stay hard, rate={rate}");
}

#[test]
fn cfd_eliminates_separable_branch_mispredictions() {
    let (program, bpc, mem) = separable_kernel(4_000, 50);
    let rep = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
    let out = run(CoreConfig::default(), rep.program, mem);
    // All Branch_on_BQ pops must resolve from the BQ (early push).
    assert!(out.stats.bq_hits > 3_900, "bq hits: {}", out.stats.bq_hits);
    let miss_rate = out.stats.bq_misses as f64 / (out.stats.bq_hits + out.stats.bq_misses) as f64;
    assert!(miss_rate < 0.02, "BQ miss rate {miss_rate}");
    // Branch_on_BQ never shows up as a misprediction unless speculated.
    assert_eq!(out.stats.bq_spec_recoveries, 0);
}

#[test]
fn cfd_outperforms_baseline_on_hard_branch() {
    let (program, bpc, mem) = separable_kernel(6_000, 50);
    let base = run(CoreConfig::default(), program.clone(), mem.clone());
    let t = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
    let cfd = run(CoreConfig::default(), t.program, mem);
    let speedup = cfd.speedup_over(&base);
    assert!(speedup > 1.1, "CFD speedup {speedup:.3} (base {} cy, cfd {} cy)", base.stats.cycles, cfd.stats.cycles);
}

#[test]
fn cfd_and_base_compute_identical_results() {
    let (program, bpc, mem) = separable_kernel(1_000, 50);
    let t = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
    let outs = [r(8), r(9), r(11), r(12), r(13)];
    assert_eq!(final_regs(&program, &mem, &outs), final_regs(&t.program, &mem, &outs));
    // And the timing core retires the same architectural results (the
    // internal oracle check would fail otherwise).
    run(CoreConfig::default(), t.program, mem);
}

#[test]
fn perfect_prediction_beats_baseline() {
    let (program, _, mem) = separable_kernel(4_000, 50);
    let base = run(CoreConfig::default(), program.clone(), mem.clone());
    let cfg = CoreConfig { perfect: PerfectMode::All, ..Default::default() };
    let perfect = run(cfg, program, mem);
    assert_eq!(perfect.stats.mispredictions, 0, "perfect prediction mispredicts nothing");
    assert!(perfect.speedup_over(&base) > 1.1, "speedup {}", perfect.speedup_over(&base));
}

#[test]
fn perfect_single_pc_mode_only_covers_that_branch() {
    let (program, bpc, mem) = separable_kernel(3_000, 50);
    let cfg = CoreConfig { perfect: PerfectMode::Pcs([bpc].into_iter().collect()), ..Default::default() };
    let rep = run(cfg, program, mem);
    let b = rep.stats.branches.get(&bpc).expect("branch retired");
    assert_eq!(b.mispredicted, 0, "covered branch is perfect");
}

#[test]
fn biased_branch_is_easy_for_the_baseline() {
    let (program, bpc, mem) = separable_kernel(4_000, 97);
    let rep = run(CoreConfig::default(), program, mem);
    let b = rep.stats.branches.get(&bpc).expect("branch retired");
    let rate = b.mispredicted as f64 / b.executed as f64;
    assert!(rate < 0.08, "a 97% biased branch should be easy, rate={rate}");
}

#[test]
fn deeper_front_end_hurts_baseline_more_than_cfd() {
    let (program, bpc, mem) = separable_kernel(4_000, 50);
    let t = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();

    let shallow = CoreConfig { front_depth: 3, ..Default::default() };
    let deep = CoreConfig { front_depth: 18, ..Default::default() };

    let base_shallow = run(shallow.clone(), program.clone(), mem.clone());
    let base_deep = run(deep.clone(), program.clone(), mem.clone());
    let cfd_shallow = run(shallow, t.program.clone(), mem.clone());
    let cfd_deep = run(deep, t.program, mem);

    let base_slowdown = base_deep.stats.cycles as f64 / base_shallow.stats.cycles as f64;
    let cfd_slowdown = cfd_deep.stats.cycles as f64 / cfd_shallow.stats.cycles as f64;
    assert!(
        cfd_slowdown < base_slowdown,
        "CFD is insensitive to pipeline depth: cfd {cfd_slowdown:.3} vs base {base_slowdown:.3}"
    );
}

#[test]
fn bq_stall_policy_still_correct() {
    let (program, bpc, mem) = separable_kernel(1_500, 50);
    let t = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
    let cfg = CoreConfig { bq_miss_policy: BqMissPolicy::Stall, ..Default::default() };
    let rep = run(cfg, t.program, mem);
    assert_eq!(rep.stats.bq_spec_recoveries, 0, "stall policy never speculates");
}

#[test]
fn tiny_bq_forces_strip_mining_and_stays_correct() {
    let (program, bpc, mem) = separable_kernel(2_000, 50);
    let t = apply_cfd(&program, bpc, 8, &[r(20), r(21), r(22), r(23)]).unwrap();
    let cfg = CoreConfig { bq_size: 8, vq_size: 8, ..Default::default() };
    let rep = run(cfg, t.program, mem);
    assert!(rep.stats.bq_push_stall_cycles < rep.stats.cycles, "no livelock");
}

/// Hoist-only CFD (the tiff-2-bw case, §VII-A): predicate computed a few
/// instructions ahead *within* the same loop — insufficient fetch
/// separation, so BQ misses (late pushes) occur and speculation kicks in.
#[test]
fn hoist_only_cfd_suffers_bq_misses_but_stays_correct() {
    let (i, nn, base, x, p, tmp, cnt) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    let mut a = Assembler::new();
    let n = 3_000i64;
    a.li(nn, n);
    a.li(base, 0x10000);
    a.label("top");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, base);
    a.ld(x, 0, tmp);
    a.slt(p, x, 50i64);
    a.push_bq(p); // pushed just ahead of its pop: late push territory
    a.nop();
    a.nop();
    a.branch_on_bq("skip");
    a.addi(cnt, cnt, 1);
    a.add(r(8), r(8), x);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, nn, "top");
    a.halt();
    let program = a.finish().unwrap();
    let mut mem = MemImage::new();
    let mut s = 0x2545f4914f6cdd1du64;
    for k in 0..n as u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        mem.write_u64(0x10000 + 8 * k, s % 100);
    }
    let rep = run(CoreConfig::default(), program, mem);
    assert!(rep.stats.bq_misses > 100, "hoist-only must see BQ misses, got {}", rep.stats.bq_misses);
    assert!(rep.stats.bq_spec_recoveries > 10, "some speculative pops fail, got {}", rep.stats.bq_spec_recoveries);
}

/// Separable loop-branch driven by the TQ (astar Fig. 14 shape).
#[test]
fn tq_eliminates_inner_loop_branch_mispredictions() {
    let n = 2_000i64;
    let trips = 0x20000u64;

    // Base: for i { for j in 0..a[i] { work } } with random short trips.
    let build_base = || {
        let (i, nn, j, m, base, tmp, acc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut a = Assembler::new();
        a.li(nn, n);
        a.li(base, trips as i64);
        a.label("outer");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(m, 0, tmp);
        a.li(j, 0);
        a.j("test");
        a.label("body");
        a.addi(acc, acc, 1);
        a.addi(j, j, 1);
        a.label("test");
        let bpc = a.here();
        a.blt(j, m, "body");
        a.addi(i, i, 1);
        a.blt(i, nn, "outer");
        a.halt();
        (a.finish().unwrap(), bpc)
    };
    // CFD(TQ): loop 1 pushes trip counts; loop 2 pops and uses the TCR.
    let build_tq = || {
        let (i, nn, base, tmp, m, acc) = (r(1), r(2), r(5), r(6), r(4), r(7));
        let mut a = Assembler::new();
        a.li(nn, n);
        a.li(base, trips as i64);
        // Strip-mine in chunks of 256 (the TQ size).
        a.li(r(10), 0); // chunk start
        a.label("chunk");
        a.addi(r(11), r(10), 256);
        a.min(r(11), r(11), nn);
        a.mv(i, r(10));
        a.label("gen");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(m, 0, tmp);
        a.push_tq(m);
        a.addi(i, i, 1);
        a.blt(i, r(11), "gen");
        a.mv(i, r(10));
        a.label("use");
        a.pop_tq();
        a.j("test");
        a.label("body");
        a.addi(acc, acc, 1);
        a.label("test");
        a.branch_on_tcr("body");
        a.addi(i, i, 1);
        a.blt(i, r(11), "use");
        a.mv(r(10), i);
        a.blt(r(10), nn, "chunk");
        a.halt();
        a.finish().unwrap()
    };

    let mut mem = MemImage::new();
    let mut s = 0x9e3779b97f4a7c15u64;
    for k in 0..n as u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        mem.write_u64(trips + 8 * k, s % 10); // trips 0..9 like astar
    }

    let (base_prog, bpc) = build_base();
    let tq_prog = build_tq();
    // Same architectural result.
    assert_eq!(final_regs(&base_prog, &mem, &[r(7)]), final_regs(&tq_prog, &mem, &[r(7)]));

    let base = run(CoreConfig::default(), base_prog, mem.clone());
    let tq = run(CoreConfig::default(), tq_prog, mem);

    let base_branch = base.stats.branches.get(&bpc).expect("inner branch");
    assert!(
        base_branch.mispredicted * 10 > base_branch.executed,
        "random trip counts must hurt the baseline ({} / {})",
        base_branch.mispredicted,
        base_branch.executed
    );
    // The TQ version's Branch_on_TCR never mispredicts; overall
    // mispredictions drop dramatically.
    assert!(
        tq.stats.mispredictions * 4 < base.stats.mispredictions,
        "TQ mispredicts {} vs base {}",
        tq.stats.mispredictions,
        base.stats.mispredictions
    );
    assert!(tq.speedup_over(&base) > 1.02, "TQ speedup {}", tq.speedup_over(&base));
}

#[test]
fn checkpoint_starvation_falls_back_to_retire_recovery() {
    let (program, _, mem) = separable_kernel(2_000, 50);
    let cfg = CoreConfig { checkpoint_policy: CheckpointPolicy::None, ..Default::default() };
    let none = run(cfg, program.clone(), mem.clone());
    assert_eq!(none.stats.immediate_recoveries, 0);
    assert!(none.stats.retire_recoveries > 0);
    let all = run(CoreConfig::default(), program, mem);
    assert!(all.stats.cycles < none.stats.cycles, "checkpoints must help recovery latency");
}

#[test]
fn mispredictions_attributed_to_memory_levels() {
    // Large footprint: the predicate loads miss beyond L1.
    let n = 40_000i64;
    let (program, bpc, _) = separable_kernel(n, 50);
    let mut mem = MemImage::new();
    let mut s = 7u64;
    for k in 0..n as u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        mem.write_u64(0x10000 + 8 * k, s % 100);
    }
    let rep = run(CoreConfig::default(), program, mem);
    let b = rep.stats.branches.get(&bpc).expect("branch");
    let beyond_l1: u64 = b.mispredicted_by_level[2..].iter().sum();
    let _ = beyond_l1; // streaming footprint: most mispredicts are L1-fed here
    let fed: u64 = b.mispredicted_by_level[1..].iter().sum();
    assert!(fed > b.mispredicted / 2, "the predicate is memory-fed: {:?}", b.mispredicted_by_level);
}

#[test]
fn wrong_path_activity_is_counted() {
    let (program, _, mem) = separable_kernel(3_000, 50);
    let rep = run(CoreConfig::default(), program, mem);
    assert!(rep.stats.wrong_path_fetched > 1000, "hard branches imply wrong-path fetch");
    assert!(rep.stats.wrong_path_issued > 0);
    assert!(rep.stats.fetched > rep.stats.retired);
}

#[test]
fn save_restore_macro_ops_run_in_timing_sim() {
    let (p, base) = (r(1), r(2));
    let mut a = Assembler::new();
    a.li(base, 0x40000);
    a.li(p, 1);
    a.push_bq(p);
    a.li(p, 0);
    a.push_bq(p);
    a.save_bq(0, base);
    a.branch_on_bq("s1");
    a.label("s1");
    a.branch_on_bq("s2");
    a.label("s2");
    a.restore_bq(0, base);
    a.branch_on_bq("s3");
    a.addi(r(3), r(3), 1); // first predicate true -> executes
    a.label("s3");
    a.branch_on_bq("s4");
    a.addi(r(3), r(3), 10); // second predicate false -> skipped
    a.label("s4");
    a.halt();
    let program = a.finish().unwrap();
    let want = final_regs(&program, &MemImage::new(), &[r(3)]);
    assert_eq!(want, vec![1]);
    let rep = run(CoreConfig::default(), program, MemImage::new());
    assert!(rep.stats.retired > 10);
}

#[test]
fn icache_misses_are_cold_only() {
    let (program, _, mem) = separable_kernel(2_000, 50);
    let rep = run(CoreConfig::default(), program.clone(), mem.clone());
    assert!(rep.stats.icache_misses > 0, "cold I-misses expected");
    assert!(rep.stats.icache_misses < 16, "the kernel fits in a few I-blocks; got {}", rep.stats.icache_misses);
    let cfg = CoreConfig { model_icache: false, ..Default::default() };
    let no_ic = run(cfg, program, mem);
    assert_eq!(no_ic.stats.icache_misses, 0);
    assert!(no_ic.stats.cycles <= rep.stats.cycles, "modeling the I-cache can only add bubbles");
}

#[test]
fn jal_jr_return_prediction_via_ras() {
    // A helper "function" invoked from a loop: jal pushes the return
    // address, jr pops it; the RAS should predict returns perfectly.
    let (i, n, ret, acc) = (r(1), r(2), r(30), r(3));
    let mut a = Assembler::new();
    a.li(n, 500);
    a.j("main");
    a.label("helper");
    a.addi(acc, acc, 7);
    a.xor(acc, acc, 3i64);
    a.jr(ret);
    a.label("main");
    a.label("loop");
    a.jal(ret, "helper");
    a.addi(i, i, 1);
    a.blt(i, n, "loop");
    a.halt();
    let program = a.finish().unwrap();
    let want = {
        let mut m = Machine::new(program.clone(), MemImage::new());
        m.run_to_halt().unwrap();
        m.regs.read(acc)
    };
    let rep = run(CoreConfig::default(), program, MemImage::new());
    assert!(rep.stats.retired > 1500);
    // jr mispredictions would show as branch stats at the jr pc.
    let jr_pc = 4u32;
    if let Some(b) = rep.stats.branches.get(&jr_pc) {
        assert!(b.mispredicted <= 2, "RAS must predict returns: {} wrong", b.mispredicted);
    }
    let _ = want;
}

#[test]
fn pop_tq_brovf_takes_overflow_path_in_timing_sim() {
    let (t, acc) = (r(1), r(2));
    let mut a = Assembler::new();
    // Two entries: one overflowing, one small.
    a.li(t, 1 << 20);
    a.push_tq(t);
    a.li(t, 2);
    a.push_tq(t);
    // First pop overflows -> fallback path adds 100.
    a.pop_tq_brovf("fallback1");
    a.addi(acc, acc, 1);
    a.j("second");
    a.label("fallback1");
    a.addi(acc, acc, 100);
    a.label("second");
    // Second pop is normal -> run the 2-iteration loop.
    a.pop_tq_brovf("fallback2");
    a.j("test");
    a.label("body");
    a.addi(acc, acc, 10);
    a.label("test");
    a.branch_on_tcr("body");
    a.j("end");
    a.label("fallback2");
    a.addi(acc, acc, 1000);
    a.label("end");
    a.halt();
    let program = a.finish().unwrap();
    let want = {
        let mut m = Machine::new(program.clone(), MemImage::new());
        m.run_to_halt().unwrap();
        m.regs.read(acc)
    };
    assert_eq!(want, 120);
    // The timing run self-verifies against the oracle.
    run(CoreConfig::default(), program, MemImage::new());
}

#[test]
fn tiny_mshr_file_still_completes() {
    let (program, _, mem) = separable_kernel(1_500, 50);
    let mut cfg = CoreConfig::default();
    cfg.hierarchy.l1_mshrs = 2; // heavy MSHR pressure: retries must not hang
    let rep = run(cfg, program.clone(), mem.clone());
    let normal = run(CoreConfig::default(), program, mem);
    // MSHR starvation interacts with wrong-path timing in second-order
    // ways, so only sanity-bound the effect: same work, same ballpark.
    assert_eq!(rep.stats.retired, normal.stats.retired);
    let ratio = rep.stats.cycles as f64 / normal.stats.cycles as f64;
    assert!((0.5..4.0).contains(&ratio), "cycle ratio {ratio}");
}

#[test]
fn consecutive_pops_in_one_bundle_resolve_from_bq() {
    // Two back-to-back not-taken pops must both read consecutive BQ
    // entries in the same fetch bundle (§III-C4: predicates for the whole
    // bundle come from consecutive entries at the head).
    let (p, acc) = (r(1), r(2));
    let mut a = Assembler::new();
    a.li(p, 1);
    for _ in 0..6 {
        a.push_bq(p);
    }
    for k in 0..3 {
        let skip = format!("s{k}");
        a.branch_on_bq(&skip); // predicate 1 -> fall through (not taken)
        a.label(&skip);
        let skip2 = format!("t{k}");
        a.branch_on_bq(&skip2);
        a.label(&skip2);
        a.addi(acc, acc, 1);
    }
    a.halt();
    let rep = run(CoreConfig::default(), a.finish().unwrap(), MemImage::new());
    // At least the six architectural pops are fetched (failed speculations
    // refetch pops, so the fetch-side count may exceed six). Correctness is
    // guaranteed by the internal retire oracle having accepted the run.
    assert!(rep.stats.bq_hits + rep.stats.bq_misses >= 6);
    assert_eq!(rep.stats.retired, 17);
}

#[test]
fn branch_to_fall_through_never_recovers() {
    // A conditional branch whose taken target is its own fall-through has a
    // single successor: even a wrong predicted *direction* leaves fetch on
    // the correct path, so no recovery (and no fetch-oracle rewind) may
    // happen. The same holds for a degenerate `Branch_on_BQ`.
    let (i, n, p, acc) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
    let mut a = Assembler::new();
    a.li(n, 400);
    a.label("top");
    a.and(p, i, 3i64);
    a.slt(p, p, 2i64);
    let next = format!("n{}", 0);
    a.bnez(p, &next); // data-dependent direction, target == fall-through
    a.label(&next);
    a.add(acc, acc, p);
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let rep = run(CoreConfig::default(), a.finish().unwrap(), MemImage::new());
    // The run retires exactly the architectural stream (the internal retire
    // oracle verified every instruction), and the degenerate branch caused
    // no recoveries beyond the loop latch's own cold mispredictions.
    assert_eq!(rep.stats.retired, 2 + 400 * 6);
    assert!(
        rep.stats.mispredictions < 10,
        "degenerate branch must not count as mispredicted: {}",
        rep.stats.mispredictions
    );
}
