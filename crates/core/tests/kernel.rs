//! Yield-based stepping kernel: the event stream must be a pure
//! observation layer — same results as a monolithic run, resumable at
//! every yield, with a terminal `Halted`.

use cfd_core::{Core, CoreConfig, KernelEvent, YieldPolicy};
use cfd_isa::{Assembler, MemImage, Program, Reg};

const LIMIT: u64 = 10_000_000;

/// A loop with a data-dependent branch (some recoveries guaranteed).
fn demo_program() -> Program {
    let (i, n, p, acc) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
    let mut a = Assembler::new();
    a.li(n, 3000);
    a.label("top");
    a.xor(p, i, 5i64);
    a.and(p, p, 1i64);
    a.beqz(p, "skip");
    a.addi(acc, acc, 1);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    a.finish().unwrap()
}

fn new_core(policy: YieldPolicy) -> Core {
    Core::new(CoreConfig::default(), demo_program(), MemImage::new()).unwrap().with_yield_policy(policy)
}

/// Driving the kernel event by event produces a report byte-identical to
/// a monolithic `run`, whatever the yield cadence.
#[test]
fn event_stream_run_matches_plain_run() {
    let plain = Core::new(CoreConfig::default(), demo_program(), MemImage::new()).unwrap().run(LIMIT).unwrap();
    let policy = YieldPolicy { retire_batch: 512, on_recovery: true, on_fault: true, heartbeat_interval: 777 };
    let mut core = new_core(policy);
    let mut events = 0u64;
    loop {
        match core.next_event(LIMIT).unwrap() {
            KernelEvent::Halted { cycle, retired } => {
                assert_eq!(cycle, plain.stats.cycles);
                assert_eq!(retired, plain.stats.retired);
                break;
            }
            _ => events += 1,
        }
    }
    assert!(events > 0, "policy yielded nothing before halt");
    assert_eq!(format!("{:?}", core.finish()), format!("{plain:?}"));
}

/// Yield cadences honour the policy: retire batches are spaced by at
/// least the batch size, heartbeats land exactly on interval multiples,
/// and recoveries carry plausible coordinates.
#[test]
fn yield_cadence_follows_policy() {
    let policy = YieldPolicy { retire_batch: 1000, on_recovery: true, on_fault: false, heartbeat_interval: 2000 };
    let mut core = new_core(policy);
    let (mut last_batch_retired, mut batches, mut beats, mut recoveries) = (0u64, 0u64, 0u64, 0u64);
    loop {
        match core.next_event(LIMIT).unwrap() {
            KernelEvent::RetireBatch { retired, .. } => {
                assert!(retired >= last_batch_retired + policy.retire_batch, "batch under threshold");
                last_batch_retired = retired;
                batches += 1;
            }
            KernelEvent::Heartbeat { cycle, .. } => {
                assert_eq!(cycle % policy.heartbeat_interval, 0, "heartbeat off the interval grid");
                beats += 1;
            }
            KernelEvent::Recovery { squashed, .. } => {
                assert!(squashed > 0, "recovery squashed nothing");
                recoveries += 1;
            }
            KernelEvent::FaultDetected { .. } => panic!("no fault armed"),
            KernelEvent::Halted { .. } => break,
        }
    }
    assert!(batches >= 5, "expected several retire batches, got {batches}");
    assert!(beats >= 1, "expected at least one heartbeat, got {beats}");
    assert!(recoveries >= 1, "data-dependent branch produced no recoveries");
}

/// `Halted` is terminal and idempotent; `finish` packages the report.
#[test]
fn halted_repeats_after_completion() {
    let mut core = new_core(YieldPolicy::silent());
    let first = core.next_event(LIMIT).unwrap();
    let KernelEvent::Halted { cycle, retired } = first else {
        panic!("silent policy must go straight to Halted, got {first:?}");
    };
    for _ in 0..3 {
        assert_eq!(core.next_event(LIMIT).unwrap(), KernelEvent::Halted { cycle, retired });
    }
    let report = core.finish();
    assert_eq!(report.stats.cycles, cycle);
    assert_eq!(report.stats.retired, retired);
}
