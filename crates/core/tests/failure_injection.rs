//! Failure injection: programs that violate the CFD ISA ordering rules
//! (§III-A) must be *detected* — surfaced as simulation errors — never
//! silently mis-executed or hung — and injected microarchitectural
//! faults (see `cfd_core::fault`) must end masked, typed, or
//! watchdog-tripped, never silently divergent.

use cfd_core::{Core, CoreConfig, CoreError, FaultKind, FaultSpec};
use cfd_isa::{Assembler, Machine, MemImage, MemWidth, Reg};

fn r(i: usize) -> Reg {
    Reg::new(i)
}

fn run(a: Assembler) -> Result<cfd_core::RunReport, CoreError> {
    Core::new(CoreConfig::default(), a.finish().unwrap(), MemImage::new()).unwrap().run(2_000_000)
}

#[test]
fn pop_without_push_is_detected() {
    // Violates "a push must precede its corresponding pop".
    let mut a = Assembler::new();
    a.branch_on_bq("skip");
    a.addi(r(1), r(1), 1);
    a.label("skip");
    a.halt();
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_)), "got {err}");
}

#[test]
fn push_overflow_is_detected() {
    // Violates "N cannot exceed the BQ size": 200 pushes, no pops.
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 200);
    a.li(p, 1);
    a.label("top");
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let err = run(a).unwrap_err();
    // The fetch unit stalls the push (its architectural pops never come),
    // while the functional oracle faults at the 129th push — either a
    // deadlock report or an oracle fault is an acceptable *detection*.
    assert!(matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }), "got {err}");
}

#[test]
fn forward_without_mark_is_detected() {
    let mut a = Assembler::new();
    a.forward_bq();
    a.halt();
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_)), "got {err}");
}

#[test]
fn vq_pop_without_push_is_detected() {
    let mut a = Assembler::new();
    a.pop_vq(r(1));
    a.halt();
    let err = run(a).unwrap_err();
    // The VQ renamer refuses to rename the pop (dispatch stalls) and the
    // deadlock detector reports it, or the oracle faults first.
    assert!(matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }), "got {err}");
}

#[test]
fn tq_pop_without_push_is_detected() {
    let mut a = Assembler::new();
    a.pop_tq();
    a.halt();
    let err = run(a).unwrap_err();
    // TQ misses stall fetch forever when no push exists.
    assert!(matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }), "got {err}");
}

#[test]
fn runaway_program_hits_cycle_limit() {
    let mut a = Assembler::new();
    a.label("spin");
    a.j("spin");
    let err = Core::new(CoreConfig::default(), a.finish().unwrap(), MemImage::new()).unwrap().run(10_000).unwrap_err();
    assert!(matches!(err, CoreError::CycleLimit(10_000)), "got {err}");
}

#[test]
fn pc_off_the_end_is_detected() {
    // No halt: the PC runs off the program.
    let mut a = Assembler::new();
    a.addi(r(1), r(1), 1);
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }), "got {err}");
}

#[test]
fn unknown_predictor_is_a_config_error() {
    let mut a = Assembler::new();
    a.halt();
    let cfg = CoreConfig { predictor: "oracle-of-delphi".to_string(), ..Default::default() };
    let Err(err) = Core::new(cfg, a.finish().unwrap(), MemImage::new()) else {
        panic!("unknown predictor accepted");
    };
    assert!(matches!(err, CoreError::Config(_)), "got {err}");
    assert!(err.to_string().contains("oracle-of-delphi"), "error names the predictor: {err}");
}

#[test]
fn zero_sized_queue_is_a_config_error() {
    let mut a = Assembler::new();
    a.halt();
    let cfg = CoreConfig { bq_size: 0, ..Default::default() };
    let Err(err) = Core::new(cfg, a.finish().unwrap(), MemImage::new()) else {
        panic!("zero-sized queue accepted");
    };
    assert!(matches!(err, CoreError::Config(_)), "got {err}");
}

#[test]
fn bq_overflow_inside_mark_forward_region_is_detected() {
    // A Mark/Forward region whose body pushes more predicates than the BQ
    // holds: the pushes stall at fetch, the Forward that would drain them
    // is never reached, and the watchdog must report the hang.
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 200); // > default bq_size of 128
    a.li(p, 1);
    a.mark_bq();
    a.label("top");
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.forward_bq();
    a.halt();
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }), "got {err}");
}

#[test]
fn vq_push_with_full_queue_at_rename_is_detected() {
    // More live VQ pushes than the renamer holds and no pops: rename
    // stalls the overflowing push forever.
    let (i, n, v) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 200); // > default vq_size of 128
    a.label("top");
    a.addi(v, v, 7);
    a.push_vq(v);
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }), "got {err}");
}

#[test]
fn tq_pop_racing_branch_on_tcr_drains_deterministically() {
    // A second Pop_TQ reloads the TCR while the first trip count is still
    // draining. The fetch-resident TQ and the architectural model agree on
    // this race by construction; the retirement oracle verifies it.
    let (c, acc) = (r(1), r(2));
    let mut a = Assembler::new();
    a.li(c, 5);
    a.push_tq(c);
    a.li(c, 3);
    a.push_tq(c);
    a.pop_tq(); // TCR = 5
    a.label("body1");
    a.addi(acc, acc, 1);
    a.branch_on_tcr("midpop"); // first decrement: branch taken while draining
    a.j("done");
    a.label("midpop");
    a.pop_tq(); // TCR = 3, clobbering the remaining trips of the first count
    a.label("body2");
    a.addi(acc, acc, 10);
    a.branch_on_tcr("body2");
    a.label("done");
    a.halt();
    let program = a.finish().unwrap();
    // Functional reference.
    let mut m = Machine::new(program.clone(), MemImage::new());
    m.run_to_halt().unwrap();
    let want_acc = m.regs.read(acc);
    let want_retired = m.retired();
    // The timing core must retire the identical stream.
    let rep = Core::new(CoreConfig::default(), program, MemImage::new())
        .unwrap()
        .run(2_000_000)
        .expect("the race is architecturally well-defined");
    assert_eq!(rep.stats.retired, want_retired);
    assert!(want_acc > 0);
}

#[test]
fn mismatched_push_pop_counts_are_detected() {
    // Two pushes, three pops.
    let p = r(1);
    let mut a = Assembler::new();
    a.li(p, 1);
    a.push_bq(p);
    a.push_bq(p);
    for k in 0..3 {
        let l = format!("s{k}");
        a.branch_on_bq(&l);
        a.label(&l);
    }
    a.halt();
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }), "got {err}");
}

// ---------------------------------------------------------------------
// Fault-injection contract: every injected microarchitectural fault ends
// masked (architecturally identical result), detected (typed CoreError),
// or watchdog-tripped — never a silently divergent completed run.
// ---------------------------------------------------------------------

/// A CFD kernel with live BQ, VQ, TQ and loads, so every fault site in
/// `cfd_core::fault` is reachable: a gen loop loads `x`, pushes the
/// predicate and the value; a TCR-counted use loop pops both.
fn cfd_fault_kernel() -> (cfd_isa::Program, MemImage) {
    let (i, n, p, x, acc, base) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let iters = 48i64;
    let mut mem = MemImage::new();
    for k in 0..iters {
        mem.write(0x1000 + 8 * k as u64, (k * 37) % 19, MemWidth::B8);
    }
    let mut a = Assembler::new();
    a.li(n, iters);
    a.li(base, 0x1000);
    a.push_tq(n);
    a.label("gen");
    a.ld(x, 0, base);
    a.addi(base, base, 8);
    a.and(p, x, 1i64);
    a.push_bq(p);
    a.push_vq(x);
    a.addi(i, i, 1);
    a.blt(i, n, "gen");
    a.pop_tq();
    a.j("test");
    a.label("use");
    a.pop_vq(x);
    a.branch_on_bq("skip");
    a.add(acc, acc, x);
    a.label("skip");
    a.label("test");
    a.branch_on_tcr("use");
    a.sd(acc, 0, base);
    a.halt();
    (a.finish().unwrap(), mem)
}

/// Runs the kernel with `fault` injected at its `nth` site visit and
/// checks the contract. Returns the outcome for the caller to narrow.
fn run_faulted(fault: FaultKind, nth: u64) -> Result<cfd_core::RunReport, CoreError> {
    let (program, mem) = cfd_fault_kernel();
    // Reference result of the *fault-free* program.
    let mut m = Machine::new(program.clone(), mem.clone());
    m.run_to_halt().unwrap();
    let want_retired = m.retired();
    let cfg = CoreConfig { watchdog_cycles: 20_000, post_mortem_depth: 32, ..Default::default() };
    let out = Core::new(cfg, program, mem).unwrap().with_fault(FaultSpec { kind: fault, nth }).run_diag(2_000_000);
    match out {
        Ok(rep) => {
            // Completed runs must be architecturally identical to the
            // reference (the fault was masked) — anything else would be a
            // silent divergence, which the contract forbids.
            assert!(rep.injection.is_some(), "fault never fired: {fault}");
            assert_eq!(rep.stats.retired, want_retired, "silent divergence under {fault}");
            assert_eq!(rep.stats.faults_injected, 1);
            Ok(rep)
        }
        Err(fail) => {
            // Detected: the report must carry the injection record and a
            // usable post-mortem dump.
            assert!(fail.injection.is_some(), "spontaneous failure without a fired fault");
            assert!(fail.post_mortem.contains("fetch_pc"), "post-mortem dump missing");
            Err(fail.error)
        }
    }
}

#[test]
fn predictor_flip_fault_is_masked() {
    // A flipped prediction is ordinary speculation gone wrong: normal
    // mispredict recovery must absorb it with no architectural effect.
    let rep = run_faulted(FaultKind::PredictorFlip, 0).expect("must be masked");
    assert!(rep.injection.is_some());
}

#[test]
fn mem_delay_fault_is_masked() {
    // A delayed memory response is a pure timing fault.
    let rep = run_faulted(FaultKind::MemDelay(400), 2).expect("must be masked");
    assert!(rep.injection.is_some());
}

#[test]
fn bq_corrupt_fault_is_detected() {
    // A flipped predicate in the BQ steers a Branch_on_BQ down the wrong
    // arm; the retirement oracle must catch the divergence.
    let err = run_faulted(FaultKind::BqCorrupt, 5).expect_err("must be detected");
    assert!(matches!(err, CoreError::OracleMismatch { .. }), "got {err}");
}

#[test]
fn bq_drop_fault_trips_the_watchdog() {
    // A dropped BQ entry never verifies its pop: commit stalls and the
    // bounded-latency watchdog must convert the hang into a report.
    let err = run_faulted(FaultKind::BqDrop, 7).expect_err("must be detected");
    assert!(matches!(err, CoreError::Deadlock { .. } | CoreError::OracleMismatch { .. }), "got {err}");
}

#[test]
fn tq_corrupt_fault_is_detected() {
    // A corrupted trip count makes Branch_on_TCR run the loop a wrong
    // number of times — an architectural divergence the oracle sees.
    let err = run_faulted(FaultKind::TqCorrupt, 0).expect_err("must be detected");
    assert!(matches!(err, CoreError::OracleMismatch { .. } | CoreError::Deadlock { .. }), "got {err}");
}

#[test]
fn vq_remap_corrupt_fault_never_diverges_silently() {
    // A corrupted VQ physical mapping reads a stale register. Depending
    // on what lives there it is either detected by the oracle or fully
    // masked — `run_faulted` asserts the completed run is architecturally
    // identical, so silence is impossible either way.
    match run_faulted(FaultKind::VqRemapCorrupt, 3) {
        Ok(rep) => assert!(rep.injection.is_some()),
        Err(err) => assert!(matches!(err, CoreError::OracleMismatch { .. } | CoreError::Deadlock { .. }), "got {err}"),
    }
}

#[test]
fn same_fault_spec_is_deterministic() {
    // Two runs with the same spec produce byte-identical outcomes —
    // the precondition for a reproducible campaign.
    let outcomes: Vec<String> = (0..2)
        .map(|_| match run_faulted(FaultKind::BqCorrupt, 5) {
            Ok(rep) => format!("ok cycles={} retired={}", rep.stats.cycles, rep.stats.retired),
            Err(e) => format!("err {e}"),
        })
        .collect();
    assert_eq!(outcomes[0], outcomes[1]);
}

#[test]
fn fault_free_run_reports_no_injection() {
    let (program, mem) = cfd_fault_kernel();
    let rep = Core::new(CoreConfig::default(), program, mem).unwrap().run(2_000_000).unwrap();
    assert!(rep.injection.is_none());
    assert_eq!(rep.stats.faults_injected, 0);
}
