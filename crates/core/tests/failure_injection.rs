//! Failure injection: programs that violate the CFD ISA ordering rules
//! (§III-A) must be *detected* — surfaced as simulation errors — never
//! silently mis-executed or hung.

use cfd_core::{Core, CoreConfig, CoreError};
use cfd_isa::{Assembler, MemImage, Reg};

fn r(i: usize) -> Reg {
    Reg::new(i)
}

fn run(a: Assembler) -> Result<cfd_core::RunReport, CoreError> {
    Core::new(CoreConfig::default(), a.finish().unwrap(), MemImage::new()).run(2_000_000)
}

#[test]
fn pop_without_push_is_detected() {
    // Violates "a push must precede its corresponding pop".
    let mut a = Assembler::new();
    a.branch_on_bq("skip");
    a.addi(r(1), r(1), 1);
    a.label("skip");
    a.halt();
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_)), "got {err}");
}

#[test]
fn push_overflow_is_detected() {
    // Violates "N cannot exceed the BQ size": 200 pushes, no pops.
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 200);
    a.li(p, 1);
    a.label("top");
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let err = run(a).unwrap_err();
    // The fetch unit stalls the push (its architectural pops never come),
    // while the functional oracle faults at the 129th push — either a
    // deadlock report or an oracle fault is an acceptable *detection*.
    assert!(
        matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }),
        "got {err}"
    );
}

#[test]
fn forward_without_mark_is_detected() {
    let mut a = Assembler::new();
    a.forward_bq();
    a.halt();
    let err = run(a).unwrap_err();
    assert!(matches!(err, CoreError::Program(_)), "got {err}");
}

#[test]
fn vq_pop_without_push_is_detected() {
    let mut a = Assembler::new();
    a.pop_vq(r(1));
    a.halt();
    let err = run(a).unwrap_err();
    // The VQ renamer refuses to rename the pop (dispatch stalls) and the
    // deadlock detector reports it, or the oracle faults first.
    assert!(
        matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }),
        "got {err}"
    );
}

#[test]
fn tq_pop_without_push_is_detected() {
    let mut a = Assembler::new();
    a.pop_tq();
    a.halt();
    let err = run(a).unwrap_err();
    // TQ misses stall fetch forever when no push exists.
    assert!(
        matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }),
        "got {err}"
    );
}

#[test]
fn runaway_program_hits_cycle_limit() {
    let mut a = Assembler::new();
    a.label("spin");
    a.j("spin");
    let err = Core::new(CoreConfig::default(), a.finish().unwrap(), MemImage::new())
        .run(10_000)
        .unwrap_err();
    assert!(matches!(err, CoreError::CycleLimit(10_000)), "got {err}");
}

#[test]
fn pc_off_the_end_is_detected() {
    // No halt: the PC runs off the program.
    let mut a = Assembler::new();
    a.addi(r(1), r(1), 1);
    let err = run(a).unwrap_err();
    assert!(
        matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }),
        "got {err}"
    );
}

#[test]
fn mismatched_push_pop_counts_are_detected() {
    // Two pushes, three pops.
    let p = r(1);
    let mut a = Assembler::new();
    a.li(p, 1);
    a.push_bq(p);
    a.push_bq(p);
    for k in 0..3 {
        let l = format!("s{k}");
        a.branch_on_bq(&l);
        a.label(&l);
    }
    a.halt();
    let err = run(a).unwrap_err();
    assert!(
        matches!(err, CoreError::Program(_) | CoreError::Deadlock { .. }),
        "got {err}"
    );
}
