//! Cooperative cancellation contract: a cycle budget kills a run at
//! exactly the budget cycle (deterministically), an unarmed or oversized
//! token never perturbs a run, and an externally-cancelled token stops
//! the loop before it turns.

use cfd_core::{CancelToken, Core, CoreConfig, CoreError};
use cfd_isa::{Assembler, MemImage, Program, Reg};

fn r(i: usize) -> Reg {
    Reg::new(i)
}

/// A long-enough busy loop: `n` iterations of a handful of ALU ops.
fn busy_kernel(n: i64) -> (Program, MemImage) {
    let (i, nn, acc, tmp) = (r(1), r(2), r(3), r(4));
    let mut a = Assembler::new();
    a.li(nn, n);
    a.label("top");
    a.add(acc, acc, i);
    a.xor(tmp, acc, i);
    a.add(acc, acc, tmp);
    a.addi(i, i, 1);
    a.blt(i, nn, "top");
    a.halt();
    (a.finish().unwrap(), MemImage::new())
}

fn core(token: Option<CancelToken>) -> Core {
    let (program, mem) = busy_kernel(20_000);
    let c = Core::new(CoreConfig::default(), program, mem).unwrap();
    match token {
        Some(t) => c.with_cancellation(t),
        None => c,
    }
}

#[test]
fn budget_cancels_at_exactly_the_budget_cycle() {
    for budget in [500u64, 1_234, 7_000] {
        let err = core(Some(CancelToken::with_budget(budget))).run(50_000_000).unwrap_err();
        assert_eq!(err, CoreError::Cancelled { cycle: budget, budget: Some(budget) });
    }
}

#[test]
fn unarmed_token_does_not_perturb_the_run() {
    let baseline = core(None).run(50_000_000).expect("completes");
    let with_token = core(Some(CancelToken::new())).run(50_000_000).expect("completes");
    assert_eq!(baseline.stats.cycles, with_token.stats.cycles);
    assert_eq!(baseline.stats.retired, with_token.stats.retired);
}

#[test]
fn oversized_budget_is_harmless() {
    let baseline = core(None).run(50_000_000).expect("completes");
    let roomy = core(Some(CancelToken::with_budget(50_000_000))).run(50_000_000).expect("completes");
    assert_eq!(baseline.stats.cycles, roomy.stats.cycles);
}

#[test]
fn external_cancel_stops_before_the_loop_turns() {
    let token = CancelToken::new();
    token.cancel();
    let err = core(Some(token.clone())).run(50_000_000).unwrap_err();
    assert_eq!(err, CoreError::Cancelled { cycle: 0, budget: None });
    // The loop published its heartbeat before honouring the cancel.
    assert_eq!(token.progress(), 0);
}

#[test]
fn budget_token_reports_progress_heartbeat() {
    let token = CancelToken::with_budget(2_000);
    let _ = core(Some(token.clone())).run(50_000_000);
    assert_eq!(token.progress(), 2_000, "last published heartbeat is the kill cycle");
}
