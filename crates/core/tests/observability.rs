//! Observability-layer guarantees on the live core:
//!
//! * CPI-stack exactness: components sum to `cycles × width` on every
//!   catalog workload, base and CFD variants alike;
//! * telemetry neutrality: arming telemetry changes no simulated number;
//! * sampling determinism: two armed runs produce byte-identical CSV and
//!   Perfetto JSON;
//! * gauge high-water marks equal the retirement-sampled
//!   `max_{bq,vq,tq}_occupancy` counters.

use cfd_core::{Core, CoreConfig, RunReport, TelemetryConfig};
use cfd_isa::{Assembler, MemImage, Reg};

const CYCLE_LIMIT: u64 = 50_000_000;

fn r(i: usize) -> Reg {
    Reg::new(i)
}

/// A small CFD kernel: push/pop over a data-dependent predicate, enough
/// to exercise BQ occupancy, recoveries and memory traffic.
fn cfd_kernel(n: i64) -> Assembler {
    let (i, nn, p, acc, base, x) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let mut a = Assembler::new();
    a.li(nn, n);
    a.li(base, 4096);
    a.label("lead");
    a.lw(x, 0, base);
    a.xor(p, i, 17i64);
    a.and(p, p, 1i64);
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, nn, "lead");
    a.li(i, 0);
    a.label("trail");
    a.branch_on_bq("skip");
    a.addi(acc, acc, 3);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, nn, "trail");
    a.halt();
    a
}

fn run_with(telemetry: Option<TelemetryConfig>) -> RunReport {
    let program = cfd_kernel(60).finish().unwrap();
    let mut core = Core::new(CoreConfig::default(), program, MemImage::new()).unwrap();
    if let Some(cfg) = telemetry {
        core = core.with_telemetry(cfg);
    }
    core.run(CYCLE_LIMIT).unwrap()
}

#[test]
fn cpi_stack_sums_exactly_on_catalog_workloads() {
    let cfg = CoreConfig::default();
    let width = cfg.width as u64;
    let scale = cfd_workloads::Scale { n: 120, seed: 0x5eed_cafe };
    for entry in cfd_workloads::catalog() {
        for &variant in entry.variants {
            let wl = entry.build(variant, scale);
            let report = Core::new(cfg.clone(), wl.program, wl.mem).unwrap().run(CYCLE_LIMIT).unwrap();
            let stack = report.stats.cpi_stack();
            assert_eq!(
                stack.check(report.stats.cycles, width),
                Ok(()),
                "{}/{}: {:?}",
                entry.name,
                variant.label(),
                stack.slots
            );
            // Base component is exactly the retirements inside counted
            // cycles: never more than retired, and the halting cycle
            // retires at most `width`.
            let base = stack.slots[0];
            assert!(base <= report.stats.retired);
            assert!(report.stats.retired - base <= width);
        }
    }
}

#[test]
fn telemetry_is_neutral() {
    let plain = run_with(None);
    let armed = run_with(Some(TelemetryConfig::default()));
    assert_eq!(plain.stats.cycles, armed.stats.cycles);
    assert_eq!(plain.stats.retired, armed.stats.retired);
    assert_eq!(plain.stats.mispredictions, armed.stats.mispredictions);
    assert_eq!(plain.stats.cpi_slots, armed.stats.cpi_slots);
    assert_eq!(plain.level_counts, armed.level_counts);
    assert!(plain.telemetry.is_none());
    assert!(armed.telemetry.is_some());
}

#[test]
fn sampling_is_byte_deterministic() {
    let cfg = TelemetryConfig { sample_interval: 50, trace: true };
    let a = run_with(Some(cfg)).telemetry.unwrap();
    let b = run_with(Some(cfg)).telemetry.unwrap();
    assert!(!a.series.is_empty(), "interval 50 must produce samples");
    assert_eq!(a.series.to_csv(), b.series.to_csv());
    assert_eq!(a.trace.to_json(), b.trace.to_json());
    assert_eq!(a.registry.render(), b.registry.render());
    // The final row lands at end-of-run and carries the full retirement
    // count (halting-cycle retirements included).
    let last = a.series.rows.last().unwrap();
    let run = run_with(None);
    assert_eq!(last[0], run.stats.cycles);
    assert_eq!(last[1], run.stats.retired);
}

#[test]
fn gauge_high_water_matches_max_occupancy_stats() {
    let report = run_with(Some(TelemetryConfig::default()));
    let t = report.telemetry.as_ref().unwrap();
    let gauge_max = |name: &str| t.registry.gauge(name).map(|g| g.max).unwrap_or(0);
    assert!(report.stats.max_bq_occupancy > 0, "kernel must occupy the BQ");
    assert_eq!(gauge_max("core.bq_occupancy"), report.stats.max_bq_occupancy);
    assert_eq!(gauge_max("core.vq_occupancy"), report.stats.max_vq_occupancy);
    assert_eq!(gauge_max("core.tq_occupancy"), report.stats.max_tq_occupancy);
}

#[test]
fn trace_records_recoveries_on_mispredicting_kernel() {
    // A hard-to-predict plain branch (no CFD): recoveries must appear as
    // instants in the trace.
    let (i, n, p, acc) = (r(1), r(2), r(3), r(4));
    let mut a = Assembler::new();
    a.li(n, 400);
    a.label("top");
    a.xor(p, i, 3i64);
    a.mul(p, p, 2654435761i64);
    a.and(p, p, 64i64);
    a.beqz(p, "skip");
    a.addi(acc, acc, 1);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let report = Core::new(CoreConfig::default(), a.finish().unwrap(), MemImage::new())
        .unwrap()
        .with_telemetry(TelemetryConfig::default())
        .run(CYCLE_LIMIT)
        .unwrap();
    assert!(report.stats.mispredictions > 0);
    let t = report.telemetry.unwrap();
    let recoveries = t.trace.events().iter().filter(|e| e.name == "recovery").count() as u64;
    assert!(recoveries > 0, "mispredictions must leave recovery instants");
    assert_eq!(t.registry.counter("core.recoveries"), recoveries);
    let squash = t.registry.histogram("core.squash_depth").expect("every recovery records its squash depth");
    assert_eq!(squash.n, recoveries);
    // Perfetto JSON must contain them and parse-shape correctly.
    let json = t.trace.to_json();
    assert!(json.contains("\"name\":\"recovery\""));
    assert!(json.starts_with("{\"traceEvents\":["));
}
