//! Dedicated rename-state tests: squash-walk round-trips, free-list
//! conservation, the taint lattice, and the scheduler's waiter lists.
//!
//! The in-module tests in `rename.rs` cover single operations; these
//! exercise the invariants the recovery path depends on across whole
//! sequences (a youngest-first squash walk must restore the RMT exactly
//! and conserve every physical register).

use cfd_core::{join_taint, PhysReg, RenameState, Taint};
use cfd_isa::Reg;
use cfd_mem::MemLevel;

const PRF: usize = 64;

/// All distinct taints, bottom to top.
const TAINTS: [Taint; 5] = [None, Some(MemLevel::L1), Some(MemLevel::L2), Some(MemLevel::L3), Some(MemLevel::Mem)];

#[test]
fn squash_walk_round_trips_the_rmt() {
    let mut rs = RenameState::new(PRF);
    let regs = [Reg::new(3), Reg::new(7), Reg::new(3), Reg::new(11), Reg::new(7)];
    let before: Vec<PhysReg> = regs.iter().map(|&r| rs.map(r)).collect();
    // Rename a straight-line burst (same register renamed twice).
    let mut walk: Vec<(Reg, PhysReg, PhysReg)> = Vec::new();
    for &r in &regs {
        let (p, prev) = rs.rename_dest(r).unwrap();
        walk.push((r, p, prev));
    }
    // Squash youngest-first, exactly like `recover_at`'s walk.
    for &(r, p, prev) in walk.iter().rev() {
        rs.unrename(r, p, prev);
    }
    for (&r, &b) in regs.iter().zip(&before) {
        assert_eq!(rs.map(r), b, "RMT not restored for {r:?}");
    }
}

#[test]
fn free_list_is_conserved_across_rename_and_squash() {
    let mut rs = RenameState::new(PRF);
    let baseline = rs.free_regs();
    let mut walk: Vec<(Reg, PhysReg, PhysReg)> = Vec::new();
    for i in 0..20 {
        let r = Reg::new(1 + (i % 5));
        let (p, prev) = rs.rename_dest(r).unwrap();
        walk.push((r, p, prev));
    }
    assert_eq!(rs.free_regs(), baseline - walk.len());
    for &(r, p, prev) in walk.iter().rev() {
        rs.unrename(r, p, prev);
    }
    // Every allocated register came back; none twice (free_phys
    // debug-asserts double frees).
    assert_eq!(rs.free_regs(), baseline);
}

#[test]
fn free_list_is_conserved_across_retirement() {
    // The retire-side half of conservation: when an overwriting
    // instruction retires, the *previous* mapping is freed. After N
    // renames of one register and N retirements the free count is back at
    // baseline: the newest mapping stays live holding the value, and the
    // originally arch-bound register has moved onto the free list in its
    // place.
    let mut rs = RenameState::new(PRF);
    let baseline = rs.free_regs();
    let r = Reg::new(9);
    let mut prevs = Vec::new();
    for _ in 0..10 {
        let (_, prev) = rs.rename_dest(r).unwrap();
        prevs.push(prev);
    }
    assert_eq!(rs.free_regs(), baseline - 10);
    for prev in prevs {
        rs.free_phys(prev);
    }
    assert_eq!(rs.free_regs(), baseline);
}

#[test]
fn taint_join_is_a_semilattice() {
    for a in TAINTS {
        // Idempotent.
        assert_eq!(join_taint(a, a), a);
        // None is the identity.
        assert_eq!(join_taint(a, None), a);
        assert_eq!(join_taint(None, a), a);
        // Mem is absorbing.
        assert_eq!(join_taint(a, Some(MemLevel::Mem)), Some(MemLevel::Mem));
        for b in TAINTS {
            // Commutative.
            assert_eq!(join_taint(a, b), join_taint(b, a));
            for c in TAINTS {
                // Associative.
                assert_eq!(join_taint(join_taint(a, b), c), join_taint(a, join_taint(b, c)));
            }
        }
    }
}

#[test]
fn waiters_drain_once_and_in_registration_order() {
    let mut rs = RenameState::new(PRF);
    let (p, _) = rs.rename_dest(Reg::new(4)).unwrap();
    let (q, _) = rs.rename_dest(Reg::new(5)).unwrap();
    rs.add_waiter(p, 17);
    rs.add_waiter(q, 23);
    rs.add_waiter(p, 19);
    assert_eq!(rs.waiting(), 3);
    // Producer-side drain returns p's waiters in registration order and
    // leaves q's untouched.
    assert_eq!(rs.take_waiters(p), vec![17, 19]);
    assert_eq!(rs.waiting(), 1);
    // A second drain is empty: a wakeup is delivered exactly once.
    assert!(rs.take_waiters(p).is_empty());
    assert_eq!(rs.take_waiters(q), vec![23]);
    assert_eq!(rs.waiting(), 0);
}

#[test]
fn ready_at_distinguishes_unissued_from_in_flight() {
    // The scheduler parks a consumer on the waiter list when the producer
    // has not issued (`ready_at == u64::MAX`) and on the wakeup wheel when
    // it has; this split depends on `ready_at` reporting both states.
    let mut rs = RenameState::new(PRF);
    let (p, _) = rs.rename_dest(Reg::new(6)).unwrap();
    assert_eq!(rs.ready_at(p), u64::MAX);
    assert!(!rs.is_ready(p, u64::MAX - 1));
    rs.write(p, -3, 42, Some(MemLevel::L2));
    assert_eq!(rs.ready_at(p), 42);
    assert!(!rs.is_ready(p, 41));
    assert!(rs.is_ready(p, 42));
    assert_eq!(rs.read(p), -3);
    assert_eq!(rs.taint(p), Some(MemLevel::L2));
}
