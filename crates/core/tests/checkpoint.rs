//! Checkpoint/restore determinism contract.
//!
//! The central claim (DESIGN.md §17): a core restored from a checkpoint
//! taken at cycle *C* and run to completion produces a `RunReport`
//! byte-identical to the uninterrupted run's. These tests exercise the
//! claim at every quarter point of every catalog workload (reduced scale;
//! `experiments ckpt` repeats it at full benchmark scale), reject
//! tampered checkpoints, and lockstep-compare architectural fingerprints
//! between an uninterrupted core and a restored twin at every heartbeat.

use cfd_core::{Core, CoreConfig, CoreError, KernelEvent, YieldPolicy};
use cfd_workloads::{catalog, Scale, Variant};

const LIMIT: u64 = 50_000_000;

/// Byte-comparison proxy: the derived `Debug` rendering covers every
/// `RunReport` field deterministically.
fn repr(report: &cfd_core::RunReport) -> String {
    format!("{report:?}")
}

fn test_scale() -> Scale {
    Scale { n: 200, seed: 0x5eed_cafe_f00d_d00d }
}

/// Runs `workload` uninterrupted, then re-runs it three times with a
/// checkpoint/restore round-trip at each quarter of the uninterrupted
/// cycle count, asserting byte-identical reports.
#[test]
fn quarter_point_roundtrips_match_uninterrupted() {
    for entry in catalog() {
        let w = entry.build(Variant::Base, test_scale());
        let full = Core::new(CoreConfig::default(), w.program.clone(), w.mem.clone())
            .unwrap()
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{}: uninterrupted run failed: {e}", entry.name));
        let full_repr = repr(&full);
        let cycles = full.stats.cycles;
        assert!(cycles >= 4, "{}: too short to quarter", entry.name);
        for quarter in 1..=3u64 {
            let at = cycles * quarter / 4;
            let mut core = Core::new(CoreConfig::default(), w.program.clone(), w.mem.clone())
                .unwrap()
                .with_yield_policy(YieldPolicy { heartbeat_interval: at, ..YieldPolicy::default() });
            match core.next_event(LIMIT) {
                Ok(KernelEvent::Heartbeat { cycle, .. }) => assert_eq!(cycle, at, "{}", entry.name),
                other => panic!("{}: expected heartbeat at {at}, got {other:?}", entry.name),
            }
            let ckpt = core.checkpoint();
            assert_eq!(ckpt.cycle(), at);
            let restored =
                Core::restore(ckpt).unwrap_or_else(|e| panic!("{}: restore at {at} rejected: {e}", entry.name));
            let resumed =
                restored.run(LIMIT).unwrap_or_else(|e| panic!("{}: resumed run from {at} failed: {e}", entry.name));
            assert_eq!(
                repr(&resumed),
                full_repr,
                "{}: restore at cycle {at} ({quarter}/4) diverged from uninterrupted run",
                entry.name
            );
        }
    }
}

/// A checkpoint whose captured state was mutated after sealing (or whose
/// version tag is unknown) must be rejected by restore.
#[test]
fn corrupt_checkpoint_rejected() {
    let entry = &catalog()[0];
    let w = entry.build(Variant::Base, test_scale());
    let mut core = Core::new(CoreConfig::default(), w.program.clone(), w.mem.clone())
        .unwrap()
        .with_yield_policy(YieldPolicy { heartbeat_interval: 500, ..YieldPolicy::default() });
    core.next_event(LIMIT).unwrap();

    let mut tampered = core.checkpoint();
    tampered.corrupt_state_for_test();
    match Core::restore(tampered) {
        Err(CoreError::Checkpoint(msg)) => assert!(msg.contains("digest"), "unexpected message: {msg}"),
        other => panic!("tampered state accepted: {other:?}", other = other.err()),
    }

    let mut wrong_version = core.checkpoint();
    wrong_version.corrupt_version_for_test();
    match Core::restore(wrong_version) {
        Err(CoreError::Checkpoint(msg)) => assert!(msg.contains("version"), "unexpected message: {msg}"),
        other => panic!("wrong version accepted: {other:?}", other = other.err()),
    }

    // An untouched checkpoint from the same core still restores.
    assert!(Core::restore(core.checkpoint()).is_ok());
}

/// Lockstep differential: an uninterrupted core and a checkpoint/restore
/// twin report identical architectural fingerprints at every heartbeat,
/// all the way to identical halts and byte-identical reports.
#[test]
fn lockstep_fingerprints_match_every_heartbeat() {
    let entry = &catalog()[0];
    let w = entry.build(Variant::Base, test_scale());
    let policy = YieldPolicy { heartbeat_interval: 250, ..YieldPolicy::default() };
    let new_core =
        || Core::new(CoreConfig::default(), w.program.clone(), w.mem.clone()).unwrap().with_yield_policy(policy);

    let mut reference = new_core();
    let mut subject = new_core();
    // Round-trip the subject through a checkpoint mid-flight after a few
    // heartbeats; the reference never stops.
    let mut beats = 0u64;
    loop {
        let a = reference.next_event(LIMIT).unwrap();
        let b = subject.next_event(LIMIT).unwrap();
        assert_eq!(a, b, "event streams diverged");
        assert_eq!(reference.fingerprint(), subject.fingerprint(), "fingerprints diverged at {a:?}");
        match a {
            KernelEvent::Halted { .. } => break,
            KernelEvent::Heartbeat { .. } => {
                beats += 1;
                if beats == 3 {
                    subject = Core::restore(subject.checkpoint()).unwrap();
                    assert_eq!(reference.fingerprint(), subject.fingerprint(), "restore changed state");
                }
            }
            _ => {}
        }
    }
    assert!(beats >= 3, "workload too short for the mid-flight round-trip");
    assert_eq!(repr(&reference.finish()), repr(&subject.finish()), "final reports diverged");
}
