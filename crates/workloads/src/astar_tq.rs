//! astar separable loop-branch analog (paper Fig. 14, Figs. 27/28).
//!
//! The original iterates an outer loop whose body is an inner loop with a
//! data-dependent trip count `a[i]` in 0..9 — the inner loop-branch defies
//! the predictor. Inside the inner loop there is *also* a hard separable
//! if-branch (the Fig. 28 follow-up). Variants:
//!
//! * **Base** — nested loops with both hard branches.
//! * **CfdTq** — trip counts ride the Trip-count Queue; `Branch_on_TCR`
//!   loops without mispredictions (Fig. 27).
//! * **CfdBq** — only the inner if-branch is decoupled through the BQ.
//! * **CfdBqTq** — both (Fig. 28; the paper finds the combination
//!   super-additive).

use crate::common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
use cfd_isa::{Assembler, MemImage, Program};

const TRIPS_BASE: u64 = 0x10_0000;
const DATA_BASE: u64 = 0x100_0000;
const DATA_MASK: i64 = 0xffff; // 64K-element inner data array
/// Outer chunk for strip mining. Each outer iteration pushes one trip count
/// (24 per chunk, well under the TQ's 256), but the BQ variant pushes one
/// predicate per *inner* iteration — up to 10 per outer iteration with
/// trips < 10 — so the BQ variants use a smaller chunk (12 x 10 < 128).
const TQ_CHUNK: i64 = 24;
const BQ_CHUNK: i64 = 12;

fn gen_mem(scale: Scale) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = Xorshift::new(scale.seed ^ 0x7912);
    for k in 0..scale.n as u64 {
        mem.write_u64(TRIPS_BASE + 8 * k, rng.below(10)); // trips 0..9 like astar
    }
    for k in 0..=(DATA_MASK as u64) {
        mem.write_u64(DATA_BASE + 8 * k, rng.next_u64() % 1000);
    }
    mem
}

/// Builds the requested variant.
///
/// Supported: `Base`, `CfdTq`, `CfdBq`, `CfdBqTq`.
///
/// # Panics
///
/// Panics on unsupported variants or internal assembly errors.
pub fn build(variant: Variant, scale: Scale) -> Workload {
    let (program, branches) = match variant {
        Variant::Base => build_base(scale),
        Variant::CfdTq => build_decoupled(scale, true, false),
        Variant::CfdBq => build_decoupled(scale, false, true),
        Variant::CfdBqTq => build_decoupled(scale, true, true),
        other => panic!("astar_tq_like does not support variant {other}"),
    };
    Workload {
        name: "astar_tq_like",
        variant,
        suite: Suite::Spec2006,
        program,
        mem: gen_mem(scale),
        observable: vec![regs::acc(0), regs::acc(1), regs::acc(6)],
        check_ranges: Vec::new(),
        interest: branches,
    }
}

/// Variants this kernel supports.
pub fn variants() -> &'static [Variant] {
    &[Variant::Base, Variant::CfdTq, Variant::CfdBq, Variant::CfdBqTq]
}

fn emit_preamble(a: &mut Assembler, scale: Scale) {
    a.li(regs::n(), scale.n as i64);
    a.li(regs::base_a(), TRIPS_BASE as i64);
    a.li(regs::base_b(), DATA_BASE as i64);
    a.li(regs::i(), 0);
}

/// `m = trips[i]`.
fn emit_load_trip(a: &mut Assembler) {
    let (i, base_a, m, tmp) = (regs::i(), regs::base_a(), regs::m(), regs::tmp());
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, base_a);
    // The data generator caps trips at 9 (astar's region sizes); the
    // hint lets the static verifier bound BQ traffic per outer
    // iteration (cfd-lint: value<=9).
    a.annotate("trip count load (cfd-lint: value<=9)");
    a.ld(m, 0, tmp);
}

/// `x = data[(i*13 + j*7) & MASK]` — the inner loop's data element.
fn emit_load_elem(a: &mut Assembler) {
    let (i, j, x, tmp, base_b) = (regs::i(), regs::j(), regs::x(), regs::tmp(), regs::base_b());
    a.mul(tmp, i, 13i64);
    a.mul(x, j, 7i64);
    a.add(tmp, tmp, x);
    a.and(tmp, tmp, DATA_MASK);
    a.sll(tmp, tmp, 3i64);
    a.add(tmp, tmp, base_b);
    a.ld(x, 0, tmp);
}

/// Inner body: `if (x & 1) { acc0 += x; acc1 ^= x } ; acc... always`.
fn emit_inner_if(a: &mut Assembler, label_suffix: &str, decoupled_bq: bool) -> u32 {
    let (x, p) = (regs::x(), regs::p());
    let (a0, a1) = (regs::acc(0), regs::acc(1));
    let skip = format!("skip_{label_suffix}");
    let bpc;
    if decoupled_bq {
        bpc = a.here();
        a.branch_on_bq(&skip);
    } else {
        a.and(p, x, 1i64);
        bpc = a.here();
        a.annotate("inner if: odd element");
        a.beqz(p, &skip);
    }
    a.add(a0, a0, x);
    a.xor(a1, a1, x);
    a.add(a1, a1, a0);
    a.sub(a0, a0, 3i64);
    a.xor(a0, a0, a1);
    a.label(&skip);
    bpc
}

fn build_base(scale: Scale) -> (Program, Vec<InterestBranch>) {
    let mut a = Assembler::new();
    let (i, n, j, m, cnt) = (regs::i(), regs::n(), regs::j(), regs::m(), regs::acc(6));
    emit_preamble(&mut a, scale);
    a.label("outer");
    emit_load_trip(&mut a);
    a.li(j, 0);
    a.j("inner_test");
    a.label("inner_body");
    emit_load_elem(&mut a);
    let if_pc = emit_inner_if(&mut a, "b", false);
    a.addi(cnt, cnt, 1);
    a.addi(j, j, 1);
    a.label("inner_test");
    let loop_pc = a.here();
    a.annotate("inner loop-branch: j < trips[i]");
    a.blt(j, m, "inner_body");
    a.addi(i, i, 1);
    a.blt(i, n, "outer");
    a.halt();
    let program = a.finish().expect("astar_tq base assembles");
    let branches = vec![
        InterestBranch { pc: loop_pc, what: "inner loop-branch: j < trips[i]", class: PaperClass::SeparableLoopBranch },
        InterestBranch { pc: if_pc, what: "inner if: odd element", class: PaperClass::SeparableTotal },
    ];
    (program, branches)
}

/// The decoupled version: a strip-mined first loop generates trip counts
/// (TQ) and/or inner predicates (BQ); the second loop consumes them.
fn build_decoupled(scale: Scale, use_tq: bool, use_bq: bool) -> (Program, Vec<InterestBranch>) {
    let chunk = if use_bq { BQ_CHUNK } else { TQ_CHUNK };
    let mut a = Assembler::new();
    let (i, n, j, m, p, x, cnt) = (regs::i(), regs::n(), regs::j(), regs::m(), regs::p(), regs::x(), regs::acc(6));
    let (cs, lim) = (regs::strip(0), regs::strip(1));
    emit_preamble(&mut a, scale);
    a.label("chunk");
    a.addi(lim, i, chunk);
    a.min(lim, lim, n);
    a.mv(cs, i);
    // ---- Loop 1: trip counts and/or inner predicates ----
    a.label("gen_outer");
    emit_load_trip(&mut a);
    if use_tq {
        a.push_tq(m);
    }
    if use_bq {
        // Push one predicate per inner iteration.
        a.li(j, 0);
        a.j("gen_inner_test");
        a.label("gen_inner_body");
        emit_load_elem(&mut a);
        a.and(p, x, 1i64);
        a.push_bq(p);
        a.addi(j, j, 1);
        a.label("gen_inner_test");
        a.blt(j, m, "gen_inner_body");
    }
    a.addi(i, i, 1);
    a.blt(i, lim, "gen_outer");
    a.mv(i, cs);
    // ---- Loop 2: consume ----
    a.label("use_outer");
    if use_tq {
        a.pop_tq();
        a.li(j, 0);
        a.j("use_inner_test");
    } else {
        emit_load_trip(&mut a);
        a.li(j, 0);
        a.j("use_inner_test");
    }
    a.label("use_inner_body");
    emit_load_elem(&mut a);
    emit_inner_if(&mut a, "u", use_bq);
    a.addi(cnt, cnt, 1);
    a.addi(j, j, 1);
    a.label("use_inner_test");
    if use_tq {
        a.branch_on_tcr("use_inner_body");
    } else {
        a.blt(j, m, "use_inner_body");
    }
    a.addi(i, i, 1);
    a.blt(i, lim, "use_outer");
    a.blt(i, n, "chunk");
    a.halt();
    (a.finish().expect("astar_tq decoupled assembles"), Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_agree_with_base() {
        let scale = Scale::small();
        let want = build(Variant::Base, scale).observe().unwrap();
        for v in [Variant::CfdTq, Variant::CfdBq, Variant::CfdBqTq] {
            assert_eq!(build(v, scale).observe().unwrap(), want, "variant {v} diverges");
        }
    }

    #[test]
    fn tq_variant_uses_tq_instructions() {
        let w = build(Variant::CfdTq, Scale::small());
        let instrs = w.program.instrs();
        assert!(instrs.iter().any(|i| matches!(i, cfd_isa::Instr::PushTq { .. })));
        assert!(instrs.iter().any(|i| matches!(i, cfd_isa::Instr::PopTq)));
        assert!(instrs.iter().any(|i| matches!(i, cfd_isa::Instr::BranchOnTcr { .. })));
        assert!(!instrs.iter().any(|i| matches!(i, cfd_isa::Instr::PushBq { .. })));
    }

    #[test]
    fn bqtq_variant_uses_both_queues() {
        let w = build(Variant::CfdBqTq, Scale::small());
        let instrs = w.program.instrs();
        assert!(instrs.iter().any(|i| matches!(i, cfd_isa::Instr::PushTq { .. })));
        assert!(instrs.iter().any(|i| matches!(i, cfd_isa::Instr::PushBq { .. })));
    }

    #[test]
    fn trip_counts_cover_zero() {
        // Zero-trip inner loops must be handled (Branch_on_TCR falls
        // through immediately).
        let scale = Scale { n: 300, seed: 11 };
        let w = build(Variant::Base, scale);
        let zero_trips = (0..300).filter(|&k| w.mem.read_u64(TRIPS_BASE + 8 * k) == 0).count();
        assert!(zero_trips > 0, "data must include zero trip counts");
        let want = build(Variant::Base, scale).observe().unwrap();
        assert_eq!(build(Variant::CfdTq, scale).observe().unwrap(), want);
    }

    #[test]
    fn queue_occupancy_fits_architected_sizes() {
        // Functional machines enforce capacity; a full run without queue
        // errors proves the strip mining respects BQ=128 / TQ=256.
        for v in [Variant::CfdTq, Variant::CfdBq, Variant::CfdBqTq] {
            build(v, Scale { n: 3_000, seed: 5 }).observe().unwrap();
        }
    }
}
