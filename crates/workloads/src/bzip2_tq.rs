//! bzip2 decompress analog for CFD(TQ) (paper Table IV, Fig. 27).
//!
//! Run-length expansion: each input token carries a data-dependent repeat
//! count; the inner copy loop's trip count (1..=32, skewed short) defeats
//! the loop predictor. The counts do not depend on the copy loop's body,
//! so the loop-branch is separable — a TQ target.

use crate::common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
use cfd_isa::{Assembler, MemImage, Program};

const RUNS_BASE: u64 = 0x10_0000;
const SYMS_BASE: u64 = 0x40_0000;
const OUT_BASE: u64 = 0x800_0000;
const CHUNK: i64 = 128; // max run 32 -> worst-case 128 pushes < TQ 256? 128*1 counts

fn gen_mem(scale: Scale) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = Xorshift::new(scale.seed ^ 0xb21b);
    for k in 0..scale.n as u64 {
        // Skewed-short run lengths: mostly 1-4, occasionally long.
        let run = if rng.chance(75) { 1 + rng.below(4) } else { 5 + rng.below(28) };
        mem.write_u64(RUNS_BASE + 8 * k, run);
        mem.write_u64(SYMS_BASE + 8 * k, rng.below(256));
    }
    mem
}

/// Builds the requested variant. Supported: `Base`, `CfdTq`.
///
/// # Panics
///
/// Panics on unsupported variants or internal assembly errors.
pub fn build(variant: Variant, scale: Scale) -> Workload {
    let (program, branches) = match variant {
        Variant::Base => build_kernel(scale, false),
        Variant::CfdTq => build_kernel(scale, true),
        other => panic!("bzip2_tq_like does not support variant {other}"),
    };
    Workload {
        name: "bzip2_tq_like",
        variant,
        suite: Suite::Spec2006,
        program,
        mem: gen_mem(scale),
        observable: vec![regs::acc(0), regs::acc(6)],
        check_ranges: Vec::new(),
        interest: branches,
    }
}

/// Variants this kernel supports.
pub fn variants() -> &'static [Variant] {
    &[Variant::Base, Variant::CfdTq]
}

fn build_kernel(scale: Scale, use_tq: bool) -> (Program, Vec<InterestBranch>) {
    let mut a = Assembler::new();
    let (i, n, j, m, x, out) = (regs::i(), regs::n(), regs::j(), regs::m(), regs::x(), regs::t(0));
    let (acc, cnt, tmp) = (regs::acc(0), regs::acc(6), regs::tmp());
    let (cs, lim) = (regs::strip(0), regs::strip(1));
    a.li(n, scale.n as i64);
    a.li(regs::base_a(), RUNS_BASE as i64);
    a.li(regs::base_b(), SYMS_BASE as i64);
    a.li(out, OUT_BASE as i64);
    a.li(i, 0);

    let load_run = |a: &mut Assembler| {
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, regs::base_a());
        a.ld(m, 0, tmp);
    };
    let load_sym = |a: &mut Assembler| {
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, regs::base_b());
        a.ld(x, 0, tmp);
    };

    let mut branches = Vec::new();
    if use_tq {
        a.label("chunk");
        a.addi(lim, i, CHUNK);
        a.min(lim, lim, n);
        a.mv(cs, i);
        a.label("gen");
        load_run(&mut a);
        a.push_tq(m);
        a.addi(i, i, 1);
        a.blt(i, lim, "gen");
        a.mv(i, cs);
        a.label("outer");
        load_sym(&mut a);
        a.pop_tq();
        a.j("inner_test");
        a.label("inner_body");
        a.sb(x, 0, out);
        a.addi(out, out, 1);
        a.add(acc, acc, x);
        a.addi(cnt, cnt, 1);
        a.label("inner_test");
        a.branch_on_tcr("inner_body");
        a.addi(i, i, 1);
        a.blt(i, lim, "outer");
        a.blt(i, n, "chunk");
    } else {
        a.label("outer");
        load_run(&mut a);
        load_sym(&mut a);
        a.li(j, 0);
        a.j("inner_test");
        a.label("inner_body");
        a.sb(x, 0, out);
        a.addi(out, out, 1);
        a.add(acc, acc, x);
        a.addi(cnt, cnt, 1);
        a.addi(j, j, 1);
        a.label("inner_test");
        let bpc = a.here();
        a.annotate("run-length copy loop");
        a.blt(j, m, "inner_body");
        a.addi(i, i, 1);
        a.blt(i, n, "outer");
        branches.push(InterestBranch { pc: bpc, what: "run-length copy loop", class: PaperClass::SeparableLoopBranch });
    }
    a.halt();
    (a.finish().expect("bzip2_tq assembles"), branches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tq_matches_base() {
        let scale = Scale::small();
        let want = build(Variant::Base, scale).observe().unwrap();
        assert_eq!(build(Variant::CfdTq, scale).observe().unwrap(), want);
    }

    #[test]
    fn output_counts_match_total_runs() {
        let scale = Scale { n: 500, seed: 3 };
        let w = build(Variant::Base, scale);
        let total: u64 = (0..500).map(|k| w.mem.read_u64(RUNS_BASE + 8 * k)).sum();
        let out = w.observe().unwrap();
        assert_eq!(out[1] as u64, total);
    }
}
