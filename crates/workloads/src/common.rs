//! Shared workload infrastructure: variants, scales, verification.

use cfd_isa::{Machine, MemImage, Program, Reg, SimError};
use std::fmt;

/// Which transformation of a kernel to build (paper §VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The original loop.
    Base,
    /// Control-flow decoupling with the Branch Queue.
    Cfd,
    /// CFD plus the Value Queue (CFD+, §IV-B).
    CfdPlus,
    /// Data-flow decoupling: software prefetch loop ahead of the original
    /// loop (§V).
    Dfd,
    /// DFD first (prefetching the predicate data), then CFD (Fig. 26).
    CfdDfd,
    /// CFD with the Trip-count Queue (separable loop-branches, §IV-C).
    CfdTq,
    /// CFD(BQ) applied to the inner branch of the TQ kernel (Fig. 28).
    CfdBq,
    /// Both TQ and BQ decoupling (Fig. 28).
    CfdBqTq,
    /// If-conversion of a hammock (synthesized select; §II comparison).
    IfConv,
}

impl Variant {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "base",
            Variant::Cfd => "cfd",
            Variant::CfdPlus => "cfd+",
            Variant::Dfd => "dfd",
            Variant::CfdDfd => "cfd+dfd",
            Variant::CfdTq => "cfd(tq)",
            Variant::CfdBq => "cfd(bq)",
            Variant::CfdBqTq => "cfd(bq+tq)",
            Variant::IfConv => "if-conv",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The benchmark suite a kernel's original belongs to (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// NU-MineBench 3.0 (data mining).
    NuMineBench,
    /// BioBench (bioinformatics).
    BioBench,
    /// cBench 1.1 (embedded).
    CBench,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Spec2006 => "SPEC2006",
            Suite::NuMineBench => "NU-MineBench",
            Suite::BioBench => "BioBench",
            Suite::CBench => "cBench",
        };
        f.write_str(s)
    }
}

/// The paper's control-flow class of a kernel's branch of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperClass {
    /// Small control-dependent region.
    Hammock,
    /// Totally separable branch.
    SeparableTotal,
    /// Partially separable branch.
    SeparablePartial,
    /// Separable loop-branch (TQ target).
    SeparableLoopBranch,
    /// Inseparable branch.
    Inseparable,
    /// Heuristically inseparable; the precise alias tier proves the
    /// entangling stores disjoint (speculative-CFD target).
    SpeculativelySeparable,
}

impl fmt::Display for PaperClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PaperClass::Hammock => "hammock",
            PaperClass::SeparableTotal => "separable (total)",
            PaperClass::SeparablePartial => "separable (partial)",
            PaperClass::SeparableLoopBranch => "separable loop-branch",
            PaperClass::Inseparable => "inseparable",
            PaperClass::SpeculativelySeparable => "speculatively separable",
        };
        f.write_str(s)
    }
}

/// Problem size. `n` is the kernel's outer trip count; `seed` drives data
/// generation. Defaults give ~0.2–0.5M retired instructions per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Outer iterations.
    pub n: usize,
    /// Data-generation seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { n: 20_000, seed: 0x5eed_cafe_f00d_d00d }
    }
}

impl Scale {
    /// A small scale for fast tests.
    pub fn small() -> Scale {
        Scale { n: 1_500, seed: 0x5eed_cafe_f00d_d00d }
    }
}

/// A branch the paper targets, with its classification metadata.
#[derive(Debug, Clone)]
pub struct InterestBranch {
    /// Static PC in the *base* variant.
    pub pc: u32,
    /// Human-readable description (maps to Tables V/VI).
    pub what: &'static str,
    /// Paper class.
    pub class: PaperClass,
}

/// A fully built workload: program + data + verification metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Kernel name (e.g. `"soplex_like"`).
    pub name: &'static str,
    /// Which transformation this is.
    pub variant: Variant,
    /// Suite of the original benchmark.
    pub suite: Suite,
    /// The program.
    pub program: Program,
    /// Initial data memory.
    pub mem: MemImage,
    /// Registers whose final values define the observable result.
    pub observable: Vec<Reg>,
    /// Memory ranges `(addr, len)` included in the observable result.
    pub check_ranges: Vec<(u64, u64)>,
    /// The targeted branches (PCs valid for the *base* variant).
    pub interest: Vec<InterestBranch>,
}

impl Workload {
    /// Runs the workload functionally and returns its observable result
    /// (register values followed by a checksum per checked range).
    ///
    /// # Errors
    ///
    /// Propagates functional-simulation errors (these indicate kernel bugs).
    pub fn observe(&self) -> Result<Vec<i64>, SimError> {
        let mut m = Machine::new(self.program.clone(), self.mem.clone());
        m.run(4_000_000_000, &mut cfd_isa::NullSink)?;
        let mut out: Vec<i64> = self.observable.iter().map(|&r| m.regs.read(r)).collect();
        for &(addr, len) in &self.check_ranges {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in m.mem.read_bytes(addr, len as usize) {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            out.push(h as i64);
        }
        Ok(out)
    }

    /// A stable, content-complete byte serialization of the workload for
    /// content-addressed result fingerprinting (`cfd-exec`): covers the
    /// program, the initial memory image, and the observation metadata
    /// (observable registers and checked ranges), plus the identity
    /// labels. Two builds of the same catalog entry at the same
    /// [`Scale`] produce identical bytes; changing the scale, seed,
    /// variant, or any kernel code changes them.
    pub fn fingerprint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut section = |tag: &str, body: &[u8]| {
            out.extend_from_slice(tag.as_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(body);
        };
        section("name", self.name.as_bytes());
        section("variant", self.variant.label().as_bytes());
        section("program", &self.program.stable_bytes());
        section("mem", &self.mem.stable_bytes());
        let obs: String = self.observable.iter().map(|r| format!("{r:?},")).collect();
        section("observable", obs.as_bytes());
        let ranges: String = self.check_ranges.iter().map(|(a, l)| format!("{a}+{l},")).collect();
        section("check_ranges", ranges.as_bytes());
        out
    }

    /// Retired instruction count of a functional run (for Table III
    /// overhead factors).
    ///
    /// # Errors
    ///
    /// Propagates functional-simulation errors.
    pub fn dynamic_instructions(&self) -> Result<u64, SimError> {
        let mut m = Machine::new(self.program.clone(), self.mem.clone());
        let stats = m.run(4_000_000_000, &mut cfd_isa::NullSink)?;
        Ok(stats.retired)
    }
}

/// A deterministic xorshift64* RNG for data generation (no external
/// dependency needed in the hot path; `rand` is used in tests).
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Seeds the generator (zero is remapped).
    pub fn new(seed: u64) -> Xorshift {
        Xorshift { state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Standard register names used across kernels, so the code reads like the
/// paper's listings.
pub mod regs {
    use cfd_isa::Reg;

    /// The hardwired zero register.
    pub fn zero() -> Reg {
        Reg::ZERO
    }
    /// Induction variable of the (first) loop.
    pub fn i() -> Reg {
        Reg::new(1)
    }
    /// Loop bound.
    pub fn n() -> Reg {
        Reg::new(2)
    }
    /// Base address A.
    pub fn base_a() -> Reg {
        Reg::new(3)
    }
    /// Base address B.
    pub fn base_b() -> Reg {
        Reg::new(4)
    }
    /// Base address C.
    pub fn base_c() -> Reg {
        Reg::new(5)
    }
    /// Loaded value / predicate source.
    pub fn x() -> Reg {
        Reg::new(6)
    }
    /// Predicate.
    pub fn p() -> Reg {
        Reg::new(7)
    }
    /// Scratch address.
    pub fn tmp() -> Reg {
        Reg::new(8)
    }
    /// Accumulators (distinct architectural registers).
    pub fn acc(k: usize) -> Reg {
        Reg::new(9 + k) // r9..r15
    }
    /// Second loop induction / inner loop induction.
    pub fn j() -> Reg {
        Reg::new(16)
    }
    /// Inner bound / trip count.
    pub fn m() -> Reg {
        Reg::new(17)
    }
    /// Extra scratch.
    pub fn t(k: usize) -> Reg {
        Reg::new(18 + k) // r18..r23
    }
    /// Strip-mining scratch registers.
    pub fn strip(k: usize) -> Reg {
        Reg::new(24 + k) // r24..r27
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_deterministic() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_chance_roughly_calibrated() {
        let mut rng = Xorshift::new(7);
        let hits = (0..10_000).filter(|_| rng.chance(30)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fingerprint_bytes_track_build_inputs() {
        let entry = crate::by_name("soplex_ref_like").expect("in catalog");
        let scale = Scale { n: 50, seed: 3 };
        let a = entry.build(Variant::Base, scale).fingerprint_bytes();
        assert_eq!(a, entry.build(Variant::Base, scale).fingerprint_bytes(), "builds are reproducible");
        let bigger = entry.build(Variant::Base, Scale { n: 60, seed: 3 }).fingerprint_bytes();
        let reseeded = entry.build(Variant::Base, Scale { n: 50, seed: 4 }).fingerprint_bytes();
        let cfd = entry.build(Variant::Cfd, scale).fingerprint_bytes();
        assert_ne!(a, bigger, "trip count is content");
        assert_ne!(a, reseeded, "data seed is content");
        assert_ne!(a, cfd, "variant is content");
    }

    #[test]
    fn variant_labels_unique() {
        use std::collections::BTreeSet;
        let all = [
            Variant::Base,
            Variant::Cfd,
            Variant::CfdPlus,
            Variant::Dfd,
            Variant::CfdDfd,
            Variant::CfdTq,
            Variant::CfdBq,
            Variant::CfdBqTq,
            Variant::IfConv,
        ];
        let labels: BTreeSet<&str> = all.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn register_map_collision_free() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        let rs = [
            regs::i(),
            regs::n(),
            regs::base_a(),
            regs::base_b(),
            regs::base_c(),
            regs::x(),
            regs::p(),
            regs::tmp(),
            regs::acc(0),
            regs::acc(6),
            regs::j(),
            regs::m(),
            regs::t(0),
            regs::t(5),
            regs::strip(0),
            regs::strip(3),
        ];
        for r in rs {
            assert!(set.insert(r.index()), "register {r} reused");
        }
    }
}
