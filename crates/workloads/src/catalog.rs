//! The benchmark-analog catalog: one entry per paper benchmark region.
//!
//! Maps the paper's Table I / Tables V–VI rows to kernels. Scan-family
//! entries are [`ScanKernel`] configurations; bespoke kernels (astar
//! region #1, the TQ kernels, tiff-2-bw, the classification kernels) are
//! dispatched to their modules.

use crate::astar_r1;
use crate::astar_tq;
use crate::bzip2_tq;
use crate::classes;
use crate::common::{Scale, Suite, Variant, Workload};
use crate::ctxswitch;
use crate::patterns::{AddressPattern, CdRegion, Predicate, ScanKernel};
use crate::tiff2bw;

/// A catalog entry: a named kernel and how to build it.
#[derive(Clone)]
pub struct CatalogEntry {
    /// Kernel name.
    pub name: &'static str,
    /// The paper benchmark (and input) this is the analog of.
    pub paper_benchmark: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Supported variants.
    pub variants: &'static [Variant],
    builder: Builder,
}

#[derive(Clone)]
enum Builder {
    Scan(ScanKernel),
    AstarR1,
    AstarTq,
    Bzip2Tq,
    Tiff2bw,
    CtxSwitch,
    Hammock,
    Inseparable,
    SpecStore,
}

impl std::fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("name", &self.name)
            .field("paper_benchmark", &self.paper_benchmark)
            .finish_non_exhaustive()
    }
}

impl CatalogEntry {
    /// Builds a variant at a scale.
    ///
    /// # Panics
    ///
    /// Panics when `variant` is not in [`Self::variants`].
    pub fn build(&self, variant: Variant, scale: Scale) -> Workload {
        assert!(self.variants.contains(&variant), "{} does not support {variant}", self.name);
        match &self.builder {
            Builder::Scan(k) => k.build(variant, scale),
            Builder::AstarR1 => astar_r1::build(variant, scale),
            Builder::AstarTq => astar_tq::build(variant, scale),
            Builder::Bzip2Tq => bzip2_tq::build(variant, scale),
            Builder::Tiff2bw => tiff2bw::build(variant, scale),
            Builder::CtxSwitch => ctxswitch::build(variant, scale),
            Builder::Hammock => classes::build_hammock(variant, scale),
            Builder::Inseparable => classes::build_inseparable(variant, scale),
            Builder::SpecStore => classes::build_spec_store(variant, scale),
        }
    }
}

fn scan(k: ScanKernel, paper: &'static str) -> CatalogEntry {
    CatalogEntry {
        name: k.name,
        paper_benchmark: paper,
        suite: k.suite,
        variants: k.variants(),
        builder: Builder::Scan(k),
    }
}

/// The full catalog, in the paper's Table V/VI order.
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        scan(
            ScanKernel {
                name: "soplex_ref_like",
                suite: Suite::Spec2006,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::Threshold { threshold: 35, range: 100 },
                cd: CdRegion { alu_updates: 6, stores: true },
                chunk: 128,
                partial_feedback: false,
                what: "test[i] < theeps",
            },
            "soplex (ref)",
        ),
        scan(
            ScanKernel {
                name: "soplex_pds_like",
                suite: Suite::Spec2006,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::Threshold { threshold: 55, range: 100 },
                cd: CdRegion { alu_updates: 8, stores: true },
                chunk: 128,
                partial_feedback: false,
                what: "test[i] < theeps",
            },
            "soplex (pds-50)",
        ),
        CatalogEntry {
            name: "astar_r1_like",
            paper_benchmark: "astar region #1 (makebound2)",
            suite: Suite::Spec2006,
            variants: astar_r1::variants(),
            builder: Builder::AstarR1,
        },
        scan(
            ScanKernel {
                name: "astar_r2_like",
                suite: Suite::Spec2006,
                pattern: AddressPattern::Indirect,
                predicate: Predicate::Threshold { threshold: 45, range: 100 },
                cd: CdRegion { alu_updates: 7, stores: true },
                chunk: 128,
                partial_feedback: false,
                what: "bound cell passable",
            },
            "astar region #2",
        ),
        CatalogEntry {
            name: "astar_tq_like",
            paper_benchmark: "astar elem-expansion (Fig. 14)",
            suite: Suite::Spec2006,
            variants: astar_tq::variants(),
            builder: Builder::AstarTq,
        },
        scan(
            ScanKernel {
                name: "bzip2_like",
                suite: Suite::Spec2006,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::BitTest { mask: 0x3, match_val: 0x1 },
                cd: CdRegion { alu_updates: 6, stores: false },
                chunk: 128,
                partial_feedback: false,
                what: "sort comparison outcome",
            },
            "bzip2 (input.source)",
        ),
        CatalogEntry {
            name: "bzip2_tq_like",
            paper_benchmark: "bzip2 decompress run-lengths",
            suite: Suite::Spec2006,
            variants: bzip2_tq::variants(),
            builder: Builder::Bzip2Tq,
        },
        scan(
            ScanKernel {
                name: "mcf_like",
                suite: Suite::Spec2006,
                pattern: AddressPattern::Indirect,
                predicate: Predicate::Threshold { threshold: 40, range: 100 },
                cd: CdRegion { alu_updates: 5, stores: false },
                chunk: 128,
                partial_feedback: false,
                what: "arc cost negative",
            },
            "mcf",
        ),
        scan(
            ScanKernel {
                name: "gromacs_like",
                suite: Suite::Spec2006,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::Threshold { threshold: 30, range: 100 },
                cd: CdRegion { alu_updates: 5, stores: false },
                chunk: 128,
                partial_feedback: false,
                what: "pair within cutoff",
            },
            "gromacs",
        ),
        scan(
            ScanKernel {
                name: "namd_like",
                suite: Suite::Spec2006,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::Threshold { threshold: 60, range: 100 },
                cd: CdRegion { alu_updates: 6, stores: false },
                chunk: 128,
                partial_feedback: false,
                what: "pairlist cutoff",
            },
            "namd",
        ),
        scan(
            ScanKernel {
                name: "eclat_like",
                suite: Suite::NuMineBench,
                pattern: AddressPattern::Indirect,
                predicate: Predicate::BitTest { mask: 0x7, match_val: 0x5 },
                cd: CdRegion { alu_updates: 6, stores: true },
                chunk: 128,
                partial_feedback: false,
                what: "itemset intersection hit",
            },
            "eclat",
        ),
        scan(
            ScanKernel {
                name: "jpeg_like",
                suite: Suite::CBench,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::BitTest { mask: 0xf, match_val: 0x0 },
                cd: CdRegion { alu_updates: 5, stores: true },
                chunk: 128,
                partial_feedback: false,
                what: "coefficient zero after quant",
            },
            "jpeg-compr",
        ),
        CatalogEntry {
            name: "tiff2bw_like",
            paper_benchmark: "tiff-2-bw (hoist-only CFD)",
            suite: Suite::CBench,
            variants: tiff2bw::variants(),
            builder: Builder::Tiff2bw,
        },
        scan(
            ScanKernel {
                name: "tiffmedian_like",
                suite: Suite::CBench,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::Threshold { threshold: 160, range: 256 },
                cd: CdRegion { alu_updates: 5, stores: true },
                chunk: 128,
                partial_feedback: false,
                what: "histogram bin above cut",
            },
            "tiff-median",
        ),
        scan(
            ScanKernel {
                name: "hmmer_like",
                suite: Suite::BioBench,
                pattern: AddressPattern::Streaming,
                predicate: Predicate::Threshold { threshold: 48, range: 100 },
                cd: CdRegion { alu_updates: 6, stores: false },
                chunk: 128,
                partial_feedback: true,
                what: "viterbi score beats running best",
            },
            "hmmer (partially separable)",
        ),
        CatalogEntry {
            name: "ctxswitch_like",
            paper_benchmark: "context-switch save/restore (§III-A)",
            suite: Suite::CBench,
            variants: ctxswitch::variants(),
            builder: Builder::CtxSwitch,
        },
        CatalogEntry {
            name: "hammock_like",
            paper_benchmark: "hammock class (e.g. hmmer)",
            suite: Suite::BioBench,
            variants: classes::hammock_variants(),
            builder: Builder::Hammock,
        },
        CatalogEntry {
            name: "inseparable_like",
            paper_benchmark: "inseparable class (e.g. sjeng)",
            suite: Suite::NuMineBench,
            variants: &[Variant::Base],
            builder: Builder::Inseparable,
        },
        CatalogEntry {
            name: "soplex_upd_like",
            paper_benchmark: "soplex update scatter (speculative CFD)",
            suite: Suite::Spec2006,
            variants: &[Variant::Base],
            builder: Builder::SpecStore,
        },
    ]
}

/// Looks up a catalog entry by kernel name.
pub fn by_name(name: &str) -> Option<CatalogEntry> {
    catalog().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        use std::collections::BTreeSet;
        let names: BTreeSet<&str> = catalog().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), catalog().len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("soplex_ref_like").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_entry_builds_base() {
        for e in catalog() {
            let w = e.build(Variant::Base, Scale { n: 50, seed: 1 });
            assert_eq!(w.name, e.name);
            w.observe().unwrap();
        }
    }

    #[test]
    fn every_non_base_variant_matches_its_base() {
        for e in catalog() {
            let scale = Scale { n: 400, seed: 9 };
            let want = e.build(Variant::Base, scale).observe().unwrap();
            for &v in e.variants {
                if v == Variant::Base {
                    continue;
                }
                let got = e.build(v, scale).observe().unwrap();
                assert_eq!(got, want, "{} variant {v} diverges from base", e.name);
            }
        }
    }

    #[test]
    fn all_suites_represented() {
        use std::collections::BTreeSet;
        let suites: BTreeSet<String> = catalog().iter().map(|e| e.suite.to_string()).collect();
        assert_eq!(suites.len(), 4, "all four paper suites must appear");
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_variant_panics() {
        by_name("mcf_like").unwrap().build(Variant::CfdTq, Scale::small());
    }
}
