//! Classification-coverage kernels: hammocks and inseparable branches.
//!
//! These exist so the profiler's control-flow breakdown (Fig. 6c) has all
//! four classes to find, and to compare CFD against if-conversion on the
//! class where if-conversion wins (§II-B).

use crate::common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
use cfd_isa::{Assembler, MemImage};

const DATA_BASE: u64 = 0x10_0000;

fn gen_mem(scale: Scale, seed_salt: u64) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = Xorshift::new(scale.seed ^ seed_salt);
    for k in 0..scale.n as u64 {
        mem.write_u64(DATA_BASE + 8 * k, rng.below(1000));
    }
    mem
}

/// Hammock kernel: `acc += (x < 500) ? x : -x` with a 2-instruction arm —
/// classic if-conversion territory.
///
/// Supported variants: `Base` (branchy), `IfConv` (synthesized select).
///
/// # Panics
///
/// Panics on unsupported variants.
pub fn build_hammock(variant: Variant, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    let (i, n, x, p, tmp, acc) = (regs::i(), regs::n(), regs::x(), regs::p(), regs::tmp(), regs::acc(0));
    let t0 = regs::t(0);
    a.li(n, scale.n as i64);
    a.li(regs::base_a(), DATA_BASE as i64);
    a.li(i, 0);
    a.label("top");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, regs::base_a());
    a.ld(x, 0, tmp);
    let mut branches = Vec::new();
    match variant {
        Variant::Base => {
            a.slt(p, x, 500i64);
            let bpc = a.here();
            a.annotate("hammock: sign select");
            a.beqz(p, "else");
            a.add(acc, acc, x);
            a.j("join");
            a.label("else");
            a.sub(acc, acc, x);
            a.label("join");
            branches.push(InterestBranch { pc: bpc, what: "hammock: sign select", class: PaperClass::Hammock });
        }
        Variant::IfConv => {
            // mask = -(x < 500); acc += (x & mask) | (-x & ~mask)
            a.slt(p, x, 500i64);
            a.sub(p, regs::zero(), p); // mask
            a.sub(t0, regs::zero(), x); // -x
            a.and(x, x, p);
            a.xor(p, p, -1i64);
            a.and(t0, t0, p);
            a.or(x, x, t0);
            a.add(acc, acc, x);
        }
        other => panic!("hammock_like does not support variant {other}"),
    }
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    Workload {
        name: "hammock_like",
        variant,
        suite: Suite::BioBench,
        program: a.finish().expect("hammock assembles"),
        mem: gen_mem(scale, 0x4a44),
        observable: vec![acc],
        check_ranges: Vec::new(),
        interest: branches,
    }
}

/// Variants of the hammock kernel.
pub fn hammock_variants() -> &'static [Variant] {
    &[Variant::Base, Variant::IfConv]
}

/// Inseparable kernel: the predicate folds in four accumulators that the
/// guarded region itself updates — the slice *is* the region, so CFD does
/// not apply (§II-B; the paper points to vector operations instead).
///
/// Supported variant: `Base` only.
///
/// # Panics
///
/// Panics on unsupported variants.
pub fn build_inseparable(variant: Variant, scale: Scale) -> Workload {
    assert!(variant == Variant::Base, "inseparable_like supports only the base variant");
    let mut a = Assembler::new();
    let (i, n, x, p, tmp) = (regs::i(), regs::n(), regs::x(), regs::p(), regs::tmp());
    let accs = [regs::acc(0), regs::acc(1), regs::acc(2), regs::acc(3)];
    a.li(n, scale.n as i64);
    a.li(regs::base_a(), DATA_BASE as i64);
    a.li(i, 0);
    a.label("top");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, regs::base_a());
    a.ld(x, 0, tmp);
    // Predicate depends on all four accumulators (the CD region's outputs).
    a.add(p, accs[0], accs[1]);
    a.add(p, p, accs[2]);
    a.add(p, p, accs[3]);
    a.add(p, p, x);
    a.and(p, p, 1i64);
    let bpc = a.here();
    a.annotate("inseparable: state-fed branch");
    a.beqz(p, "skip");
    a.add(accs[0], accs[0], x);
    a.xor(accs[1], accs[1], accs[0]);
    a.add(accs[2], accs[2], accs[1]);
    a.sub(accs[3], accs[3], accs[2]);
    a.add(accs[0], accs[0], 1i64);
    a.xor(accs[2], accs[2], 7i64);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    Workload {
        name: "inseparable_like",
        variant,
        suite: Suite::NuMineBench,
        program: a.finish().expect("inseparable assembles"),
        mem: gen_mem(scale, 0x1458),
        observable: accs.to_vec(),
        check_ranges: Vec::new(),
        interest: vec![InterestBranch {
            pc: bpc,
            what: "inseparable: state-fed branch",
            class: PaperClass::Inseparable,
        }],
    }
}

/// Speculatively separable kernel: a guarded scatter whose CD region
/// stores through the *same* address register the predicate load reads,
/// at offsets one whole array away. The name-based alias heuristic
/// entangles the stores into the slice (inseparable); the value-range
/// tier proves every store disjoint from the load's whole-loop interval,
/// so speculative CFD can hoist the load (paper §III's soplex update
/// scatter, the case its gcc pass had to leave on the table).
///
/// Supported variant: `Base` only (the speculative rewrite is *derived*
/// by `cfd_analysis::apply_cfd_spec`, not hand-built).
///
/// # Panics
///
/// Panics on unsupported variants.
pub fn build_spec_store(variant: Variant, scale: Scale) -> Workload {
    assert!(variant == Variant::Base, "soplex_upd_like supports only the base variant");
    let n = scale.n as i64;
    let mut a = Assembler::new();
    let (i, nn, x, p, tmp) = (regs::i(), regs::n(), regs::x(), regs::p(), regs::tmp());
    let (acc0, acc1) = (regs::acc(0), regs::acc(1));
    a.li(nn, n);
    a.li(regs::base_a(), DATA_BASE as i64);
    a.li(i, 0);
    a.label("top");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, regs::base_a());
    a.ld(x, 0, tmp);
    a.slt(p, x, 450i64);
    let bpc = a.here();
    a.annotate("spec: same-base scatter");
    a.beqz(p, "skip");
    a.add(acc0, acc0, x);
    a.xor(acc1, acc1, x);
    a.sd(x, 8 * n, tmp);
    a.sd(acc0, 16 * n, tmp);
    a.sd(acc1, 24 * n, tmp);
    a.sd(x, 32 * n, tmp);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, nn, "top");
    a.halt();
    Workload {
        name: "soplex_upd_like",
        variant,
        suite: Suite::Spec2006,
        program: a.finish().expect("spec scatter assembles"),
        mem: gen_mem(scale, 0x5bec),
        observable: vec![acc0, acc1],
        check_ranges: vec![(DATA_BASE + 8 * scale.n as u64, 32 * scale.n as u64)],
        interest: vec![InterestBranch {
            pc: bpc,
            what: "spec: same-base scatter",
            class: PaperClass::SpeculativelySeparable,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ifconv_matches_branchy_hammock() {
        let scale = Scale::small();
        let want = build_hammock(Variant::Base, scale).observe().unwrap();
        assert_eq!(build_hammock(Variant::IfConv, scale).observe().unwrap(), want);
    }

    #[test]
    fn ifconv_has_no_hammock_branch() {
        let w = build_hammock(Variant::IfConv, Scale::small());
        // Only the loop back-edge branch remains.
        let conds = w.program.instrs().iter().filter(|i| i.is_plain_conditional()).count();
        assert_eq!(conds, 1);
    }

    #[test]
    fn inseparable_runs() {
        let w = build_inseparable(Variant::Base, Scale::small());
        w.observe().unwrap();
        assert_eq!(w.interest[0].class, PaperClass::Inseparable);
    }

    #[test]
    #[should_panic(expected = "supports only the base variant")]
    fn inseparable_rejects_cfd() {
        build_inseparable(Variant::Cfd, Scale::small());
    }

    #[test]
    fn spec_store_runs_and_writes_the_out_region() {
        let scale = Scale::small();
        let w = build_spec_store(Variant::Base, scale);
        assert_eq!(w.interest[0].class, PaperClass::SpeculativelySeparable);
        let out = w.observe().unwrap();
        assert_eq!(out.len(), 3, "two accumulators + one range checksum");
        // The checksum must reflect actual stores: a different seed
        // produces different out-region contents.
        let other = build_spec_store(Variant::Base, Scale { seed: scale.seed ^ 1, ..scale }).observe().unwrap();
        assert_ne!(out, other);
    }

    #[test]
    #[should_panic(expected = "supports only the base variant")]
    fn spec_store_rejects_cfd() {
        build_spec_store(Variant::Cfd, Scale::small());
    }
}
