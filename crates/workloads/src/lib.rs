//! # cfd-workloads — benchmark-analog kernels
//!
//! The paper evaluates CFD on regions of SPEC2006, NU-MineBench, BioBench
//! and cBench benchmarks. Those binaries cannot be rerun here, so this
//! crate provides *analog kernels*: programs in the `cfd-isa` ISA that
//! reproduce each region's control-flow idiom — branch class, predicate
//! entropy, control-dependent region size, and memory behaviour — as
//! catalogued in DESIGN.md §3.
//!
//! Every kernel builds several [`Variant`]s (base / CFD / CFD+ / DFD /
//! TQ forms, as applicable), and every variant is verified to produce the
//! base variant's observable result on the functional simulator — the
//! analog of the paper's native-x86 verification with software queues
//! (§VI).
//!
//! # Example
//!
//! ```
//! use cfd_workloads::{by_name, Scale, Variant};
//!
//! let entry = by_name("soplex_ref_like").unwrap();
//! let base = entry.build(Variant::Base, Scale { n: 300, seed: 7 });
//! let cfd = entry.build(Variant::Cfd, Scale { n: 300, seed: 7 });
//! assert_eq!(base.observe()?, cfd.observe()?);
//! # Ok::<(), cfd_isa::SimError>(())
//! ```

mod astar_r1;
mod astar_tq;
mod bzip2_tq;
mod catalog;
mod classes;
mod common;
mod ctxswitch;
mod patterns;
mod tiff2bw;

pub use catalog::{by_name, catalog, CatalogEntry};
pub use common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
pub use patterns::{AddressPattern, CdRegion, Predicate, ScanKernel};
