//! tiff-2-bw analog — the hoist-only CFD outlier (§VII-A, Fig. 21c).
//!
//! The paper could not split this loop (a loop-carried output pointer), so
//! the predicate computation was merely *hoisted* a few instructions ahead
//! of the branch within the same iteration. The push-to-pop fetch
//! separation is tiny, so whenever the predicate load misses even in the
//! L1, the pop arrives before the push has executed — a **BQ miss** — and
//! the core must speculate (or stall, Fig. 21c). The paper reports a ~20%
//! BQ miss rate for this benchmark, making it the one case where
//! CFD(stall) visibly loses.

use crate::common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
use cfd_isa::{Assembler, MemImage, Program};

const DATA_BASE: u64 = 0x10_0000;
const OUT_BASE: u64 = 0x800_0000;

fn gen_mem(scale: Scale) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = Xorshift::new(scale.seed ^ 0x71ff);
    for k in 0..scale.n as u64 {
        // Pixel luminance 0..255; the threshold test is ~50/50.
        mem.write_u64(DATA_BASE + 8 * k, rng.below(256));
    }
    mem
}

/// Builds the requested variant. Supported: `Base`, `Cfd` (hoist-only).
///
/// # Panics
///
/// Panics on unsupported variants or internal assembly errors.
pub fn build(variant: Variant, scale: Scale) -> Workload {
    let (program, branches) = match variant {
        Variant::Base => build_kernel(scale, false),
        Variant::Cfd => build_kernel(scale, true),
        other => panic!("tiff2bw_like does not support variant {other}"),
    };
    Workload {
        name: "tiff2bw_like",
        variant,
        suite: Suite::CBench,
        program,
        mem: gen_mem(scale),
        observable: vec![regs::acc(0), regs::acc(6)],
        check_ranges: vec![(OUT_BASE, scale.n as u64)],
        interest: branches,
    }
}

/// Variants this kernel supports.
pub fn variants() -> &'static [Variant] {
    &[Variant::Base, Variant::Cfd]
}

fn build_kernel(scale: Scale, hoist_cfd: bool) -> (Program, Vec<InterestBranch>) {
    let mut a = Assembler::new();
    let (i, n, x, p, out, acc, cnt) =
        (regs::i(), regs::n(), regs::x(), regs::p(), regs::t(0), regs::acc(0), regs::acc(6));
    let (t1, t2) = (regs::t(1), regs::t(2));
    a.li(n, scale.n as i64);
    a.li(regs::base_a(), DATA_BASE as i64);
    a.li(out, OUT_BASE as i64); // loop-carried output pointer: prevents splitting
    a.li(i, 0);
    a.label("top");
    // Hoisted predicate computation (as far ahead as the loop allows).
    a.sll(t1, i, 3i64);
    a.add(t1, t1, regs::base_a());
    a.ld(x, 0, t1);
    a.slt(p, x, 128i64);
    if hoist_cfd {
        a.push_bq(p);
    }
    // Intervening luminance math — the most the loop allows between the
    // hoisted slice and the branch (the paper hoists "far ahead within the
    // loop"). Four independent dependence chains keep fetch and issue
    // busy; the separation roughly covers the fetch-to-execute depth, so
    // an L1-hitting predicate load usually pushes in time while an L1 miss
    // forces a BQ miss (the paper's ~20% miss rate for this benchmark).
    let chains = [regs::acc(1), regs::acc(2), regs::acc(3), regs::acc(4)];
    for round in 0..30i64 {
        for (k, &c) in chains.iter().enumerate() {
            match (round + k as i64) % 4 {
                0 => a.add(c, c, 3 + round),
                1 => a.xor(c, c, 17 + round),
                2 => a.sll(c, c, 1i64),
                _ => a.srl(c, c, 1i64),
            };
        }
    }
    a.mul(t1, x, 19i64);
    a.add(t2, t1, 37i64);
    a.srl(t2, t2, 2i64);
    a.add(acc, acc, t2);
    let bpc = a.here();
    a.annotate("pixel below threshold");
    if hoist_cfd {
        a.branch_on_bq("skip");
    } else {
        a.beqz(p, "skip");
    }
    // CD region: emit a black pixel and update running stats.
    a.sb(t2, 0, out);
    a.xor(acc, acc, t2);
    a.add(acc, acc, x);
    a.addi(cnt, cnt, 1);
    a.label("skip");
    a.addi(out, out, 1); // the serial output pointer
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let program = a.finish().expect("tiff2bw assembles");
    let branches = vec![InterestBranch { pc: bpc, what: "pixel below threshold", class: PaperClass::SeparableTotal }];
    (program, branches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoisted_cfd_matches_base() {
        let scale = Scale::small();
        let want = build(Variant::Base, scale).observe().unwrap();
        assert_eq!(build(Variant::Cfd, scale).observe().unwrap(), want);
    }

    #[test]
    fn push_sits_close_to_pop() {
        // The defining property: few instructions between Push_BQ and
        // Branch_on_BQ (insufficient fetch separation).
        let w = build(Variant::Cfd, Scale::small());
        let instrs = w.program.instrs();
        let push = instrs.iter().position(|x| matches!(x, cfd_isa::Instr::PushBq { .. })).unwrap();
        let pop = instrs.iter().position(|x| matches!(x, cfd_isa::Instr::BranchOnBq { .. })).unwrap();
        assert!(pop > push && pop - push <= 160, "separation {} stays within one iteration", pop - push);
    }
}
