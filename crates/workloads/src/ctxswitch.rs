//! Context-switch kernel: CFD state saved and restored mid-loop (§III-A).
//!
//! The ISA defines `Save_BQ`/`Restore_BQ` (and VQ/TQ counterparts) so the
//! OS can context-switch with predicates in flight. This kernel interrupts
//! a decoupled loop at chunk boundaries, saves the BQ, runs an unrelated
//! "other process" region that uses the BQ itself, restores, and resumes —
//! verifying the architectural state survives round trips and that the
//! timing core's drain-and-reload macro-op path works under load.

use crate::common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
use cfd_isa::{Assembler, MemImage, Program};

const DATA_BASE: u64 = 0x10_0000;
const OTHER_BASE: u64 = 0x40_0000;
const SAVE_AREA: u64 = 0xc0_0000;
const CHUNK: i64 = 64;
/// Pops performed before the "context switch" interrupts the second loop.
const PREFIX_POPS: i64 = 24;

fn gen_mem(scale: Scale) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = Xorshift::new(scale.seed ^ 0xc7c5);
    for k in 0..scale.n as u64 {
        mem.write_u64(DATA_BASE + 8 * k, rng.below(100));
        mem.write_u64(OTHER_BASE + 8 * k, rng.below(100));
    }
    mem
}

/// Builds the requested variant. Supported: `Base` (no queues anywhere),
/// `Cfd` (decoupled with a mid-chunk save/restore round trip).
///
/// # Panics
///
/// Panics on unsupported variants or internal assembly errors.
pub fn build(variant: Variant, scale: Scale) -> Workload {
    let (program, branches) = match variant {
        Variant::Base => build_base(scale),
        Variant::Cfd => build_cfd(scale),
        other => panic!("ctxswitch_like does not support variant {other}"),
    };
    Workload {
        name: "ctxswitch_like",
        variant,
        suite: Suite::CBench,
        program,
        mem: gen_mem(scale),
        observable: vec![regs::acc(0), regs::acc(1), regs::acc(6)],
        check_ranges: Vec::new(),
        interest: branches,
    }
}

/// Variants this kernel supports.
pub fn variants() -> &'static [Variant] {
    &[Variant::Base, Variant::Cfd]
}

fn emit_load(a: &mut Assembler, base_addr: u64) {
    let (i, x, tmp) = (regs::i(), regs::x(), regs::tmp());
    a.sll(tmp, i, 3i64);
    a.addi(tmp, tmp, base_addr as i64);
    a.ld(x, 0, tmp);
}

/// The "other process": a short guarded scan over its own data that also
/// uses the BQ (which is why the first process must save its state).
fn emit_other_process(a: &mut Assembler, label: &str) {
    let (x, p, acc1) = (regs::x(), regs::p(), regs::acc(1));
    let j = regs::t(3);
    a.li(j, 0);
    a.label(&format!("op_gen_{label}"));
    a.sll(x, j, 3i64);
    a.addi(x, x, OTHER_BASE as i64);
    a.ld(x, 0, x);
    a.slt(p, x, 50i64);
    a.push_bq(p);
    a.addi(j, j, 1);
    a.blt(j, regs::t(4), &format!("op_gen_{label}"));
    a.li(j, 0);
    a.label(&format!("op_use_{label}"));
    a.branch_on_bq(&format!("op_skip_{label}"));
    a.addi(acc1, acc1, 3);
    a.label(&format!("op_skip_{label}"));
    a.addi(j, j, 1);
    a.blt(j, regs::t(4), &format!("op_use_{label}"));
}

fn build_base(scale: Scale) -> (Program, Vec<InterestBranch>) {
    let (i, n, x, p, acc, cnt) = (regs::i(), regs::n(), regs::x(), regs::p(), regs::acc(0), regs::acc(6));
    let mut a = Assembler::new();
    a.li(n, scale.n as i64);
    a.li(regs::t(4), 16); // other-process trip count
    a.li(i, 0);
    a.label("top");
    emit_load(&mut a, DATA_BASE);
    a.slt(p, x, 40i64);
    let bpc = a.here();
    a.annotate("guarded update");
    a.beqz(p, "skip");
    a.add(acc, acc, x);
    a.xor(acc, acc, 5i64);
    a.addi(cnt, cnt, 1);
    a.label("skip");
    // Periodically run the other process (branchy form, no queues).
    a.and(regs::t(2), i, CHUNK - 1);
    a.bne(regs::t(2), regs::zero(), "no_switch");
    {
        let (xr, pr, acc1, j) = (regs::x(), regs::p(), regs::acc(1), regs::t(3));
        a.li(j, 0);
        a.label("op_base");
        a.sll(xr, j, 3i64);
        a.addi(xr, xr, OTHER_BASE as i64);
        a.ld(xr, 0, xr);
        a.slt(pr, xr, 50i64);
        a.beqz(pr, "op_base_skip");
        a.addi(acc1, acc1, 3);
        a.label("op_base_skip");
        a.addi(j, j, 1);
        a.blt(j, regs::t(4), "op_base");
    }
    a.label("no_switch");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let branches = vec![InterestBranch { pc: bpc, what: "guarded update", class: PaperClass::SeparableTotal }];
    (a.finish().expect("ctxswitch base assembles"), branches)
}

fn build_cfd(scale: Scale) -> (Program, Vec<InterestBranch>) {
    let (i, n, x, p, acc, cnt) = (regs::i(), regs::n(), regs::x(), regs::p(), regs::acc(0), regs::acc(6));
    let (cs, lim, save) = (regs::strip(0), regs::strip(1), regs::strip(2));
    let savep = regs::strip(3);
    let mut a = Assembler::new();
    a.li(n, scale.n as i64);
    a.li(regs::t(4), 16);
    a.li(savep, SAVE_AREA as i64);
    a.li(i, 0);
    a.label("chunk");
    a.addi(lim, i, CHUNK);
    a.min(lim, lim, n);
    a.mv(cs, i);
    // Loop 1: predicates for the whole chunk.
    a.label("gen");
    emit_load(&mut a, DATA_BASE);
    a.slt(p, x, 40i64);
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, lim, "gen");
    a.mv(save, i);
    a.mv(i, cs);
    // Loop 2, part 1: consume a prefix of the predicates...
    a.addi(regs::t(2), cs, PREFIX_POPS);
    a.min(regs::t(2), regs::t(2), save);
    a.label("use1");
    a.branch_on_bq("skip1");
    emit_load(&mut a, DATA_BASE);
    a.add(acc, acc, x);
    a.xor(acc, acc, 5i64);
    a.addi(cnt, cnt, 1);
    a.label("skip1");
    a.addi(i, i, 1);
    a.blt(i, regs::t(2), "use1");
    // ... then "context switch": save the BQ (in-flight predicates!),
    // hand the other process a *fresh* queue (mark+forward empties it,
    // playing the role of the OS restoring the other context's state),
    // run it, and restore our own state.
    a.save_bq(0, savep);
    a.mark_bq();
    a.forward_bq();
    emit_other_process(&mut a, "cs");
    a.restore_bq(0, savep);
    // Loop 2, part 2: finish the chunk's predicates after the switch
    // (none remain when the chunk was short enough for part 1).
    a.bge(i, save, "after_use2");
    a.label("use2");
    a.branch_on_bq("skip2");
    emit_load(&mut a, DATA_BASE);
    a.add(acc, acc, x);
    a.xor(acc, acc, 5i64);
    a.addi(cnt, cnt, 1);
    a.label("skip2");
    a.addi(i, i, 1);
    a.blt(i, save, "use2");
    a.label("after_use2");
    a.blt(i, n, "chunk");
    a.halt();
    (a.finish().expect("ctxswitch cfd assembles"), Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfd_with_context_switches_matches_base() {
        // The base runs the other process once per chunk (i % CHUNK == 0);
        // the CFD version runs it once per chunk at the save point — same
        // number of invocations, same data, same observables.
        let scale = Scale { n: 1_024, seed: 0xc5 };
        let want = build(Variant::Base, scale).observe().unwrap();
        let got = build(Variant::Cfd, scale).observe().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn save_area_holds_pending_predicates() {
        // After the first save, the save area must contain CHUNK-PREFIX_POPS
        // predicates (length word at offset 0).
        let scale = Scale { n: 128, seed: 0xc6 };
        let w = build(Variant::Cfd, scale);
        let mut m = cfd_isa::Machine::new(w.program.clone(), w.mem.clone());
        m.run(10_000_000, &mut cfd_isa::NullSink).unwrap();
        let saved_len = m.mem.read_u64(SAVE_AREA);
        assert_eq!(saved_len, (CHUNK - PREFIX_POPS) as u64);
    }
}
