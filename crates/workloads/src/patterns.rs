//! The guarded-scan kernel family.
//!
//! Most of the paper's CFD targets share one shape (Fig. 3a): a loop scans
//! an array, computes a data-dependent predicate, and guards a sizable
//! control-dependent region with it. Kernels differ in the predicate, the
//! address pattern (streaming vs. pointer-like indirection), and the CD
//! region body. [`ScanKernel`] captures those degrees of freedom and emits
//! every transformation variant:
//!
//! * **Base** — the original loop,
//! * **Cfd** — strip-mined decoupling (Fig. 8): loop 1 pushes predicates,
//!   loop 2 pops them with `Branch_on_BQ`, recomputing `x` when the CD
//!   region needs it,
//! * **CfdPlus** — `x` rides the Value Queue instead of being recomputed
//!   (Fig. 11),
//! * **Dfd** — a prefetch loop runs a chunk ahead of the original loop
//!   (Fig. 16),
//! * **CfdDfd** — prefetch, then decouple (Fig. 26).

use crate::common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
use cfd_isa::{Assembler, MemImage, Reg};

/// Base address of the scanned data array.
const DATA_BASE: u64 = 0x10_0000;
/// Base address of the permutation (indirection) array.
const PERM_BASE: u64 = 0x400_0000;
/// Base address of the output arrays written by CD regions.
const OUT_BASE: u64 = 0x800_0000;

/// How the kernel walks the data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressPattern {
    /// `data[i]` — streaming; misses are spatial-prefetch friendly.
    Streaming,
    /// `data[perm[i]]` — a random permutation; every element is a fresh,
    /// unpredictable miss (pointer-chasing surrogate; astar/mcf-like).
    Indirect,
}

/// The predicate the branch tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// `x < threshold` over values uniform in `0..range` — taken with
    /// probability `threshold/range`, uncorrelated (hard).
    Threshold {
        /// Comparison threshold.
        threshold: i64,
        /// Value range of the generated data.
        range: u64,
    },
    /// `(x & mask) == match_val` — sparse bit-test (eclat/jpeg-like).
    BitTest {
        /// AND mask.
        mask: i64,
        /// Value the masked result must equal.
        match_val: i64,
    },
}

/// Size of the control-dependent region (number of accumulator update
/// instructions; stores included separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdRegion {
    /// ALU accumulator updates using `x`.
    pub alu_updates: usize,
    /// Whether the region stores results to output arrays.
    pub stores: bool,
}

/// A configurable guarded-scan kernel.
#[derive(Debug, Clone)]
pub struct ScanKernel {
    /// Kernel name.
    pub name: &'static str,
    /// Original benchmark's suite.
    pub suite: Suite,
    /// Address pattern.
    pub pattern: AddressPattern,
    /// Branch predicate.
    pub predicate: Predicate,
    /// CD region shape.
    pub cd: CdRegion,
    /// Strip-mining chunk for CFD variants (≤ BQ size).
    pub chunk: i64,
    /// Partial separability (§II-B): the CD region updates a carry register
    /// that feeds the next iteration's predicate. Decoupled variants hoist
    /// that short loop-carried dependence into the first loop and
    /// if-convert it (synthesized select), exactly as the paper prescribes
    /// for partially separable branches.
    pub partial_feedback: bool,
    /// What the branch is, for reports (Table V analog).
    pub what: &'static str,
}

impl ScanKernel {
    fn gen_mem(&self, scale: Scale) -> MemImage {
        let mut mem = MemImage::new();
        let mut rng = Xorshift::new(scale.seed);
        let range = match self.predicate {
            Predicate::Threshold { range, .. } => range,
            Predicate::BitTest { .. } => 1 << 16,
        };
        for k in 0..scale.n as u64 {
            mem.write_u64(DATA_BASE + 8 * k, rng.below(range));
        }
        if self.pattern == AddressPattern::Indirect {
            // Fisher–Yates permutation of 0..n.
            let n = scale.n as u64;
            for k in 0..n {
                mem.write_u64(PERM_BASE + 8 * k, k);
            }
            for k in (1..n).rev() {
                let j = rng.below(k + 1);
                let a = mem.read_u64(PERM_BASE + 8 * k);
                let b = mem.read_u64(PERM_BASE + 8 * j);
                mem.write_u64(PERM_BASE + 8 * k, b);
                mem.write_u64(PERM_BASE + 8 * j, a);
            }
        }
        mem
    }

    /// Emits `x = data[<address>]` for loop induction register `ind`.
    fn emit_load_x(&self, a: &mut Assembler, ind: Reg) {
        let (base_a, base_b, x, tmp) = (regs::base_a(), regs::base_b(), regs::x(), regs::tmp());
        match self.pattern {
            AddressPattern::Streaming => {
                a.sll(tmp, ind, 3i64);
                a.add(tmp, tmp, base_a);
                a.ld(x, 0, tmp);
            }
            AddressPattern::Indirect => {
                a.sll(tmp, ind, 3i64);
                a.add(tmp, tmp, base_b);
                a.ld(tmp, 0, tmp); // perm[i]
                a.sll(tmp, tmp, 3i64);
                a.add(tmp, tmp, base_a);
                a.ld(x, 0, tmp);
            }
        }
    }

    /// Emits the prefetch-only version of the address stream (DFD loop).
    fn emit_prefetch(&self, a: &mut Assembler, ind: Reg) {
        let (base_a, base_b, tmp) = (regs::base_a(), regs::base_b(), regs::tmp());
        match self.pattern {
            AddressPattern::Streaming => {
                a.sll(tmp, ind, 3i64);
                a.add(tmp, tmp, base_a);
                a.prefetch(0, tmp);
            }
            AddressPattern::Indirect => {
                a.sll(tmp, ind, 3i64);
                a.add(tmp, tmp, base_b);
                a.ld(tmp, 0, tmp);
                a.sll(tmp, tmp, 3i64);
                a.add(tmp, tmp, base_a);
                a.prefetch(0, tmp);
            }
        }
    }

    /// Emits `p = predicate(x [+ carry])`. With partial feedback the carry
    /// register (updated by the CD region) shifts the comparison point,
    /// making the branch's backward slice contain CD instructions.
    fn emit_predicate(&self, a: &mut Assembler) {
        let (x, p) = (regs::x(), regs::p());
        let carry = regs::t(5);
        match self.predicate {
            Predicate::Threshold { threshold, .. } => {
                if self.partial_feedback {
                    a.add(p, x, carry);
                    a.slt(p, p, threshold);
                } else {
                    a.slt(p, x, threshold);
                }
            }
            Predicate::BitTest { mask, match_val } => {
                if self.partial_feedback {
                    a.xor(p, x, carry);
                    a.and(p, p, mask);
                } else {
                    a.and(p, x, mask);
                }
                a.seq(p, p, match_val);
            }
        }
    }

    /// The CD region's carry update, in branchy form:
    /// `carry = (carry + (x & 7)) & 15`.
    fn emit_carry_update(&self, a: &mut Assembler) {
        let (x, carry, t) = (regs::x(), regs::t(5), regs::t(2));
        a.and(t, x, 7i64);
        a.add(carry, carry, t);
        a.and(carry, carry, 15i64);
    }

    /// The carry update if-converted under predicate `p` (for the first
    /// loop of decoupled variants): `carry = p ? f(carry, x) : carry`.
    fn emit_carry_update_ifconv(&self, a: &mut Assembler) {
        let (x, p, carry) = (regs::x(), regs::p(), regs::t(5));
        let (t, m) = (regs::t(2), regs::t(3));
        a.and(t, x, 7i64);
        a.add(t, carry, t);
        a.and(t, t, 15i64); // t = f(carry, x)
        a.sub(m, regs::zero(), p); // mask
        a.and(t, t, m);
        a.xor(m, m, -1i64);
        a.and(carry, carry, m);
        a.or(carry, carry, t);
    }

    /// Emits the control-dependent region. Reads `x`; updates accumulators
    /// `acc(0..)`, the match counter `acc(6)`, and optionally stores.
    /// `with_feedback` includes the carry update (the base variant; the
    /// decoupled second loop omits it — the first loop already applied it).
    fn emit_cd_with(&self, a: &mut Assembler, with_feedback: bool) {
        if self.partial_feedback && with_feedback {
            self.emit_carry_update(a);
        }
        self.emit_cd_core(a);
    }

    fn emit_cd_core(&self, a: &mut Assembler) {
        let (x, cnt) = (regs::x(), regs::acc(6));
        for k in 0..self.cd.alu_updates {
            let acc = regs::acc(k % 5);
            match k % 3 {
                0 => a.add(acc, acc, x),
                1 => a.xor(acc, acc, x),
                _ => a.add(acc, acc, regs::acc((k + 1) % 5)),
            };
        }
        if self.cd.stores {
            let (t0, t1) = (regs::t(0), regs::t(1));
            a.sll(t0, cnt, 3i64);
            a.li(t1, OUT_BASE as i64);
            a.add(t0, t0, t1);
            a.sd(x, 0, t0);
        }
        a.addi(cnt, cnt, 1);
    }

    /// Builds the requested variant at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if the internal assembly is malformed (kernel bug).
    pub fn build(&self, variant: Variant, scale: Scale) -> Workload {
        let mem = self.gen_mem(scale);
        let (program, branch_pc) = match variant {
            Variant::Base => self.build_base(scale),
            Variant::Cfd => self.build_cfd(scale, false, false),
            Variant::CfdPlus => self.build_cfd(scale, true, false),
            Variant::Dfd => self.build_dfd(scale),
            Variant::CfdDfd => self.build_cfd(scale, false, true),
            other => panic!("{} does not support variant {other}", self.name),
        };
        let mut observable: Vec<Reg> = (0..5).map(regs::acc).collect();
        observable.push(regs::acc(6));
        if self.partial_feedback {
            observable.push(regs::t(5)); // the carry register
        }
        let check_ranges = if self.cd.stores { vec![(OUT_BASE, 8 * scale.n as u64)] } else { Vec::new() };
        Workload {
            name: self.name,
            variant,
            suite: self.suite,
            program,
            mem,
            observable,
            check_ranges,
            interest: vec![InterestBranch {
                pc: branch_pc,
                what: self.what,
                class: if self.partial_feedback { PaperClass::SeparablePartial } else { PaperClass::SeparableTotal },
            }],
        }
    }

    fn emit_preamble(&self, a: &mut Assembler, scale: Scale) {
        a.li(regs::n(), scale.n as i64);
        a.li(regs::base_a(), DATA_BASE as i64);
        a.li(regs::base_b(), PERM_BASE as i64);
        a.li(regs::i(), 0);
    }

    fn build_base(&self, scale: Scale) -> (cfd_isa::Program, u32) {
        let mut a = Assembler::new();
        let (i, n, p) = (regs::i(), regs::n(), regs::p());
        self.emit_preamble(&mut a, scale);
        a.label("top");
        self.emit_load_x(&mut a, i);
        self.emit_predicate(&mut a);
        let bpc = a.here();
        a.annotate(self.what);
        a.beqz(p, "skip");
        self.emit_cd_with(&mut a, true);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        (a.finish().expect("base kernel assembles"), bpc)
    }

    /// Strip-mined CFD: `use_vq` rides `x` on the Value Queue (CFD+);
    /// `with_dfd` adds a prefetch loop ahead of the push loop.
    fn build_cfd(&self, scale: Scale, use_vq: bool, with_dfd: bool) -> (cfd_isa::Program, u32) {
        let mut a = Assembler::new();
        let (i, n, p, x) = (regs::i(), regs::n(), regs::p(), regs::x());
        let (cs, lim, save) = (regs::strip(0), regs::strip(1), regs::strip(2));
        self.emit_preamble(&mut a, scale);
        a.label("chunk");
        a.addi(lim, i, self.chunk);
        a.min(lim, lim, n);
        a.mv(cs, i);
        if with_dfd {
            // DFD loop: prefetch the chunk's predicate data.
            a.label("dfd");
            self.emit_prefetch(&mut a, i);
            a.addi(i, i, 1);
            a.blt(i, lim, "dfd");
            a.mv(i, cs);
        }
        // Loop 1: predicates.
        a.label("gen");
        self.emit_load_x(&mut a, i);
        self.emit_predicate(&mut a);
        a.push_bq(p);
        if use_vq {
            a.push_vq(x);
        }
        if self.partial_feedback {
            // Hoisted, if-converted loop-carried dependence (§III: the
            // first loop of a partially separable branch carries a copy of
            // the feedback, predicated by conditional moves).
            self.emit_carry_update_ifconv(&mut a);
        }
        a.addi(i, i, 1);
        a.blt(i, lim, "gen");
        a.mv(save, i);
        a.mv(i, cs);
        // Loop 2: consumers.
        a.label("use");
        if use_vq {
            a.pop_vq(x);
        }
        let bpc = a.here();
        a.annotate(self.what);
        a.branch_on_bq("skip");
        if !use_vq {
            // Recompute x for the CD region (the CFD instruction overhead
            // that CFD+ removes).
            self.emit_load_x(&mut a, i);
        }
        self.emit_cd_with(&mut a, false);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, save, "use");
        a.blt(i, n, "chunk");
        a.halt();
        (a.finish().expect("cfd kernel assembles"), bpc)
    }

    fn build_dfd(&self, scale: Scale) -> (cfd_isa::Program, u32) {
        let mut a = Assembler::new();
        let (i, n, p) = (regs::i(), regs::n(), regs::p());
        let (cs, lim) = (regs::strip(0), regs::strip(1));
        self.emit_preamble(&mut a, scale);
        a.label("chunk");
        a.addi(lim, i, self.chunk * 2); // DFD tolerates larger chunks
        a.min(lim, lim, n);
        a.mv(cs, i);
        a.label("dfd");
        self.emit_prefetch(&mut a, i);
        a.addi(i, i, 1);
        a.blt(i, lim, "dfd");
        a.mv(i, cs);
        // Original loop over the chunk.
        a.label("top");
        self.emit_load_x(&mut a, i);
        self.emit_predicate(&mut a);
        let bpc = a.here();
        a.annotate(self.what);
        a.beqz(p, "skip");
        self.emit_cd_with(&mut a, true);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, lim, "top");
        a.blt(i, n, "chunk");
        a.halt();
        (a.finish().expect("dfd kernel assembles"), bpc)
    }

    /// Variants this kernel family supports.
    pub fn variants(&self) -> &'static [Variant] {
        &[Variant::Base, Variant::Cfd, Variant::CfdPlus, Variant::Dfd, Variant::CfdDfd]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> ScanKernel {
        ScanKernel {
            name: "test_scan",
            suite: Suite::Spec2006,
            pattern: AddressPattern::Streaming,
            predicate: Predicate::Threshold { threshold: 35, range: 100 },
            cd: CdRegion { alu_updates: 6, stores: true },
            chunk: 128,
            partial_feedback: false,
            what: "test branch",
        }
    }

    #[test]
    fn all_variants_agree_with_base() {
        let k = kernel();
        let scale = Scale::small();
        let want = k.build(Variant::Base, scale).observe().unwrap();
        for v in [Variant::Cfd, Variant::CfdPlus, Variant::Dfd, Variant::CfdDfd] {
            let got = k.build(v, scale).observe().unwrap();
            assert_eq!(got, want, "variant {v} diverges");
        }
    }

    #[test]
    fn indirect_pattern_agrees_too() {
        let mut k = kernel();
        k.pattern = AddressPattern::Indirect;
        let scale = Scale::small();
        let want = k.build(Variant::Base, scale).observe().unwrap();
        for v in [Variant::Cfd, Variant::CfdPlus, Variant::Dfd, Variant::CfdDfd] {
            assert_eq!(k.build(v, scale).observe().unwrap(), want, "variant {v} diverges");
        }
    }

    #[test]
    fn bit_test_predicate_agrees() {
        let mut k = kernel();
        k.predicate = Predicate::BitTest { mask: 0x7, match_val: 0x3 };
        let scale = Scale::small();
        let want = k.build(Variant::Base, scale).observe().unwrap();
        assert_eq!(k.build(Variant::Cfd, scale).observe().unwrap(), want);
        assert_eq!(k.build(Variant::CfdPlus, scale).observe().unwrap(), want);
    }

    #[test]
    fn cfd_has_instruction_overhead() {
        let k = kernel();
        let scale = Scale::small();
        let base = k.build(Variant::Base, scale).dynamic_instructions().unwrap();
        let cfd = k.build(Variant::Cfd, scale).dynamic_instructions().unwrap();
        let dfd = k.build(Variant::Dfd, scale).dynamic_instructions().unwrap();
        assert!(cfd > base, "CFD duplicates looping work");
        assert!(dfd > base, "DFD adds its prefetch loop");
    }

    #[test]
    fn vq_profitability_depends_on_taken_rate() {
        // CFD+ pays push/pop every iteration; plain CFD recomputes x only
        // when the CD region executes. The VQ wins on mostly-taken
        // branches (§IV-B's dedup motivation) and loses on sparse ones.
        let scale = Scale::small();
        let mut hot = kernel();
        hot.predicate = Predicate::Threshold { threshold: 85, range: 100 };
        let cfd = hot.build(Variant::Cfd, scale).dynamic_instructions().unwrap();
        let plus = hot.build(Variant::CfdPlus, scale).dynamic_instructions().unwrap();
        assert!(plus < cfd, "VQ wins at 85% taken: {plus} vs {cfd}");

        let mut cold = kernel();
        cold.predicate = Predicate::Threshold { threshold: 15, range: 100 };
        let cfd = cold.build(Variant::Cfd, scale).dynamic_instructions().unwrap();
        let plus = cold.build(Variant::CfdPlus, scale).dynamic_instructions().unwrap();
        assert!(plus > cfd, "VQ loses at 15% taken: {plus} vs {cfd}");
    }

    #[test]
    fn base_branch_pc_annotated() {
        let k = kernel();
        let w = k.build(Variant::Base, Scale::small());
        let pc = w.interest[0].pc;
        assert_eq!(w.program.annotation(pc), Some("test branch"));
    }

    #[test]
    fn data_deterministic_per_seed() {
        let k = kernel();
        let a = k.build(Variant::Base, Scale { n: 100, seed: 1 });
        let b = k.build(Variant::Base, Scale { n: 100, seed: 1 });
        let c = k.build(Variant::Base, Scale { n: 100, seed: 2 });
        assert_eq!(a.observe().unwrap(), b.observe().unwrap());
        assert_ne!(a.observe().unwrap(), c.observe().unwrap());
    }

    #[test]
    fn partial_feedback_variants_agree() {
        // The if-converted first loop must reproduce the loop-carried carry
        // exactly (the §III partial-separability recipe).
        let mut k = kernel();
        k.partial_feedback = true;
        let scale = Scale::small();
        let want = k.build(Variant::Base, scale).observe().unwrap();
        for v in [Variant::Cfd, Variant::CfdPlus, Variant::Dfd, Variant::CfdDfd] {
            assert_eq!(k.build(v, scale).observe().unwrap(), want, "variant {v} diverges");
        }
    }

    #[test]
    fn partial_feedback_costs_more_in_loop_one() {
        let mut k = kernel();
        let scale = Scale::small();
        let total_cfd = k.build(Variant::Cfd, scale).dynamic_instructions().unwrap();
        k.partial_feedback = true;
        let partial_cfd = k.build(Variant::Cfd, scale).dynamic_instructions().unwrap();
        assert!(partial_cfd > total_cfd, "if-conversion adds first-loop instructions");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut k = kernel();
        k.pattern = AddressPattern::Indirect;
        let w = k.build(Variant::Base, Scale { n: 500, seed: 3 });
        let mut seen = vec![false; 500];
        for i in 0..500u64 {
            let v = w.mem.read_u64(PERM_BASE + 8 * i) as usize;
            assert!(v < 500 && !seen[v]);
            seen[v] = true;
        }
    }
}
