//! astar region #1 analog — the paper's case study (Fig. 22).
//!
//! The original (`makebound2`) walks a list of cell indices, checks each
//! cell's fill stamp, and for unstamped cells checks a second field,
//! records matches, stamps the cell, and *returns early* once enough
//! matches accumulate. Three challenges (§VII-B):
//!
//! 1. **Nested hard branches** — the inner load is only safe under the
//!    outer predicate, so the decoupling uses three loops: outer-predicate
//!    generation, combined-predicate generation (guarded by popped outer
//!    predicates), and the consumer loop.
//! 2. **Partial separability** — the stamp store feeds later outer
//!    predicates through memory; it is hoisted into the first loop and
//!    if-converted (synthesized select).
//! 3. **Early exit** — the second loop duplicates the return guard and
//!    breaks; `Mark`/`Forward` discard the first loop's excess pushes.
//!
//! The cell array is treated as region-local scratch (not part of the
//! observable result): the first loop stamps a whole strip-mined chunk
//! even when the break lands mid-chunk, exactly like the paper's region
//! ends with the function's return.

use crate::common::{regs, InterestBranch, PaperClass, Scale, Suite, Variant, Workload, Xorshift};
use cfd_isa::{Assembler, MemImage, Program};

const WAY_BASE: u64 = 0x100_0000;
const BND_BASE: u64 = 0x10_0000;
const OUT_BASE: u64 = 0x800_0000;
/// Ratio of cell-array entries to outer iterations (footprint control).
const WAY_FACTOR: u64 = 4;
const FILLNUM: i64 = 9;
// Loop 2 holds a chunk of outer predicates while pushing a chunk of
// combined predicates, so the worst-case BQ occupancy is 2*CHUNK.
const CHUNK: i64 = 64;

/// Fraction (percent) of cells pre-stamped with `FILLNUM` (outer predicate
/// false on first touch).
const PRESTAMPED_PCT: u64 = 40;

fn gen_mem(scale: Scale) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = Xorshift::new(scale.seed ^ 0xa57a);
    let ways = scale.n as u64 * WAY_FACTOR;
    for k in 0..ways {
        let fill = if rng.chance(PRESTAMPED_PCT) { FILLNUM as u64 } else { rng.below(4) };
        let num = rng.below(4); // regf matches ~1/4
        mem.write_u64(WAY_BASE + 16 * k, fill);
        mem.write_u64(WAY_BASE + 16 * k + 8, num);
    }
    for i in 0..scale.n as u64 {
        mem.write_u64(BND_BASE + 8 * i, rng.below(ways));
    }
    mem
}

/// Builds the requested variant.
///
/// Supported: `Base`, `Cfd`, `Dfd`, `CfdDfd`.
///
/// # Panics
///
/// Panics on unsupported variants or internal assembly errors.
pub fn build(variant: Variant, scale: Scale) -> Workload {
    let limit = (scale.n / 10).max(4) as i64; // early exit deep into the run
    let (program, branches) = match variant {
        Variant::Base => build_base(scale, limit, false),
        Variant::Dfd => build_base(scale, limit, true),
        Variant::Cfd => build_cfd(scale, limit, false),
        Variant::CfdDfd => build_cfd(scale, limit, true),
        other => panic!("astar_r1_like does not support variant {other}"),
    };
    Workload {
        name: "astar_r1_like",
        variant,
        suite: Suite::Spec2006,
        program,
        mem: gen_mem(scale),
        observable: vec![regs::acc(0), regs::acc(6)],
        check_ranges: vec![(OUT_BASE, 8 * limit as u64)],
        interest: branches,
    }
}

/// Variants this kernel supports.
pub fn variants() -> &'static [Variant] {
    &[Variant::Base, Variant::Cfd, Variant::Dfd, Variant::CfdDfd]
}

fn emit_preamble(a: &mut Assembler, scale: Scale, limit: i64) {
    a.li(regs::n(), scale.n as i64);
    a.li(regs::base_a(), WAY_BASE as i64);
    a.li(regs::base_b(), BND_BASE as i64);
    a.li(regs::base_c(), OUT_BASE as i64);
    a.li(regs::t(4), FILLNUM);
    a.li(regs::t(5), limit);
    a.li(regs::i(), 0);
}

/// `t0 = &way[bnd[i]]` (two dependent loads — the miss chain).
fn emit_way_addr(a: &mut Assembler) {
    let (i, base_a, base_b, t0) = (regs::i(), regs::base_a(), regs::base_b(), regs::t(0));
    a.sll(t0, i, 3i64);
    a.add(t0, t0, base_b);
    a.ld(t0, 0, t0); // k = bnd[i]
    a.sll(t0, t0, 4i64); // 16-byte cells
    a.add(t0, t0, base_a);
}

fn build_base(scale: Scale, limit: i64, dfd: bool) -> (Program, Vec<InterestBranch>) {
    let mut a = Assembler::new();
    let (i, n, x, p, cnt, acc) = (regs::i(), regs::n(), regs::x(), regs::p(), regs::acc(6), regs::acc(0));
    let (t0, t1, fillnum, limit_r) = (regs::t(0), regs::t(1), regs::t(4), regs::t(5));
    let (cs, lim) = (regs::strip(0), regs::strip(1));
    emit_preamble(&mut a, scale, limit);
    if dfd {
        a.label("chunk");
        a.addi(lim, i, CHUNK * 2);
        a.min(lim, lim, n);
        a.mv(cs, i);
        // DFD loop (Fig. 16): the load feeding the branches + address slice.
        a.label("dfd");
        emit_way_addr(&mut a);
        a.prefetch(0, t0);
        a.addi(i, i, 1);
        a.blt(i, lim, "dfd");
        a.mv(i, cs);
    } else {
        a.mv(lim, n);
    }
    a.label("top");
    emit_way_addr(&mut a);
    a.ld(x, 0, t0); // way[k].fill
    let outer_pc = a.here();
    a.annotate("outer: cell unstamped");
    a.beq(x, fillnum, "skip"); // outer branch (inverted: skip when stamped)
    a.ld(t1, 8, t0); // way[k].num — safe only here
    let inner_pc = a.here();
    a.annotate("inner: num matches");
    a.bnez(t1, "stamp"); // inner branch: match when num == 0
                         // Record the match.
    a.sll(t1, cnt, 3i64);
    a.add(t1, t1, regs::base_c());
    a.srl(p, t0, 4i64);
    a.sd(p, 0, t1); // out[cnt] = &way[k] >> 4
    a.add(acc, acc, p);
    a.addi(cnt, cnt, 1);
    a.beq(cnt, limit_r, "done"); // early return
    a.label("stamp");
    a.sd(fillnum, 0, t0); // way[k].fill = FILLNUM (feeds later predicates)
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, lim, "top");
    if dfd {
        a.blt(i, n, "chunk");
    }
    a.label("done");
    a.halt();
    let program = a.finish().expect("astar_r1 base assembles");
    let branches = vec![
        InterestBranch { pc: outer_pc, what: "outer: cell unstamped", class: PaperClass::SeparablePartial },
        InterestBranch { pc: inner_pc, what: "inner: num matches", class: PaperClass::SeparablePartial },
    ];
    (program, branches)
}

fn build_cfd(scale: Scale, limit: i64, dfd: bool) -> (Program, Vec<InterestBranch>) {
    let mut a = Assembler::new();
    let (i, n, x, p, cnt, acc) = (regs::i(), regs::n(), regs::x(), regs::p(), regs::acc(6), regs::acc(0));
    let (t0, t1, fillnum, limit_r) = (regs::t(0), regs::t(1), regs::t(4), regs::t(5));
    let (cs, lim, procd) = (regs::strip(0), regs::strip(1), regs::strip(2));
    let j = regs::j();
    emit_preamble(&mut a, scale, limit);
    a.label("chunk");
    a.addi(lim, i, CHUNK);
    a.min(lim, lim, n);
    a.mv(cs, i);
    if dfd {
        a.label("dfd");
        emit_way_addr(&mut a);
        a.prefetch(0, t0);
        a.addi(i, i, 1);
        a.blt(i, lim, "dfd");
        a.mv(i, cs);
    }
    // ---- Loop 1: outer predicates + hoisted, if-converted stamp ----
    a.label("gen");
    emit_way_addr(&mut a);
    a.ld(x, 0, t0); // fill
    a.sne(p, x, fillnum); // outer predicate: unstamped
    a.push_bq(p);
    // If-converted stamp: way[k].fill = p ? FILLNUM : old (always stores).
    a.sub(t1, regs::zero(), p); // mask = 0 - p
    a.and(j, fillnum, t1);
    a.xor(t1, t1, -1i64);
    a.and(t1, x, t1);
    a.or(t1, t1, j);
    a.sd(t1, 0, t0);
    a.addi(i, i, 1);
    a.blt(i, lim, "gen");
    a.mark_bq(); // excess outer predicates are discarded on early exit
    a.mv(i, cs);
    // ---- Loop 2: combined predicates (guarded loads), duplicated guard ----
    // procd counts this chunk's processed iterations for loop 3; j mirrors
    // the global match count so the early exit fires like the original.
    a.li(procd, 0);
    a.mv(j, cnt);
    a.label("mid");
    a.li(p, 0);
    a.branch_on_bq("mid_skip"); // outer predicate false -> combined 0
    emit_way_addr(&mut a);
    a.ld(t1, 8, t0);
    a.seq(p, t1, 0i64); // inner: num == 0
    a.label("mid_skip");
    a.push_bq(p);
    a.add(j, j, p);
    a.addi(i, i, 1);
    a.addi(procd, procd, 1);
    a.beq(j, limit_r, "mid_done"); // duplicated return guard
    a.blt(i, lim, "mid");
    a.label("mid_done");
    a.forward_bq(); // bulk-pop unconsumed outer predicates (§IV-A)
                    // ---- Loop 3: consumer, guarded by the combined predicate ----
    a.mv(i, cs);
    a.add(procd, cs, procd); // end bound for loop 3
    a.label("use");
    a.branch_on_bq("use_skip");
    emit_way_addr(&mut a);
    a.sll(t1, cnt, 3i64);
    a.add(t1, t1, regs::base_c());
    a.srl(p, t0, 4i64);
    a.sd(p, 0, t1);
    a.add(acc, acc, p);
    a.addi(cnt, cnt, 1);
    a.label("use_skip");
    a.addi(i, i, 1);
    a.blt(i, procd, "use");
    a.beq(cnt, limit_r, "done");
    a.blt(i, n, "chunk");
    a.label("done");
    a.halt();
    let program = a.finish().expect("astar_r1 cfd assembles");
    (program, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfd_matches_base() {
        let scale = Scale::small();
        let want = build(Variant::Base, scale).observe().unwrap();
        let got = build(Variant::Cfd, scale).observe().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn dfd_matches_base() {
        let scale = Scale::small();
        let want = build(Variant::Base, scale).observe().unwrap();
        assert_eq!(build(Variant::Dfd, scale).observe().unwrap(), want);
        assert_eq!(build(Variant::CfdDfd, scale).observe().unwrap(), want);
    }

    #[test]
    fn early_exit_actually_fires() {
        let scale = Scale::small();
        let w = build(Variant::Base, scale);
        let out = w.observe().unwrap();
        // acc(6) == cnt == limit when the early return triggered.
        let limit = (scale.n / 10).max(4) as i64;
        assert_eq!(out[1], limit, "early exit must trigger (cnt)");
    }

    #[test]
    fn stamping_makes_repeats_skip() {
        // With a tiny cell array, repeats are guaranteed; the second touch
        // of a cell must take the outer-skip path. Equivalence across
        // variants already covers this; here we check it is exercised:
        // matches must be strictly fewer than unstamped first touches.
        let scale = Scale { n: 2_000, seed: 77 };
        let w = build(Variant::Base, scale);
        let out = w.observe().unwrap();
        assert!(out[1] > 0, "some matches found");
    }

    #[test]
    fn cfd_uses_mark_and_forward() {
        let w = build(Variant::Cfd, Scale::small());
        let instrs = w.program.instrs();
        assert!(instrs.iter().any(|i| matches!(i, cfd_isa::Instr::MarkBq)));
        assert!(instrs.iter().any(|i| matches!(i, cfd_isa::Instr::ForwardBq)));
    }

    #[test]
    fn different_seeds_different_results() {
        let a = build(Variant::Base, Scale { n: 1000, seed: 1 }).observe().unwrap();
        let b = build(Variant::Base, Scale { n: 1000, seed: 2 }).observe().unwrap();
        assert_ne!(a, b);
    }
}
