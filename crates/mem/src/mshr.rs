//! Miss Status Holding Registers.
//!
//! MSHRs track outstanding cache misses: a demand access to a block already
//! in flight merges into the existing entry instead of issuing a second
//! request; a full MSHR file stalls further misses. Occupancy over time is
//! tracked in a histogram — the paper's Fig. 25a plots exactly this for the
//! L1 data cache (32 MSHRs) to show DFD's denser miss clusters.

/// A pending miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    block_addr: u64,
    /// Cycle at which the fill completes.
    done_at: u64,
}

/// An MSHR file with an occupancy histogram.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    /// histogram[k] = number of cycles during which exactly k entries were live.
    histogram: Vec<u64>,
    last_update: u64,
    /// Demand misses merged into an in-flight entry.
    pub merges: u64,
    /// Accesses rejected because the file was full.
    pub full_stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers (paper: 32 for the L1D).
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0);
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            histogram: vec![0; capacity + 1],
            last_update: 0,
            merges: 0,
            full_stalls: 0,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy (after retiring completed entries at `now`).
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.advance(now);
        self.entries.len()
    }

    /// Advances time to `now`, accumulating the occupancy histogram and
    /// retiring completed entries.
    pub fn advance(&mut self, now: u64) {
        if now <= self.last_update {
            return;
        }
        // Account occupancy across completion boundaries between
        // last_update and now.
        let mut t = self.last_update;
        loop {
            let occ = self.entries.len().min(self.capacity);
            let next_done = self.entries.iter().map(|e| e.done_at).filter(|&d| d > t).min().unwrap_or(u64::MAX);
            let seg_end = next_done.min(now);
            self.histogram[occ] += seg_end - t;
            self.entries.retain(|e| e.done_at > seg_end);
            t = seg_end;
            if t >= now {
                break;
            }
        }
        self.last_update = now;
    }

    /// Result of presenting a miss to the file.
    ///
    /// `Merged(done_at)` — an in-flight entry covers this block;
    /// `Allocated` — a new entry was created;
    /// `Full` — no register free, the access must retry.
    pub fn request(&mut self, block_addr: u64, now: u64, done_at: u64) -> MshrOutcome {
        match self.probe(block_addr, now) {
            MshrProbe::Merged { done_at } => MshrOutcome::Merged { done_at },
            MshrProbe::Full => MshrOutcome::Full,
            MshrProbe::Ready => {
                self.allocate(block_addr, done_at);
                MshrOutcome::Allocated
            }
        }
    }

    /// Checks whether a miss to `block_addr` merges, stalls, or may
    /// allocate — without allocating. Pair with [`allocate`](Self::allocate)
    /// once the miss latency is known.
    pub fn probe(&mut self, block_addr: u64, now: u64) -> MshrProbe {
        self.advance(now);
        if let Some(e) = self.entries.iter().find(|e| e.block_addr == block_addr) {
            self.merges += 1;
            return MshrProbe::Merged { done_at: e.done_at };
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrProbe::Full;
        }
        MshrProbe::Ready
    }

    /// Whether a new allocation would currently be refused, without
    /// counting statistics (for pre-checks whose rejection is reported via
    /// [`note_full_stall`](Self::note_full_stall)).
    pub fn probe_peek(&self) -> MshrProbe {
        if self.entries.len() >= self.capacity {
            MshrProbe::Full
        } else {
            MshrProbe::Ready
        }
    }

    /// Counts one full-stall (used with [`probe_peek`](Self::probe_peek)).
    pub fn note_full_stall(&mut self) {
        self.full_stalls += 1;
    }

    /// Completion cycle of an in-flight miss covering `block_addr`, if any.
    /// A hit counts as a merge. Caches fill their tags eagerly in this
    /// simulator, so callers consult this *before* probing tags to observe
    /// the fill-in-progress window.
    pub fn pending(&mut self, block_addr: u64, now: u64) -> Option<u64> {
        self.advance(now);
        let e = self.entries.iter().find(|e| e.block_addr == block_addr)?;
        self.merges += 1;
        Some(e.done_at)
    }

    /// Allocates an entry after a [`probe`](Self::probe) returned `Ready`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full (the probe contract was violated).
    pub fn allocate(&mut self, block_addr: u64, done_at: u64) {
        assert!(self.entries.len() < self.capacity, "allocate without a successful probe");
        self.entries.push(MshrEntry { block_addr, done_at });
    }

    /// The occupancy histogram: `histogram()[k]` is the number of cycles
    /// during which exactly `k` entries were live.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Resets statistics (entries stay).
    pub fn reset_stats(&mut self) {
        for h in &mut self.histogram {
            *h = 0;
        }
        self.merges = 0;
        self.full_stalls = 0;
    }
}

/// Outcome of an MSHR request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// Covered by an in-flight miss completing at `done_at`.
    Merged {
        /// Completion cycle of the covering entry.
        done_at: u64,
    },
    /// New entry allocated.
    Allocated,
    /// File full; retry later.
    Full,
}

/// Outcome of an MSHR probe (allocation deferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrProbe {
    /// Covered by an in-flight miss completing at `done_at`.
    Merged {
        /// Completion cycle of the covering entry.
        done_at: u64,
    },
    /// A register is free; call [`MshrFile::allocate`].
    Ready,
    /// File full; retry later.
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(0x100, 0, 50), MshrOutcome::Allocated);
        assert_eq!(m.request(0x100, 10, 60), MshrOutcome::Merged { done_at: 50 });
        assert_eq!(m.merges, 1);
        // After cycle 50 the entry completes; a new request allocates.
        assert_eq!(m.request(0x100, 51, 90), MshrOutcome::Allocated);
    }

    #[test]
    fn full_rejects() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.request(0x100, 0, 100), MshrOutcome::Allocated);
        assert_eq!(m.request(0x200, 0, 100), MshrOutcome::Full);
        assert_eq!(m.full_stalls, 1);
    }

    #[test]
    fn histogram_accumulates_occupancy() {
        let mut m = MshrFile::new(4);
        m.request(0x100, 0, 10); // occupancy 1 from cycle 0..10
        m.advance(10); // ...entry completes at 10
        m.advance(20); // occupancy 0 from 10..20
        let h = m.histogram();
        assert_eq!(h[1], 10);
        assert_eq!(h[0], 10);
    }

    #[test]
    fn histogram_handles_overlapping_misses() {
        let mut m = MshrFile::new(4);
        m.request(0x100, 0, 20);
        m.request(0x200, 5, 25);
        m.advance(30);
        let h = m.histogram();
        assert_eq!(h[1], 5 + 5); // 0..5 and 20..25
        assert_eq!(h[2], 15); // 5..20
        assert_eq!(h[0], 5); // 25..30
    }

    #[test]
    fn occupancy_retires_done_entries() {
        let mut m = MshrFile::new(4);
        m.request(0x100, 0, 5);
        assert_eq!(m.occupancy(3), 1);
        assert_eq!(m.occupancy(6), 0);
    }
}
