//! The three-level cache hierarchy + DRAM, with non-blocking L1 misses.
//!
//! Sandy-Bridge-like defaults: 32 KB L1D, 256 KB L2, 8 MB L3, 64-byte
//! blocks, write-back/write-allocate everywhere, 32 L1 MSHRs. The timing
//! model is "latency-back": a demand access probes the levels outward and
//! immediately returns its total latency and the *furthest level* that
//! serviced it ([`MemLevel`]); fills update all traversed tags atomically.
//! The MSHR file provides miss merging, back-pressure, and the occupancy
//! histogram of the paper's Fig. 25a.
//!
//! The furthest-level result is what the paper uses to classify
//! mispredictions as "fed by L1/L2/L3/MEM" (Fig. 2a, Fig. 25b): `cfd-core`
//! propagates it through the dataflow as a taint.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::{MshrFile, MshrOutcome, MshrProbe};
use crate::prefetch::{NextLinePrefetcher, StridePrefetcher};
use std::fmt;

/// The furthest memory level that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLevel {
    /// Serviced by the L1 data cache.
    L1,
    /// Serviced by the L2.
    L2,
    /// Serviced by the L3.
    L3,
    /// Serviced by main memory.
    Mem,
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLevel::L1 => write!(f, "L1"),
            MemLevel::L2 => write!(f, "L2"),
            MemLevel::L3 => write!(f, "L3"),
            MemLevel::Mem => write!(f, "MEM"),
        }
    }
}

/// Hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L3 geometry.
    pub l3: CacheConfig,
    /// L1 hit latency (cycles, load-to-use).
    pub l1_latency: u32,
    /// L2 hit latency.
    pub l2_latency: u32,
    /// L3 hit latency.
    pub l3_latency: u32,
    /// Main memory latency.
    pub mem_latency: u32,
    /// Number of L1 MSHRs.
    pub l1_mshrs: usize,
    /// Enable the L1 next-line prefetcher.
    pub next_line_prefetch: bool,
    /// Enable the PC-indexed stride prefetcher (degree 2).
    pub stride_prefetch: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig { size_bytes: 32 * 1024, ways: 8, block_bits: 6 },
            l2: CacheConfig { size_bytes: 256 * 1024, ways: 8, block_bits: 6 },
            l3: CacheConfig { size_bytes: 8 * 1024 * 1024, ways: 16, block_bits: 6 },
            l1_latency: 4,
            l2_latency: 12,
            l3_latency: 35,
            mem_latency: 200,
            l1_mshrs: 32,
            next_line_prefetch: false,
            stride_prefetch: false,
        }
    }
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles until the data is available.
    pub latency: u32,
    /// The furthest level that serviced the access.
    pub level: MemLevel,
    /// The access could not even allocate an MSHR; retry next cycle.
    pub mshr_full: bool,
}

/// The cache hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    mshr: MshrFile,
    next_line: NextLinePrefetcher,
    stride: StridePrefetcher,
    /// Demand accesses serviced per level.
    pub level_counts: [u64; 4],
    /// Prefetch fills performed.
    pub prefetch_fills: u64,
}

impl Hierarchy {
    /// Creates a hierarchy from a configuration.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            mshr: MshrFile::new(cfg.l1_mshrs),
            next_line: NextLinePrefetcher::new(),
            stride: StridePrefetcher::new(8, 2),
            level_counts: [0; 4],
            prefetch_fills: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Walks the levels for a block already missing in L1; fills tags and
    /// returns (extra latency beyond L1, furthest level).
    fn fetch_block(&mut self, addr: u64, write: bool) -> (u32, MemLevel) {
        let (extra, level) = if self.l2.access(addr, false) {
            (self.cfg.l2_latency, MemLevel::L2)
        } else if self.l3.access(addr, false) {
            (self.cfg.l3_latency, MemLevel::L3)
        } else {
            (self.cfg.mem_latency, MemLevel::Mem)
        };
        // Fill inward (inclusive hierarchy; victims just drop — their
        // write-back traffic is counted by the cache stats).
        if level >= MemLevel::L3 {
            self.l3.fill(addr, false);
        }
        if level >= MemLevel::L2 {
            self.l2.fill(addr, false);
        }
        self.l1.fill(addr, write);
        (extra, level)
    }

    /// A demand access from the core at cycle `now`.
    ///
    /// `pc` is the accessing instruction's PC (for the stride prefetcher).
    pub fn access(&mut self, pc: u64, addr: u64, write: bool, now: u64) -> AccessResult {
        let block = self.l1.block_addr(addr);
        // A full MSHR file rejects the access before any state or statistic
        // changes: the core retries the same access next cycle, and retries
        // must not inflate L1 stats or retrain the prefetcher.
        if self.mshr.pending(block, now).is_none()
            && !self.l1.probe_peek(addr)
            && matches!(self.mshr.probe_peek(), MshrProbe::Full)
        {
            self.mshr.note_full_stall();
            return AccessResult { latency: self.cfg.l1_latency, level: MemLevel::L1, mshr_full: true };
        }
        if self.cfg.stride_prefetch && !write {
            for req in self.stride.on_access(pc, addr) {
                self.prefetch_fill(req.addr, now);
            }
        }
        // Tags fill eagerly, so an in-flight fill must be observed *before*
        // the L1 probe: same-block accesses during the miss window pay the
        // remaining fill latency (MSHR merge), not a fake L1 hit.
        if let Some(done_at) = self.mshr.pending(block, now) {
            let remaining = done_at.saturating_sub(now) as u32;
            let latency = remaining.max(self.cfg.l1_latency);
            // Classify the merged access by its effective latency, for the
            // "fed by which level" taint.
            let level = self.classify_latency(latency);
            self.l1.access(addr, write); // keep LRU/dirty state and stats honest
            self.level_counts[level as usize] += 1;
            return AccessResult { latency, level, mshr_full: false };
        }
        if self.l1.access(addr, write) {
            self.level_counts[0] += 1;
            return AccessResult { latency: self.cfg.l1_latency, level: MemLevel::L1, mshr_full: false };
        }
        // L1 miss: consult the MSHR file.
        match self.mshr.probe(block, now) {
            MshrProbe::Merged { done_at } => {
                // Unreachable in practice (pending() above catches merges);
                // kept for MshrProbe completeness.
                let remaining = done_at.saturating_sub(now) as u32;
                let latency = remaining.max(self.cfg.l1_latency);
                let level = self.classify_latency(latency);
                self.level_counts[level as usize] += 1;
                AccessResult { latency, level, mshr_full: false }
            }
            MshrProbe::Full => AccessResult { latency: self.cfg.l1_latency, level: MemLevel::L1, mshr_full: true },
            MshrProbe::Ready => {
                let (extra, level) = self.fetch_block(addr, write);
                let latency = self.cfg.l1_latency + extra;
                self.mshr.allocate(block, now + latency as u64);
                if self.cfg.next_line_prefetch {
                    let next = self.next_line.on_miss(block, 1 << self.cfg.l1.block_bits);
                    self.prefetch_fill(next.addr, now);
                }
                self.level_counts[level as usize] += 1;
                AccessResult { latency, level, mshr_full: false }
            }
        }
    }

    fn classify_latency(&self, latency: u32) -> MemLevel {
        if latency <= self.cfg.l1_latency + self.cfg.l2_latency {
            MemLevel::L2
        } else if latency <= self.cfg.l1_latency + self.cfg.l3_latency {
            MemLevel::L3
        } else {
            MemLevel::Mem
        }
    }

    /// A prefetch: fills tags without demand statistics or latency.
    pub fn prefetch_fill(&mut self, addr: u64, now: u64) {
        let block = self.l1.block_addr(addr);
        if self.l1.probe_silent(block) {
            return;
        }
        // The in-flight window reflects where the block actually is: a
        // demand access merging into this prefetch pays the remaining L2/L3
        // /memory latency, not always the full memory latency.
        let in_l2 = self.l2.probe_silent(block);
        let in_l3 = in_l2 || self.l3.probe_silent(block);
        let latency = if in_l2 {
            self.cfg.l2_latency
        } else if in_l3 {
            self.cfg.l3_latency
        } else {
            self.cfg.mem_latency
        };
        // Prefetches use a free MSHR if available; otherwise they are dropped.
        if let MshrOutcome::Allocated = self.mshr.request(block, now, now + latency as u64) {
            if !in_l3 {
                self.l3.fill(block, false);
            }
            self.l2.fill(block, false);
            self.l1.fill(block, false);
            self.prefetch_fills += 1;
        }
    }

    /// Advances MSHR accounting to `now` (call at end of simulation).
    pub fn advance(&mut self, now: u64) {
        self.mshr.advance(now);
    }

    /// Per-level cache statistics: (L1, L2, L3).
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1.stats, self.l2.stats, self.l3.stats)
    }

    /// The L1 MSHR occupancy histogram (Fig. 25a).
    pub fn mshr_histogram(&self) -> &[u64] {
        self.mshr.histogram()
    }

    /// Number of MSHR merges and full-stalls.
    pub fn mshr_pressure(&self) -> (u64, u64) {
        (self.mshr.merges, self.mshr.full_stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut hi = h();
        let r = hi.access(0x40, 0x1_0000, false, 0);
        assert_eq!(r.level, MemLevel::Mem);
        assert_eq!(r.latency, 4 + 200);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut hi = h();
        hi.access(0x40, 0x1_0000, false, 0);
        let r = hi.access(0x40, 0x1_0000, false, 300);
        assert_eq!(r.level, MemLevel::L1);
        assert_eq!(r.latency, 4);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut hi = h();
        // Fill a block, then evict it from L1 by filling 9 conflicting ways
        // (L1: 32KB/8way/64B = 64 sets; same set every 64*64 = 4096 bytes).
        hi.access(0x40, 0x10_0000, false, 0);
        for i in 1..=8u64 {
            hi.access(0x40, 0x10_0000 + i * 4096, false, i * 300);
        }
        let r = hi.access(0x40, 0x10_0000, false, 10_000);
        assert_eq!(r.level, MemLevel::L2);
        assert_eq!(r.latency, 4 + 12);
    }

    #[test]
    fn mshr_merge_shares_latency() {
        let mut hi = h();
        let a = hi.access(0x40, 0x2_0000, false, 0);
        assert_eq!(a.level, MemLevel::Mem);
        // Another access to the same block 100 cycles later merges and
        // waits only the remainder.
        let b = hi.access(0x44, 0x2_0010, false, 100);
        assert!(!b.mshr_full);
        assert_eq!(b.latency, 104); // 204 - 100
    }

    #[test]
    fn mshr_full_reports_stall() {
        let cfg = HierarchyConfig { l1_mshrs: 1, ..Default::default() };
        let mut hi = Hierarchy::new(cfg);
        hi.access(0x40, 0x2_0000, false, 0);
        let r = hi.access(0x40, 0x9_0000, false, 1);
        assert!(r.mshr_full);
    }

    #[test]
    fn prefetch_fill_avoids_demand_miss() {
        let mut hi = h();
        hi.prefetch_fill(0x5_0000, 0);
        let r = hi.access(0x40, 0x5_0000, false, 300);
        assert_eq!(r.level, MemLevel::L1);
        assert_eq!(hi.prefetch_fills, 1);
    }

    #[test]
    fn next_line_prefetcher_covers_streaming() {
        let cfg = HierarchyConfig { next_line_prefetch: true, ..Default::default() };
        let mut hi = Hierarchy::new(cfg);
        hi.access(0x40, 0x8_0000, false, 0);
        // The next block was prefetched.
        let r = hi.access(0x40, 0x8_0040, false, 300);
        assert_eq!(r.level, MemLevel::L1);
    }

    #[test]
    fn level_counts_accumulate() {
        let mut hi = h();
        hi.access(0x40, 0x3_0000, false, 0);
        hi.access(0x40, 0x3_0000, false, 300);
        assert_eq!(hi.level_counts[MemLevel::Mem as usize], 1);
        assert_eq!(hi.level_counts[MemLevel::L1 as usize], 1);
    }

    #[test]
    fn write_allocates_dirty() {
        let mut hi = h();
        hi.access(0x40, 0x6_0000, true, 0);
        let (l1, _, _) = hi.cache_stats();
        assert_eq!(l1.misses(), 1);
        // A read now hits.
        let r = hi.access(0x40, 0x6_0000, false, 300);
        assert_eq!(r.level, MemLevel::L1);
    }

    #[test]
    fn mem_level_ordering() {
        assert!(MemLevel::L1 < MemLevel::L2);
        assert!(MemLevel::L3 < MemLevel::Mem);
        assert_eq!(MemLevel::Mem.to_string(), "MEM");
    }
}
