//! # cfd-mem — cache hierarchy substrate
//!
//! Timing-only memory system for the CFD reproduction: set-associative
//! caches ([`Cache`]), MSHRs with occupancy histograms ([`MshrFile`]),
//! next-line/stride prefetchers, and the three-level [`Hierarchy`]
//! (Sandy-Bridge-like 32 KB / 256 KB / 8 MB + DRAM) the timing core issues
//! demand accesses to.
//!
//! Data does not live here — the `cfd-isa` memory image holds values; this
//! crate models tags, latency, and bandwidth-limiting structures only.
//!
//! # Example
//!
//! ```
//! use cfd_mem::{Hierarchy, HierarchyConfig, MemLevel};
//! let mut h = Hierarchy::new(HierarchyConfig::default());
//! let cold = h.access(0x40, 0x1_0000, false, 0);
//! assert_eq!(cold.level, MemLevel::Mem);
//! let warm = h.access(0x40, 0x1_0000, false, 500);
//! assert_eq!(warm.level, MemLevel::L1);
//! ```

mod cache;
mod hierarchy;
mod mshr;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats, Eviction};
pub use hierarchy::{AccessResult, Hierarchy, HierarchyConfig, MemLevel};
pub use mshr::{MshrFile, MshrOutcome, MshrProbe};
pub use prefetch::{NextLinePrefetcher, PrefetchRequest, StridePrefetcher};
