//! Hardware prefetchers: next-line and PC-indexed stride.
//!
//! The baseline core can enable these as an ablation (the paper's DFD is a
//! *software* prefetching scheme; comparing it against hardware prefetching
//! is a natural extension experiment). Prefetchers emit candidate addresses;
//! the hierarchy decides whether to act on them.

/// A prefetch candidate produced by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// The address to prefetch.
    pub addr: u64,
}

/// Next-line prefetcher: on a miss to block B, prefetch B+1.
#[derive(Debug, Clone, Default)]
pub struct NextLinePrefetcher {
    /// Prefetches issued.
    pub issued: u64,
}

impl NextLinePrefetcher {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a demand miss; returns the next-line candidate.
    pub fn on_miss(&mut self, block_addr: u64, block_bytes: u64) -> PrefetchRequest {
        self.issued += 1;
        PrefetchRequest { addr: block_addr.wrapping_add(block_bytes) }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u32,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// PC-indexed stride prefetcher with confidence and configurable degree.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    index_bits: u32,
    degree: usize,
    /// Prefetches issued.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Confidence required before issuing.
    const CONF_THRESHOLD: u8 = 2;

    /// Creates a stride prefetcher with `2^index_bits` entries issuing
    /// `degree` requests ahead.
    pub fn new(index_bits: u32, degree: usize) -> StridePrefetcher {
        StridePrefetcher { table: vec![StrideEntry::default(); 1 << index_bits], index_bits, degree, issued: 0 }
    }

    /// Observes a demand load at `pc` to `addr`; returns prefetch
    /// candidates (empty until a stable stride is observed).
    pub fn on_access(&mut self, pc: u64, addr: u64) -> Vec<PrefetchRequest> {
        let idx = ((pc >> 2) as usize) & ((1 << self.index_bits) - 1);
        let tag = (pc >> 2) as u32;
        let e = &mut self.table[idx];
        if !e.valid || e.tag != tag {
            *e = StrideEntry { tag, last_addr: addr, stride: 0, confidence: 0, valid: true };
            return Vec::new();
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= Self::CONF_THRESHOLD {
            let stride = e.stride;
            let degree = self.degree;
            self.issued += degree as u64;
            (1..=degree).map(|k| PrefetchRequest { addr: addr.wrapping_add((stride * k as i64) as u64) }).collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_prefetches_adjacent_block() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(p.on_miss(0x1000, 64).addr, 0x1040);
        assert_eq!(p.issued, 1);
    }

    #[test]
    fn stride_learns_constant_stride() {
        let mut p = StridePrefetcher::new(8, 2);
        let mut got = Vec::new();
        for i in 0..6u64 {
            got = p.on_access(0x40, 0x1000 + i * 64);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].addr, 0x1000 + 5 * 64 + 64);
        assert_eq!(got[1].addr, 0x1000 + 5 * 64 + 128);
    }

    #[test]
    fn stride_ignores_random_pattern() {
        let mut p = StridePrefetcher::new(8, 2);
        let addrs = [0x1000u64, 0x9040, 0x2300, 0x7780, 0x1100, 0xa000];
        let mut total = 0;
        for a in addrs {
            total += p.on_access(0x40, a).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn stride_resets_on_pc_conflict() {
        let mut p = StridePrefetcher::new(2, 1);
        for i in 0..5u64 {
            p.on_access(0x40, 0x1000 + i * 8);
        }
        // Different pc, same table slot modulo 4 entries.
        let reqs = p.on_access(0x40 + (4 << 2), 0x5000);
        assert!(reqs.is_empty());
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(8, 1);
        let mut got = Vec::new();
        for i in (0..6u64).rev() {
            got = p.on_access(0x80, 0x9000 + i * 32);
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].addr, 0x9000 - 32);
    }
}
