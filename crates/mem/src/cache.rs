//! A set-associative cache model (tags + LRU only).
//!
//! Timing simulators need hit/miss decisions and replacement behaviour, not
//! data: data lives in the `cfd-isa` memory image. This keeps caches cheap
//! and makes wrong-path pollution effects come out naturally.

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// log2 of the block size in bytes (6 = 64-byte blocks).
    pub block_bits: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// power-of-two sets).
    pub fn sets(&self) -> usize {
        let block = 1usize << self.block_bits;
        let sets = self.size_bytes / (block * self.ways);
        assert!(sets.is_power_of_two() && sets > 0, "cache sets must be a positive power of two");
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    lru: u8,
    valid: bool,
    dirty: bool,
}

/// An eviction produced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block-aligned address of the victim.
    pub addr: u64,
    /// Whether the victim was dirty (needs write-back).
    pub dirty: bool,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, true-LRU, write-back cache (tags only).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    /// Statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache { cfg, sets, lines: vec![Line::default(); sets * cfg.ways], stats: CacheStats::default() }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Block-aligns an address.
    #[inline]
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr >> self.cfg.block_bits << self.cfg.block_bits
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.cfg.block_bits) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.cfg.block_bits >> self.sets.trailing_zeros()
    }

    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let w = self.cfg.ways;
        &mut self.lines[set * w..(set + 1) * w]
    }

    /// Probes for `addr`; a hit refreshes LRU and optionally marks dirty.
    /// Counts toward demand statistics.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.stats.accesses += 1;
        let hit = self.touch(addr, write);
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Like [`access`](Self::access) but does not count statistics
    /// (used for prefetch probes).
    pub fn probe_silent(&mut self, addr: u64) -> bool {
        self.touch(addr, false)
    }

    /// Pure hit test: no statistics, no LRU update (for pre-checks that
    /// may be retried).
    pub fn probe_peek(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let w = self.cfg.ways;
        self.lines[set * w..(set + 1) * w].iter().any(|l| l.valid && l.tag == tag)
    }

    fn touch(&mut self, addr: u64, write: bool) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as u8;
        let lines = self.set_slice(set);
        if let Some(pos) = lines.iter().position(|l| l.valid && l.tag == tag) {
            let old = lines[pos].lru;
            for l in lines.iter_mut() {
                if l.valid && l.lru > old {
                    l.lru -= 1;
                }
            }
            lines[pos].lru = ways - 1;
            if write {
                lines[pos].dirty = true;
            }
            true
        } else {
            false
        }
    }

    /// Fills the block containing `addr`, evicting LRU if needed. Returns
    /// the eviction, if any. `write` installs the block dirty
    /// (write-allocate).
    pub fn fill(&mut self, addr: u64, write: bool) -> Option<Eviction> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as u8;
        let block_bits = self.cfg.block_bits;
        let set_bits = self.sets.trailing_zeros();
        let lines = self.set_slice(set);
        if let Some(pos) = lines.iter().position(|l| l.valid && l.tag == tag) {
            // Already present (e.g. a racing fill): just refresh.
            let old = lines[pos].lru;
            for l in lines.iter_mut() {
                if l.valid && l.lru > old {
                    l.lru -= 1;
                }
            }
            lines[pos].lru = ways - 1;
            if write {
                lines[pos].dirty = true;
            }
            return None;
        }
        let pos = lines
            .iter()
            .position(|l| !l.valid)
            .unwrap_or_else(|| lines.iter().enumerate().min_by_key(|(_, l)| l.lru).map(|(i, _)| i).unwrap());
        let evict = if lines[pos].valid {
            let victim_addr = ((lines[pos].tag << set_bits) | set as u64) << block_bits;
            Some(Eviction { addr: victim_addr, dirty: lines[pos].dirty })
        } else {
            None
        };
        let old = if lines[pos].valid { lines[pos].lru } else { 0 };
        for l in lines.iter_mut() {
            if l.valid && l.lru > old {
                l.lru -= 1;
            }
        }
        lines[pos] = Line { tag, lru: ways - 1, valid: true, dirty: write };
        if let Some(e) = &evict {
            if e.dirty {
                self.stats.writebacks += 1;
            }
        }
        evict
    }

    /// Invalidates everything (e.g. between experiment phases).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64B blocks = 256 B
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, block_bits: 6 })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 2);
        assert_eq!(c.block_addr(0x7f), 0x40);
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = small();
        assert!(!c.access(0x100, false));
        c.fill(0x100, false);
        assert!(c.access(0x100, false));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses(), 1);
    }

    #[test]
    fn same_block_hits() {
        let mut c = small();
        c.fill(0x100, false);
        assert!(c.access(0x13f, false)); // same 64B block
        assert!(!c.access(0x140, false)); // next block
    }

    #[test]
    fn lru_replacement() {
        let mut c = small();
        // Set 0 gets blocks 0x000, 0x080, 0x100 (all map to set 0: block/64 % 2 == 0)
        c.fill(0x000, false);
        c.fill(0x080, false);
        c.access(0x000, false); // refresh 0x000
        let ev = c.fill(0x100, false).expect("must evict");
        assert_eq!(ev.addr, 0x080);
        assert!(c.probe_silent(0x000));
        assert!(!c.probe_silent(0x080));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small();
        c.fill(0x000, true); // dirty install
        c.fill(0x080, false);
        let ev = c.fill(0x100, false).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(0x000, false);
        c.access(0x000, true);
        c.fill(0x080, false);
        let ev = c.fill(0x100, false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.fill(0x000, false);
        c.flush();
        assert!(!c.probe_silent(0x000));
    }

    #[test]
    fn refill_existing_block_is_no_eviction() {
        let mut c = small();
        c.fill(0x000, false);
        assert_eq!(c.fill(0x000, false), None);
    }

    #[test]
    fn victim_address_reconstruction() {
        let mut c = small();
        c.fill(0xabc0, false);
        c.fill(0xbbc0, false); // hmm, may map to a different set; force set 0 blocks
        let mut c = small();
        c.fill(0x0000, false);
        c.fill(0x0100, false);
        let ev = c.fill(0x0200, false).unwrap();
        assert_eq!(ev.addr, 0x0000);
    }
}
