//! Property-based tests for the cache hierarchy, driven by the in-repo
//! seeded harness (`cfd_isa::prop_check`).

use cfd_isa::prop_check;
use cfd_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, MemLevel, MshrFile, MshrOutcome};
use std::collections::HashSet;

/// A cache can only hit blocks that were filled and never evicted; a
/// shadow model tracks the resident set exactly for a direct-mapped
/// cache (associativity 1 makes the reference model trivial).
#[test]
fn direct_mapped_cache_matches_shadow_model() {
    prop_check!(64, |rng| {
        let addrs = rng.vec(1, 300, |r| r.range_u64(0, 1 << 14));
        let cfg = CacheConfig { size_bytes: 1024, ways: 1, block_bits: 6 };
        let mut cache = Cache::new(cfg);
        let sets = cfg.sets() as u64;
        let mut shadow: Vec<Option<u64>> = vec![None; sets as usize];
        for addr in addrs {
            let block = addr >> 6;
            let set = (block % sets) as usize;
            let hit = cache.access(addr, false);
            assert_eq!(hit, shadow[set] == Some(block), "addr {addr:#x}");
            if !hit {
                cache.fill(addr, false);
                shadow[set] = Some(block);
            }
        }
    });
}

/// LRU invariant: with associativity W, the W most recently touched
/// distinct blocks of a set always hit.
#[test]
fn lru_keeps_most_recent_ways() {
    prop_check!(64, |rng| {
        let blocks = rng.vec(8, 200, |r| r.range_u64(0, 32));
        let cfg = CacheConfig { size_bytes: 4 * 64, ways: 4, block_bits: 6 };
        let mut cache = Cache::new(cfg); // one set, 4 ways
        let mut recency: Vec<u64> = Vec::new();
        for b in blocks {
            let addr = b << 6;
            let hit = cache.access(addr, false);
            let expect_hit = recency.iter().rev().take(4).any(|&x| x == b);
            assert_eq!(hit, expect_hit, "block {b}");
            if !hit {
                cache.fill(addr, false);
            }
            recency.retain(|&x| x != b);
            recency.push(b);
        }
    });
}

/// Hierarchy sanity: level counts partition demand accesses, repeated
/// accesses promote blocks inward, and total latency is monotone in
/// the furthest level.
#[test]
fn hierarchy_level_accounting() {
    prop_check!(64, |rng| {
        let addrs = rng.vec(1, 200, |r| r.range_u64(0, 1 << 20));
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let mut now = 0u64;
        let mut seen: HashSet<u64> = HashSet::new();
        let mut total = 0u64;
        for addr in addrs {
            now += 400; // far enough apart that fills complete
            let r = h.access(0x40, addr, false, now);
            assert!(!r.mshr_full);
            total += 1;
            let block = addr >> 6;
            if seen.contains(&block) {
                // Previously touched within a small footprint: must not be
                // a fresh DRAM access.
                assert!(r.level <= MemLevel::L3, "re-access went to {:?}", r.level);
            }
            seen.insert(block);
            let floor = match r.level {
                MemLevel::L1 => 4,
                MemLevel::L2 => 16,
                MemLevel::L3 => 39,
                MemLevel::Mem => 204,
            };
            assert_eq!(r.latency, floor);
        }
        assert_eq!(h.level_counts.iter().sum::<u64>(), total);
    });
}

/// MSHR occupancy histogram accounts for every elapsed cycle.
#[test]
fn mshr_histogram_covers_all_time() {
    prop_check!(64, |rng| {
        let misses = rng.vec(1, 50, |r| (r.range_u64(0, 64), r.range_u64(1, 300)));
        let mut m = MshrFile::new(8);
        let mut now = 0u64;
        for (block, dur) in misses {
            now += 13;
            let _ = m.request(block << 6, now, now + dur);
        }
        let end = now + 1000;
        m.advance(end);
        let total: u64 = m.histogram().iter().sum();
        assert_eq!(total, end, "histogram must cover every cycle");
    });
}

/// Merging: a second request to an in-flight block never allocates.
#[test]
fn mshr_merges_same_block() {
    prop_check!(64, |rng| {
        let gap = rng.range_u64(1, 100);
        let mut m = MshrFile::new(4);
        assert_eq!(m.request(0x1000, 0, 200), MshrOutcome::Allocated);
        let r = m.request(0x1000, gap.min(199), 500);
        assert_eq!(r, MshrOutcome::Merged { done_at: 200 });
    });
}
