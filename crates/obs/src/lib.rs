//! # cfd-obs — the observability layer
//!
//! The paper's claims are all *cycle-attribution* claims: misprediction
//! penalty removed at fetch, BQ/TQ stalls traded against squashes. This
//! crate supplies the measurement substrate that makes those arguments
//! legible on a live simulation instead of only in end-of-run aggregates:
//!
//! * [`MetricsRegistry`] — an integer-only counters/gauges/histograms
//!   registry with `&'static str` names. Zero-cost when disabled: every
//!   mutator takes the early-out branch and touches nothing.
//! * [`CpiStack`] / [`CpiComponent`] — CPI-stack cycle accounting. Every
//!   retire-width slot of every cycle is attributed to exactly one
//!   component ({base, frontend/BTB, branch-mispredict, BQ/TQ stall,
//!   memory level, backend}), so the components sum to
//!   `cycles × retire_width` with zero slack (see [`CpiStack::check`]).
//! * [`TimeSeries`] — interval samples of cumulative integer counters,
//!   exported as CSV ([`TimeSeries::to_csv`]) or an ASCII occupancy/IPC
//!   timeline ([`TimeSeries::ascii_timeline`]).
//! * [`EventLog`] — a leveled operational event log (JSONL / stderr /
//!   memory sinks) whose logical sequence numbers — not wall time — are
//!   the determinism surface; see [`log`].
//! * [`TraceLog`] — a structured span/event tracer exporting
//!   Chrome/Perfetto trace-event JSON ([`TraceLog::to_json`]). Timestamps
//!   are *simulated cycles* (or a logical job clock for campaign spans),
//!   never wall time, so the exported bytes are deterministic across
//!   machines, runs and worker counts.
//!
//! Everything in this crate is plain `std` and every stored quantity is
//! an integer: serializing any artifact twice yields identical bytes.

mod cpi;
pub mod log;
mod registry;
mod series;
mod trace;

pub use cpi::{CpiComponent, CpiStack, CPI_COMPONENTS};
pub use log::{strip_wall, EventLog, Level, LOG_SCHEMA_VERSION};
pub use registry::{GaugeState, HistogramState, MetricsRegistry};
pub use series::TimeSeries;
pub use trace::{write_json_string, ArgValue, TraceEvent, TraceLog};

/// Telemetry knobs a simulation is armed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sample the time series every this many cycles (0 disables
    /// sampling; the registry and CPI stack still run).
    pub sample_interval: u64,
    /// Record pipeline events (recoveries, faults) and counter tracks
    /// into a [`TraceLog`].
    pub trace: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { sample_interval: 1000, trace: true }
    }
}

/// Everything a telemetry-armed run hands back: the registry snapshot,
/// the sampled time series, and the event trace.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Final registry state (counters, gauge maxima, histograms).
    pub registry: MetricsRegistry,
    /// The interval-sampled time series.
    pub series: TimeSeries,
    /// The recorded trace (empty when tracing was off).
    pub trace: TraceLog,
}
