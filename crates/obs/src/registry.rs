//! The metrics registry: integer-only counters, gauges and histograms
//! keyed by `&'static str` names.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Every mutator starts with
//!    `if !self.enabled { return; }`; a disabled registry allocates
//!    nothing and its maps stay empty. Hot loops can call it
//!    unconditionally.
//! 2. **Determinism.** Metrics live in `BTreeMap`s, so every iteration,
//!    snapshot and rendering is name-ordered — two identical runs render
//!    identical bytes.
//! 3. **Integers only.** Rates (IPC, hit ratios) are derived at format
//!    time from exact counters, never stored.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A gauge: the last set value plus the high-water mark across all sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeState {
    /// Most recently set value.
    pub value: u64,
    /// Maximum value ever set.
    pub max: u64,
}

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `floor(log2(v)) == i - 1`; bucket 0
/// counts zeros. 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramState {
    /// Per-bucket sample counts (`counts[0]` = zeros, `counts[i]` =
    /// samples in `[2^(i-1), 2^i)`).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub n: u64,
    /// Sum of all samples (exact; for integer means).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for HistogramState {
    fn default() -> Self {
        HistogramState { counts: vec![0; 65], n: 0, sum: 0, max: 0 }
    }
}

impl HistogramState {
    fn record(&mut self, v: u64) {
        let bucket = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.counts[bucket] += 1;
        self.n += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }
}

/// The registry. See the module docs for the contract.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, GaugeState>,
    histograms: BTreeMap<&'static str, HistogramState>,
}

impl MetricsRegistry {
    /// A live registry.
    pub fn enabled() -> MetricsRegistry {
        MetricsRegistry { enabled: true, ..MetricsRegistry::default() }
    }

    /// A disabled registry: every mutator is a no-op, every reader sees
    /// an empty registry.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Whether mutators record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to the counter `name` (creating it at 0).
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets the gauge `name` to `v`, tracking its high-water mark.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        let g = self.gauges.entry(name).or_default();
        g.value = v;
        g.max = g.max.max(v);
    }

    /// Records one sample into the histogram `name`.
    #[inline]
    pub fn histogram_record(&mut self, name: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        self.histograms.entry(name).or_default().record(v);
    }

    /// The counter's current value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's state, if ever set.
    pub fn gauge(&self, name: &str) -> Option<GaugeState> {
        self.gauges.get(name).copied()
    }

    /// The histogram's state, if ever recorded into.
    pub fn histogram(&self, name: &str) -> Option<&HistogramState> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, GaugeState)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Renders the whole registry as a deterministic fixed-format table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter   {name:<28} {v}");
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "gauge     {name:<28} value={} max={}", g.value, g.max);
        }
        for (name, h) in &self.histograms {
            let mean = h.sum.checked_div(h.n).unwrap_or(0);
            let _ = writeln!(out, "histogram {name:<28} n={} mean={} max={}", h.n, mean, h.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = MetricsRegistry::disabled();
        r.counter_add("a", 5);
        r.gauge_set("g", 9);
        r.histogram_record("h", 3);
        assert!(!r.is_enabled());
        assert_eq!(r.counter("a"), 0);
        assert!(r.gauge("g").is_none());
        assert!(r.histogram("h").is_none());
        assert!(r.render().is_empty());
    }

    #[test]
    fn counters_accumulate_and_order_by_name() {
        let mut r = MetricsRegistry::enabled();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 2);
        r.counter_add("zeta", 3);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(r.counter("zeta"), 4);
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let mut r = MetricsRegistry::enabled();
        r.gauge_set("occ", 3);
        r.gauge_set("occ", 9);
        r.gauge_set("occ", 2);
        assert_eq!(r.gauge("occ"), Some(GaugeState { value: 2, max: 9 }));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut r = MetricsRegistry::enabled();
        for v in [0, 1, 2, 3, 4, 1024] {
            r.histogram_record("lat", v);
        }
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.n, 6);
        assert_eq!(h.max, 1024);
        assert_eq!(h.counts[0], 1); // 0
        assert_eq!(h.counts[1], 1); // 1
        assert_eq!(h.counts[2], 2); // 2,3
        assert_eq!(h.counts[3], 1); // 4
        assert_eq!(h.counts[11], 1); // 1024
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::enabled();
            r.counter_add("b", 2);
            r.counter_add("a", 1);
            r.gauge_set("g", 7);
            r.histogram_record("h", 8);
            r.render()
        };
        assert_eq!(build(), build());
        assert!(build().contains("counter   a"));
    }
}
