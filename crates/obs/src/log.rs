//! Leveled, structured operational event log.
//!
//! Unlike [`TraceLog`](crate::TraceLog), which records *simulated* time
//! for Perfetto, this module records *operational* events — a daemon
//! accepting a connection, an engine starting a retry wave — as
//! key=value records with:
//!
//! * a severity [`Level`] filter fixed at construction,
//! * a **logical sequence number** per emitted record (dense, starting
//!   at 0), which is the determinism surface: two runs that perform the
//!   same logical work emit the same `seq`/`event`/`fields` stream,
//! * an optional wall-clock field (`wall_us`) that is *excluded* from
//!   determinism comparisons — [`strip_wall`] removes it so byte
//!   comparison across runs and worker counts is possible,
//! * span `begin`/`end` records correlated by a `span_id`.
//!
//! Three sinks can be armed in any combination: a JSONL file (one
//! versioned-schema object per line), human-readable stderr lines
//! (`[target] event k=v ...`), and an in-memory JSONL buffer for tests.
//! Events below the configured level are dropped *without* consuming a
//! sequence number, so the emitted stream stays dense at every level.

use crate::trace::{write_json_string, ArgValue};
use std::fmt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// Version stamp written as `"v"` on every JSONL record; bump when the
/// line schema changes incompatibly.
pub const LOG_SCHEMA_VERSION: u64 = 1;

/// Event severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed or data was lost.
    Error,
    /// Something suspicious that the run survived.
    Warn,
    /// Normal operational milestones (default).
    Info,
    /// Per-batch / per-sweep detail.
    Debug,
    /// Everything, including per-item chatter.
    Trace,
}

impl Level {
    /// Lower-case name, as serialized in JSONL records.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (as produced by [`Level::as_str`]).
    pub fn parse(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level {other:?} (want error|warn|info|debug|trace)")),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Marker for span records: plain events carry neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanPhase {
    Begin,
    End,
}

struct Inner {
    seq: u64,
    next_span: u64,
    file: Option<File>,
    stderr: bool,
    memory: Option<String>,
}

/// A leveled structured logger with JSONL/stderr/memory sinks.
///
/// Cheap to share behind an `Arc`; all sinks are guarded by one
/// internal mutex so records from concurrent threads interleave at
/// whole-record granularity and sequence numbers are globally ordered.
pub struct EventLog {
    level: Level,
    inner: Mutex<Inner>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog").field("level", &self.level).finish()
    }
}

impl EventLog {
    /// A logger with no sinks armed; every record is dropped.
    pub fn new(level: Level) -> EventLog {
        EventLog { level, inner: Mutex::new(Inner { seq: 0, next_span: 1, file: None, stderr: false, memory: None }) }
    }

    /// Arms human-readable stderr lines (`[target] event k=v ...`).
    pub fn with_stderr(self) -> EventLog {
        self.inner.lock().unwrap().stderr = true;
        self
    }

    /// Arms a JSONL file sink at `path` (truncating any existing file).
    pub fn with_file(self, path: &Path) -> Result<EventLog, String> {
        let file = File::create(path).map_err(|e| format!("cannot create log file {}: {e}", path.display()))?;
        self.inner.lock().unwrap().file = Some(file);
        Ok(self)
    }

    /// A logger writing JSONL records to an in-memory buffer (tests).
    pub fn memory(level: Level) -> EventLog {
        let log = EventLog::new(level);
        log.inner.lock().unwrap().memory = Some(String::new());
        log
    }

    /// The configured severity floor.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether records at `level` would be emitted.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// The accumulated in-memory JSONL buffer (empty unless constructed
    /// with [`EventLog::memory`]).
    pub fn contents(&self) -> String {
        self.inner.lock().unwrap().memory.clone().unwrap_or_default()
    }

    /// Emits one structured event.
    pub fn event(&self, level: Level, target: &str, event: &str, fields: &[(&'static str, ArgValue)]) {
        self.emit(level, target, event, None, 0, fields);
    }

    /// Emits at [`Level::Error`].
    pub fn error(&self, target: &str, event: &str, fields: &[(&'static str, ArgValue)]) {
        self.event(Level::Error, target, event, fields);
    }

    /// Emits at [`Level::Warn`].
    pub fn warn(&self, target: &str, event: &str, fields: &[(&'static str, ArgValue)]) {
        self.event(Level::Warn, target, event, fields);
    }

    /// Emits at [`Level::Info`].
    pub fn info(&self, target: &str, event: &str, fields: &[(&'static str, ArgValue)]) {
        self.event(Level::Info, target, event, fields);
    }

    /// Emits at [`Level::Debug`].
    pub fn debug(&self, target: &str, event: &str, fields: &[(&'static str, ArgValue)]) {
        self.event(Level::Debug, target, event, fields);
    }

    /// Opens a span: emits a `begin` record and returns its span id for
    /// [`EventLog::span_end`]. Returns 0 (and emits nothing) when
    /// `level` is filtered out.
    pub fn span_begin(&self, level: Level, target: &str, event: &str, fields: &[(&'static str, ArgValue)]) -> u64 {
        if !self.enabled(level) {
            return 0;
        }
        let id = {
            let mut inner = self.inner.lock().unwrap();
            let id = inner.next_span;
            inner.next_span += 1;
            id
        };
        self.emit(level, target, event, Some(SpanPhase::Begin), id, fields);
        id
    }

    /// Closes a span opened by [`EventLog::span_begin`]. A `span_id` of
    /// 0 (a filtered begin) emits nothing.
    pub fn span_end(&self, level: Level, target: &str, event: &str, span_id: u64, fields: &[(&'static str, ArgValue)]) {
        if span_id == 0 {
            return;
        }
        self.emit(level, target, event, Some(SpanPhase::End), span_id, fields);
    }

    fn emit(
        &self,
        level: Level,
        target: &str,
        event: &str,
        span: Option<SpanPhase>,
        span_id: u64,
        fields: &[(&'static str, ArgValue)],
    ) {
        if !self.enabled(level) {
            return;
        }
        let wall_us = wall_clock_us();
        let mut inner = self.inner.lock().unwrap();
        if inner.file.is_none() && !inner.stderr && inner.memory.is_none() {
            return;
        }
        let seq = inner.seq;
        inner.seq += 1;
        if inner.file.is_some() || inner.memory.is_some() {
            let line = render_jsonl(seq, level, target, event, span, span_id, fields, wall_us);
            if let Some(f) = inner.file.as_mut() {
                let _ = f.write_all(line.as_bytes());
                let _ = f.flush();
            }
            if let Some(m) = inner.memory.as_mut() {
                m.push_str(&line);
            }
        }
        if inner.stderr {
            eprintln!("{}", render_human(level, target, event, span, span_id, fields));
        }
    }
}

fn wall_clock_us() -> u64 {
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn render_jsonl(
    seq: u64,
    level: Level,
    target: &str,
    event: &str,
    span: Option<SpanPhase>,
    span_id: u64,
    fields: &[(&'static str, ArgValue)],
    wall_us: u64,
) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"v\":{LOG_SCHEMA_VERSION},\"seq\":{seq},\"level\":\"{}\",\"target\":", level.as_str());
    write_json_string(&mut out, target);
    out.push_str(",\"event\":");
    write_json_string(&mut out, event);
    if let Some(phase) = span {
        let word = match phase {
            SpanPhase::Begin => "begin",
            SpanPhase::End => "end",
        };
        let _ = write!(out, ",\"span\":\"{word}\",\"span_id\":{span_id}");
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        match v {
            ArgValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::Str(s) => write_json_string(&mut out, s),
        }
    }
    // `wall_us` is always the last key so strip_wall can remove it
    // without a JSON parser.
    let _ = writeln!(out, "}},\"wall_us\":{wall_us}}}");
    out
}

fn render_human(
    level: Level,
    target: &str,
    event: &str,
    span: Option<SpanPhase>,
    span_id: u64,
    fields: &[(&'static str, ArgValue)],
) -> String {
    let mut out = format!("[{target}]");
    if level <= Level::Warn {
        let _ = write!(out, " {}:", level.as_str());
    }
    let _ = write!(out, " {event}");
    if let Some(phase) = span {
        let word = match phase {
            SpanPhase::Begin => "begin",
            SpanPhase::End => "end",
        };
        let _ = write!(out, " span={word}:{span_id}");
    }
    for (k, v) in fields {
        match v {
            ArgValue::Int(n) => {
                let _ = write!(out, " {k}={n}");
            }
            ArgValue::Str(s) => {
                let _ = write!(out, " {k}={s}");
            }
        }
    }
    out
}

/// Removes the `wall_us` field from every JSONL record in `text`,
/// yielding the canonical determinism-comparable form. Lines without a
/// trailing `,"wall_us":N}` are passed through unchanged.
pub fn strip_wall(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        match line.rfind(",\"wall_us\":") {
            Some(pos) if line.ends_with('}') && line[pos + 11..line.len() - 1].bytes().all(|b| b.is_ascii_digit()) => {
                out.push_str(&line[..pos]);
                out.push_str("}\n");
            }
            _ => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("debug").unwrap(), Level::Debug);
        assert!(Level::parse("loud").is_err());
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.as_str()).unwrap(), l);
        }
    }

    #[test]
    fn memory_sink_records_dense_seqs_and_schema() {
        let log = EventLog::memory(Level::Info);
        log.info("t", "first", &[("n", 1u64.into())]);
        log.debug("t", "dropped", &[]); // below floor: no seq consumed
        log.warn("t", "second", &[("msg", "a\"b".into())]);
        let text = log.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"v\":1,\"seq\":0,\"level\":\"info\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"v\":1,\"seq\":1,\"level\":\"warn\""), "{}", lines[1]);
        assert!(lines[1].contains("\"msg\":\"a\\\"b\""), "{}", lines[1]);
    }

    #[test]
    fn strip_wall_removes_only_wall_clock() {
        let log = EventLog::memory(Level::Info);
        log.info("t", "e", &[("k", 7u64.into())]);
        let stripped = strip_wall(&log.contents());
        assert_eq!(
            stripped,
            "{\"v\":1,\"seq\":0,\"level\":\"info\",\"target\":\"t\",\"event\":\"e\",\"fields\":{\"k\":7}}\n"
        );
        // Non-record lines pass through.
        assert_eq!(strip_wall("plain\n"), "plain\n");
    }

    #[test]
    fn stripped_stream_is_deterministic() {
        let build = || {
            let log = EventLog::memory(Level::Debug);
            let span = log.span_begin(Level::Info, "x", "work", &[("total", 3u64.into())]);
            log.debug("x", "step", &[("i", 0u64.into())]);
            log.span_end(Level::Info, "x", "work", span, &[("done", 3u64.into())]);
            strip_wall(&log.contents())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn spans_carry_begin_end_and_ids() {
        let log = EventLog::memory(Level::Info);
        let a = log.span_begin(Level::Info, "t", "sweep", &[]);
        let filtered = log.span_begin(Level::Debug, "t", "hidden", &[]);
        assert_eq!(filtered, 0);
        log.span_end(Level::Debug, "t", "hidden", filtered, &[]);
        log.span_end(Level::Info, "t", "sweep", a, &[]);
        let text = log.contents();
        assert!(text.contains(&format!("\"span\":\"begin\",\"span_id\":{a}")), "{text}");
        assert!(text.contains(&format!("\"span\":\"end\",\"span_id\":{a}")), "{text}");
        assert!(!text.contains("hidden"), "{text}");
    }

    #[test]
    fn no_sink_drops_everything() {
        let log = EventLog::new(Level::Trace);
        log.info("t", "e", &[]);
        assert_eq!(log.contents(), "");
    }
}
