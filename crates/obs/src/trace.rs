//! Structured span/event tracer with Chrome/Perfetto trace-event export.
//!
//! Events carry *simulated cycles* (or, for campaign jobs, a logical
//! clock derived from submission order) as timestamps. The JSON emitted
//! by [`TraceLog::to_json`] therefore depends only on the simulated
//! execution, never on wall time, host, or worker count — running the
//! same workload twice produces identical bytes, which is what lets
//! `scripts/verify.sh` gate on `cmp`.
//!
//! The export is the Chrome trace-event format Perfetto ingests
//! directly: `{"traceEvents":[...]}` with `ph:"X"` complete spans,
//! `ph:"i"` instants and `ph:"C"` counter samples.

use std::fmt::Write as _;

/// A value attached to an event's `args` map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An integer argument (rendered bare).
    Int(i64),
    /// A string argument (rendered JSON-escaped).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

/// One trace event in Chrome trace-event terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span or instant label).
    pub name: String,
    /// Category string (`cat` field) used for filtering in the UI.
    pub cat: &'static str,
    /// Phase: `"X"` complete span, `"i"` instant, `"C"` counter.
    pub ph: &'static str,
    /// Timestamp in simulated cycles (trace-event `ts`, microsecond
    /// units as far as the viewer cares — we treat 1 cycle = 1 us).
    pub ts: u64,
    /// Duration in simulated cycles (`X` events only).
    pub dur: Option<u64>,
    /// Process id lane.
    pub pid: u64,
    /// Thread id lane (e.g. pipeline stage or logical worker).
    pub tid: u64,
    /// Ordered key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// An append-only event log, zero-cost when disabled.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// A live log.
    pub fn enabled() -> TraceLog {
        TraceLog { enabled: true, events: Vec::new() }
    }

    /// A disabled log: every recorder is a no-op.
    pub fn disabled() -> TraceLog {
        TraceLog::default()
    }

    /// Whether recorders append anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in append order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records an instant event (`ph:"i"`).
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts: u64,
        pid: u64,
        tid: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent { name: name.into(), cat, ph: "i", ts, dur: None, pid, tid, args });
    }

    /// Records a complete span (`ph:"X"`) covering `[ts, ts + dur)`.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts: u64,
        dur: u64,
        pid: u64,
        tid: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent { name: name.into(), cat, ph: "X", ts, dur: Some(dur), pid, tid, args });
    }

    /// Records a counter sample (`ph:"C"`); each arg becomes one track.
    pub fn counter(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts: u64,
        pid: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent { name: name.into(), cat, ph: "C", ts, dur: None, pid, tid: 0, args });
    }

    /// Appends every event of `other` (used to merge a core-side log into
    /// a campaign-side log).
    pub fn extend(&mut self, other: &TraceLog) {
        if !self.enabled {
            return;
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// Serializes the log as Chrome trace-event JSON
    /// (`{"traceEvents":[...]}`); byte-deterministic for a given event
    /// sequence.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            write_json_string(&mut out, &e.name);
            let _ = write!(out, ",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}", e.cat, e.ph, e.ts);
            if let Some(dur) = e.dur {
                let _ = write!(out, ",\"dur\":{dur}");
            }
            let _ = write!(out, ",\"pid\":{},\"tid\":{}", e.pid, e.tid);
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":");
                    match v {
                        ArgValue::Int(n) => {
                            let _ = write!(out, "{n}");
                        }
                        ArgValue::Str(s) => write_json_string(&mut out, s),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Writes `s` as a JSON string literal (quotes included) into `out`,
/// escaping quotes, backslashes and control characters.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut t = TraceLog::disabled();
        t.instant("squash", "pipe", 10, 0, 0, vec![]);
        t.span("job", "exec", 0, 5, 1, 0, vec![]);
        t.counter("occ", "pipe", 3, 0, vec![("bq", 2u64.into())]);
        assert!(t.is_empty());
        assert_eq!(t.to_json(), "{\"traceEvents\":[\n]}\n");
    }

    #[test]
    fn json_shape_covers_all_phases() {
        let mut t = TraceLog::enabled();
        t.instant("fault", "harden", 42, 0, 1, vec![("kind", "bq_pop".into())]);
        t.span("execute", "exec", 100, 250, 1, 3, vec![("fp", ArgValue::Int(7))]);
        t.counter("occupancy", "pipe", 200, 0, vec![("bq", 4u64.into()), ("tq", 1u64.into())]);
        let j = t.to_json();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.contains("\"ph\":\"i\""), "{j}");
        assert!(j.contains("\"ph\":\"X\""), "{j}");
        assert!(j.contains("\"ph\":\"C\""), "{j}");
        assert!(j.contains("\"dur\":250"), "{j}");
        assert!(j.contains("\"kind\":\"bq_pop\""), "{j}");
        assert!(j.contains("\"bq\":4"), "{j}");
        assert!(j.trim_end().ends_with("]}"), "{j}");
    }

    #[test]
    fn json_is_deterministic() {
        let build = || {
            let mut t = TraceLog::enabled();
            t.span("a", "x", 1, 2, 0, 0, vec![("n", 9u64.into())]);
            t.instant("b", "x", 3, 0, 0, vec![]);
            t.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn extend_merges_in_order() {
        let mut a = TraceLog::enabled();
        a.instant("first", "x", 1, 0, 0, vec![]);
        let mut b = TraceLog::enabled();
        b.instant("second", "x", 2, 0, 0, vec![]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[1].name, "second");
    }

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
