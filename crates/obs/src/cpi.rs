//! CPI-stack cycle accounting: the taxonomy and the arithmetic.
//!
//! Per simulated cycle the core owns `retire_width` slots. Slots that
//! retire an instruction are **Base**; every idle slot is attributed to
//! exactly one blocking cause. The attribution is the retire-centric
//! classification the paper's arguments need: *where did the
//! misprediction penalty go when CFD removed it?*
//!
//! Because each of the `cycles × width` slots lands in exactly one
//! component, the stack sums exactly — no slack term, no "other" bucket
//! hiding mis-attribution. [`CpiStack::check`] enforces this.

use std::fmt::Write as _;

/// Number of CPI-stack components.
pub const CPI_COMPONENTS: usize = 9;

/// Where a retire slot went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CpiComponent {
    /// The slot retired an instruction.
    Base,
    /// Front-end supply: BTB misfetch bubbles, I-cache misses, pipeline
    /// fill at startup — the ROB was empty with no more specific cause.
    Frontend,
    /// Branch-misprediction penalty: the ROB drained after a squash and
    /// is refilling down the corrected path.
    Mispredict,
    /// CFD queue discipline: fetch stalled on a BQ/TQ push into a full
    /// queue or a pop miss, or the ROB head is a speculative BQ pop
    /// waiting for its late push to verify it.
    CfdStall,
    /// ROB head is a load in flight that hit in the L1.
    MemL1,
    /// ROB head is a load in flight serviced by the L2.
    MemL2,
    /// ROB head is a load in flight serviced by the L3.
    MemL3,
    /// ROB head is a load in flight serviced by DRAM.
    MemDram,
    /// ROB head is executing or waiting on a backend resource
    /// (FU/operand/port) — non-memory execution latency.
    Backend,
}

impl CpiComponent {
    /// All components, in stack order (index order).
    pub const ALL: [CpiComponent; CPI_COMPONENTS] = [
        CpiComponent::Base,
        CpiComponent::Frontend,
        CpiComponent::Mispredict,
        CpiComponent::CfdStall,
        CpiComponent::MemL1,
        CpiComponent::MemL2,
        CpiComponent::MemL3,
        CpiComponent::MemDram,
        CpiComponent::Backend,
    ];

    /// Dense index of this component (inverse of [`CpiComponent::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable, machine-readable name (CSV column / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            CpiComponent::Base => "base",
            CpiComponent::Frontend => "frontend",
            CpiComponent::Mispredict => "mispredict",
            CpiComponent::CfdStall => "cfd_stall",
            CpiComponent::MemL1 => "mem_l1",
            CpiComponent::MemL2 => "mem_l2",
            CpiComponent::MemL3 => "mem_l3",
            CpiComponent::MemDram => "mem_dram",
            CpiComponent::Backend => "backend",
        }
    }
}

impl std::fmt::Display for CpiComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Slot counts per component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// `slots[c.index()]` = retire slots attributed to component `c`.
    pub slots: [u64; CPI_COMPONENTS],
}

impl CpiStack {
    /// A stack over raw slot counts (e.g. `CoreStats::cpi_slots`).
    pub fn from_slots(slots: [u64; CPI_COMPONENTS]) -> CpiStack {
        CpiStack { slots }
    }

    /// Attributes `n` slots to `c`.
    #[inline]
    pub fn add(&mut self, c: CpiComponent, n: u64) {
        self.slots[c.index()] += n;
    }

    /// Slots attributed to `c`.
    pub fn get(&self, c: CpiComponent) -> u64 {
        self.slots[c.index()]
    }

    /// Total slots attributed.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// The exactness invariant: the components must sum to
    /// `cycles × width` — every slot of every counted cycle attributed to
    /// exactly one component, with zero slack.
    ///
    /// # Errors
    ///
    /// A description of the discrepancy when the sum is off.
    pub fn check(&self, cycles: u64, width: u64) -> Result<(), String> {
        let expect = cycles * width;
        let got = self.total();
        if got == expect {
            Ok(())
        } else {
            Err(format!(
                "CPI stack does not sum: {got} slots attributed, expected {cycles} cycles x {width} width = {expect}"
            ))
        }
    }

    /// Slots attributed to `c` in tenths of a percent of the total
    /// (integer math, deterministic formatting).
    pub fn permille(&self, c: CpiComponent) -> u64 {
        (self.get(c) * 1000).checked_div(self.total()).unwrap_or(0)
    }

    /// Component CPI contribution in milli-cycles-per-instruction:
    /// `slots(c) / width / retired`, scaled by 1000 (integer math).
    pub fn cpi_millis(&self, c: CpiComponent, width: u64, retired: u64) -> u64 {
        if width == 0 || retired == 0 {
            0
        } else {
            self.get(c) * 1000 / width / retired
        }
    }

    /// Renders the stack as a fixed-format table with per-component slot
    /// counts, share of all slots, and CPI contribution.
    pub fn table(&self, width: u64, retired: u64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>14} {:>7} {:>9}", "component", "slots", "share", "cpi");
        let _ = writeln!(out, "{}", "-".repeat(12 + 2 + 14 + 2 + 7 + 2 + 9));
        for c in CpiComponent::ALL {
            let pm = self.permille(c);
            let cpi = self.cpi_millis(c, width, retired);
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>5}.{}% {:>5}.{:03}",
                c.name(),
                self.get(c),
                pm / 10,
                pm % 10,
                cpi / 1000,
                cpi % 1000
            );
        }
        let total_cpi: u64 = CpiComponent::ALL.iter().map(|&c| self.cpi_millis(c, width, retired)).sum();
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>6}% {:>5}.{:03}",
            "total",
            self.total(),
            100,
            total_cpi / 1000,
            total_cpi % 1000
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, c) in CpiComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(CpiComponent::Base.index(), 0);
        assert_eq!(CpiComponent::Backend.index(), CPI_COMPONENTS - 1);
    }

    #[test]
    fn names_are_unique() {
        use std::collections::BTreeSet;
        let names: BTreeSet<&str> = CpiComponent::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), CPI_COMPONENTS);
    }

    #[test]
    fn check_accepts_exact_sum_only() {
        let mut s = CpiStack::default();
        s.add(CpiComponent::Base, 30);
        s.add(CpiComponent::Mispredict, 10);
        assert!(s.check(10, 4).is_ok());
        assert!(s.check(10, 5).is_err());
        assert!(s.check(11, 4).is_err());
    }

    #[test]
    fn permille_and_cpi_are_integer_exact() {
        let mut s = CpiStack::default();
        s.add(CpiComponent::Base, 75);
        s.add(CpiComponent::Backend, 25);
        assert_eq!(s.permille(CpiComponent::Base), 750);
        assert_eq!(s.permille(CpiComponent::Backend), 250);
        // 25 slots / width 4 / 5 retired = 1.25 CPI -> 1250 milli.
        assert_eq!(s.cpi_millis(CpiComponent::Backend, 4, 5), 1250);
        assert_eq!(CpiStack::default().permille(CpiComponent::Base), 0);
        assert_eq!(s.cpi_millis(CpiComponent::Base, 0, 0), 0);
    }

    #[test]
    fn table_is_deterministic_and_complete() {
        let mut s = CpiStack::default();
        s.add(CpiComponent::Base, 40);
        s.add(CpiComponent::MemDram, 360);
        let t1 = s.table(4, 10);
        let t2 = s.table(4, 10);
        assert_eq!(t1, t2);
        for c in CpiComponent::ALL {
            assert!(t1.contains(c.name()), "missing {c} in:\n{t1}");
        }
        assert!(t1.contains("total"));
    }
}
