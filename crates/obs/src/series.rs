//! Interval-sampled time series of cumulative integer counters.
//!
//! The core pushes one row every N cycles (plus a final row at run end).
//! Every cell is a *cumulative* `u64` — rates (IPC, occupancy deltas) are
//! derived at render time by differencing adjacent rows, so the stored
//! data and both renderings (CSV, ASCII timeline) are byte-deterministic.

use std::fmt::Write as _;

/// A table of interval samples: fixed columns, one row per sample.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    /// Nominal sampling interval in cycles (informational; rows carry
    /// their own cycle stamps).
    pub interval: u64,
    /// Column names; `columns[0]` is expected to be the cycle stamp.
    pub columns: Vec<&'static str>,
    /// Sample rows, each exactly `columns.len()` wide.
    pub rows: Vec<Vec<u64>>,
}

impl TimeSeries {
    /// An empty series with the given schema.
    pub fn new(interval: u64, columns: Vec<&'static str>) -> TimeSeries {
        TimeSeries { interval, columns, rows: Vec::new() }
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// If the row width does not match the column schema.
    pub fn push_row(&mut self, row: Vec<u64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "time-series row width {} != schema width {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of sample rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of the named column, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|&c| c == name)
    }

    /// Renders the series as CSV: a header line, then one line per row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
                first = false;
            }
            out.push('\n');
        }
        out
    }

    /// Renders an ASCII timeline: one line per sample interval with an
    /// IPC bar (milli-IPC derived from the per-interval `retired` delta)
    /// and the occupancy gauge columns.
    ///
    /// `bar_width` is the maximum bar length in characters; the bar is
    /// scaled so that `ipc == width` (slots fully used) fills it.
    pub fn ascii_timeline(&self, width: u64, bar_width: usize) -> String {
        let mut out = String::new();
        let (Some(ci_cycle), Some(ci_ret)) = (self.column_index("cycle"), self.column_index("retired")) else {
            return out;
        };
        let occ_cols: Vec<(usize, &'static str)> =
            ["bq", "vq", "tq", "rob"].iter().filter_map(|&n| self.column_index(n).map(|i| (i, n))).collect();
        let _ = write!(out, "{:>12} {:>6}  {:<bar_width$}", "cycle", "ipc", "|retired/cycle|");
        for (_, n) in &occ_cols {
            let _ = write!(out, " {n:>5}");
        }
        out.push('\n');
        let mut prev_cycle = 0u64;
        let mut prev_ret = 0u64;
        for row in &self.rows {
            let cycle = row[ci_cycle];
            let ret = row[ci_ret];
            let dc = cycle.saturating_sub(prev_cycle);
            let dr = ret.saturating_sub(prev_ret);
            // milli-IPC over the interval; integer math only.
            let mipc = (dr * 1000).checked_div(dc).unwrap_or(0);
            let bar_len =
                if width == 0 { 0 } else { ((mipc as usize) * bar_width / (width as usize * 1000)).min(bar_width) };
            let _ = write!(
                out,
                "{cycle:>12} {:>3}.{:02}  {:<bar_width$}",
                mipc / 1000,
                mipc % 1000 / 10,
                "#".repeat(bar_len)
            );
            for &(i, _) in &occ_cols {
                let _ = write!(out, " {:>5}", row[i]);
            }
            out.push('\n');
            prev_cycle = cycle;
            prev_ret = ret;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        let mut s = TimeSeries::new(100, vec!["cycle", "retired", "bq", "vq", "tq", "rob"]);
        s.push_row(vec![100, 200, 3, 1, 0, 40]);
        s.push_row(vec![200, 400, 5, 2, 1, 64]);
        s.push_row(vec![250, 420, 0, 0, 0, 0]);
        s
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_row_checks_width() {
        let mut s = TimeSeries::new(10, vec!["cycle", "retired"]);
        s.push_row(vec![1]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,retired,bq,vq,tq,rob");
        assert_eq!(lines[1], "100,200,3,1,0,40");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_is_deterministic() {
        assert_eq!(sample().to_csv(), sample().to_csv());
    }

    #[test]
    fn timeline_derives_interval_ipc() {
        let t = sample().ascii_timeline(4, 20);
        let lines: Vec<&str> = t.lines().collect();
        // Interval 1: 200 retired over 100 cycles = 2.00 IPC.
        assert!(lines[1].contains("2.00"), "{t}");
        // Interval 2: 200 retired over 100 cycles = 2.00 IPC.
        assert!(lines[2].contains("2.00"), "{t}");
        // Interval 3: 20 retired over 50 cycles = 0.40 IPC.
        assert!(lines[3].contains("0.40"), "{t}");
        assert_eq!(t, sample().ascii_timeline(4, 20));
    }

    #[test]
    fn timeline_bar_scales_to_width() {
        let mut s = TimeSeries::new(10, vec!["cycle", "retired"]);
        s.push_row(vec![10, 40]); // 4.0 IPC on a width-4 core: full bar.
        let t = s.ascii_timeline(4, 10);
        assert!(t.contains(&"#".repeat(10)), "{t}");
    }
}
