//! IO-fault chaos campaigns against the execution engine itself.
//!
//! The microarchitectural campaigns in this crate inject faults into the
//! *simulated machine* and demand a masked-or-detected verdict for every
//! one. [`run_exec_chaos`] applies the identical discipline to the
//! machinery that runs those campaigns — `cfd-exec`'s result cache and
//! write-ahead journal:
//!
//! * **torn cache writes** and **corrupt cache bytes** — a seeded
//!   [`IoFaultShim`] mangles every entry the engine stores; a second
//!   engine over the same directory must detect the damage (digest or
//!   parse failure, quarantined entry, `corrupt=` counter) and reproduce
//!   the reference output by re-executing;
//! * **truncated journal records** — the shim tears WAL appends; resume
//!   recovery must truncate the torn tail (detected) and still replay to
//!   the reference output;
//! * **mid-campaign kill** — a campaign is abandoned halfway and resumed;
//!   the resumed run must serve the finished half from the durable cache
//!   and produce output byte-identical to an uninterrupted run.
//!
//! Each scenario is scored with the same [`Verdict`] taxonomy as the
//! fault-injection campaigns: a fault the system absorbed with no
//! observable signal is *masked*, one it flagged (quarantine, torn-tail
//! truncation, resume accounting) is *detected*, and any byte of output
//! that differs from the uninterrupted reference is a *silent
//! divergence* — the outcome the contract forbids. A scenario that
//! failed to produce output at all would be a *hang*; scenarios run to
//! completion cooperatively, so a hang can only mean a harness bug.
//!
//! Everything is seeded: the same [`ChaosConfig`] produces the same
//! verdict table, byte for byte.

use crate::Verdict;
use cfd_core::CoreConfig;
use cfd_exec::{run_report_to_json, Engine, ExecConfig, IoFaultKind, IoFaultShim, JobError, Journal, SimJob};
use cfd_workloads::{by_name, Scale, Variant};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Configuration for one chaos sweep over the engine's persistence.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the IO-fault shims (one derived seed per scenario).
    pub seed: u64,
    /// Workload scale (outer trip count) for the probe campaign.
    pub scale_n: usize,
    /// Cycle limit per probe job.
    pub cycle_limit: u64,
    /// Root directory the scenarios build their cache dirs under; each
    /// scenario wipes and owns `<root>/<scenario>/`.
    pub cache_root: PathBuf,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xcfdc_4a05,
            scale_n: 40,
            cycle_limit: 4_000_000,
            cache_root: PathBuf::from("target/cfd-chaos"),
        }
    }
}

/// One row of the chaos verdict table.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Scenario name (`"torn_cache_write"`, ...).
    pub scenario: &'static str,
    /// The write site the faults targeted.
    pub site: &'static str,
    /// Injected fault kind (machine name).
    pub fault: &'static str,
    /// Faults injected at the site.
    pub injected: u64,
    /// Faults the engine observably flagged (quarantined entries, torn
    /// tails truncated, resume accounting).
    pub detected: u64,
    /// Faults absorbed with no signal but also no output effect.
    pub masked: u64,
    /// Classified outcome for the scenario.
    pub verdict: Verdict,
}

/// A finished chaos sweep: the verdict table plus its config echo.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed the sweep ran with.
    pub seed: u64,
    /// One row per scenario, in a fixed order.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Number of scenarios whose outcome violates the contract.
    pub fn silent_divergences(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.verdict.acceptable()).count()
    }

    /// Count of each verdict label, in a fixed order.
    pub fn tally(&self) -> Vec<(&'static str, usize)> {
        ["masked", "detected", "hang", "silent_divergence", "not_reached"]
            .iter()
            .map(|&label| (label, self.outcomes.iter().filter(|o| o.verdict.label() == label).count()))
            .collect()
    }

    /// Renders the verdict table for humans.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:<16} {:<12} {:>8} {:>8} {:>7} {:<22}",
            "scenario", "site", "fault", "injected", "detected", "masked", "verdict"
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "{:<20} {:<16} {:<12} {:>8} {:>8} {:>7} {:<22}",
                o.scenario,
                o.site,
                o.fault,
                o.injected,
                o.detected,
                o.masked,
                o.verdict.to_string()
            );
        }
        let _ = writeln!(out);
        for (label, n) in self.tally() {
            let _ = writeln!(out, "{label:<18} {n}");
        }
        out
    }

    /// Serialises the verdict table as JSON (hand-rolled; no external
    /// dependencies). Deterministic for a given config.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"silent_divergences\": {},\n", self.silent_divergences()));
        s.push_str("  \"tally\": {");
        for (i, (label, n)) in self.tally().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{label}\": {n}"));
        }
        s.push_str("},\n  \"scenarios\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"scenario\": \"{}\", ", o.scenario));
            s.push_str(&format!("\"site\": \"{}\", ", o.site));
            s.push_str(&format!("\"fault\": \"{}\", ", o.fault));
            s.push_str(&format!("\"injected\": {}, ", o.injected));
            s.push_str(&format!("\"detected\": {}, ", o.detected));
            s.push_str(&format!("\"masked\": {}, ", o.masked));
            s.push_str(&format!("\"verdict\": \"{}\"", o.verdict.label()));
            s.push_str(if i + 1 < self.outcomes.len() { "},\n" } else { "}\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The probe campaign every scenario runs: a small catalog sweep whose
/// reports exercise the full result codec.
fn probe_jobs(cfg: &ChaosConfig) -> Vec<SimJob> {
    let core_cfg = CoreConfig::default();
    let scale = Scale { n: cfg.scale_n, ..Scale::small() };
    let mut jobs = Vec::new();
    for name in ["soplex_ref_like", "astar_r1_like", "bzip2_like"] {
        let entry = by_name(name).expect("chaos probe workloads are in the catalog");
        for v in [Variant::Base, Variant::Cfd] {
            jobs.push(SimJob { workload: entry.build(v, scale), cfg: core_cfg.clone(), cycle_limit: cfg.cycle_limit });
        }
    }
    jobs
}

/// Folds a campaign's results into one comparable byte string.
fn transcript(engine: &Engine, jobs: &[SimJob]) -> String {
    let mut out = String::new();
    for res in engine.run_all(jobs) {
        match res {
            Ok(rep) => out.push_str(&run_report_to_json(&rep)),
            Err(e) => {
                let _ = write!(out, "{{\"error\":\"{}\"}}", classify(&e));
            }
        }
        out.push('\n');
    }
    out
}

fn classify(e: &JobError) -> &'static str {
    match e {
        JobError::Panicked(_) => "panicked",
        JobError::Timeout { .. } => "timeout",
        JobError::Quarantined { .. } => "quarantined",
    }
}

/// Serial probe engine over `dir` (cache + journal on, no faults).
fn engine_on(dir: &Path, resume: bool) -> Engine {
    Engine::new(ExecConfig { jobs: 1, use_cache: true, cache_dir: dir.to_path_buf(), resume, ..ExecConfig::default() })
}

/// Scores a scenario: output divergence is the cardinal sin; otherwise a
/// flagged fault is detected, an absorbed one masked, and a scenario
/// whose faults never landed is not-reached.
fn score(diverged: bool, injected: u64, detected: u64, detail: &'static str) -> Verdict {
    if diverged {
        Verdict::SilentDivergence
    } else if detected > 0 {
        Verdict::Detected(detail.to_string())
    } else if injected > 0 {
        Verdict::Masked
    } else {
        Verdict::NotReached
    }
}

/// The single `.wal` file a scenario's campaign journaled under `dir`.
fn wal_path(dir: &Path) -> Option<PathBuf> {
    let entries = fs::read_dir(dir.join("journal")).ok()?;
    entries.filter_map(|e| e.ok()).map(|e| e.path()).find(|p| p.extension().and_then(|x| x.to_str()) == Some("wal"))
}

/// Runs the IO-fault chaos sweep: every scenario injects storage faults
/// into a probe campaign and is scored against an uninterrupted
/// reference run. See the module docs for the scenario list and the
/// verdict contract (`silent_divergences() == 0` is the gate).
pub fn run_exec_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let jobs = probe_jobs(cfg);
    let _ = fs::remove_dir_all(&cfg.cache_root);

    // The uninterrupted reference: serial, cache-less.
    let reference = transcript(&Engine::serial(), &jobs);

    let mut outcomes = Vec::new();

    // Scenario 1 & 2: every cache store is mangled (torn or bit-flipped)
    // on its way to disk. The writing run computes results in memory, so
    // its output is unaffected; the *next* run over the same directory
    // must detect the damage entry by entry and re-execute.
    for (scenario, kind, fault) in [
        ("torn_cache_write", IoFaultKind::TornWrite, "torn_write"),
        ("corrupt_cache_bytes", IoFaultKind::BitFlip, "bit_flip"),
    ] {
        let dir = cfg.cache_root.join(scenario);
        let shim = IoFaultShim::new(cfg.seed ^ kind as u64, kind, 1);
        let writer = Engine::new(ExecConfig {
            jobs: 1,
            use_cache: true,
            cache_dir: dir.clone(),
            io_faults: Some(shim.clone()),
            ..ExecConfig::default()
        });
        let written = transcript(&writer, &jobs);
        let reader = engine_on(&dir, false);
        let reread = transcript(&reader, &jobs);
        let injected = shim.injected().iter().filter(|f| f.site == "cache.store").count() as u64;
        let detected = reader.stats().corrupt;
        let diverged = written != reference || reread != reference;
        outcomes.push(ChaosOutcome {
            scenario,
            site: "cache.store",
            fault,
            injected,
            detected,
            masked: injected.saturating_sub(detected),
            verdict: score(diverged, injected, detected, "cache_quarantine"),
        });
    }

    // Scenario 3: every journal append is torn mid-record. Resume
    // recovery must find the torn tail, truncate it, and still replay the
    // campaign to the reference output.
    {
        let dir = cfg.cache_root.join("truncated_journal");
        let shim = IoFaultShim::new(cfg.seed.rotate_left(17), IoFaultKind::TornWrite, 1);
        let writer = Engine::new(ExecConfig {
            jobs: 1,
            use_cache: true,
            cache_dir: dir.clone(),
            io_faults: Some(shim.clone()),
            ..ExecConfig::default()
        });
        let written = transcript(&writer, &jobs);
        let injected = shim.injected().iter().filter(|f| f.site == "journal.append").count() as u64;
        // Recovery through the public resume API: the torn tail must be
        // detected (and healed) before any record replays.
        let detected = match wal_path(&dir).and_then(|p| Journal::open_resume(&p).ok()) {
            Some((_, replay)) if replay.torn_bytes > 0 => 1,
            _ => 0,
        };
        let resumed = engine_on(&dir, true);
        let reread = transcript(&resumed, &jobs);
        let diverged = written != reference || reread != reference;
        outcomes.push(ChaosOutcome {
            scenario: "truncated_journal",
            site: "journal.append",
            fault: "torn_write",
            injected,
            detected,
            // One torn-tail truncation covers every append after the
            // first torn one; either recovery saw the damage or it
            // silently absorbed all of it.
            masked: if detected > 0 { 0 } else { injected },
            verdict: score(diverged, injected, detected, "torn_tail_truncated"),
        });
    }

    // Scenario 4: a campaign dies halfway (only half its jobs ever ran),
    // then is resumed. The finished half must come back from the durable
    // cache and the final output must match the uninterrupted reference.
    {
        let dir = cfg.cache_root.join("midrun_kill");
        let half = jobs.len() / 2;
        let first = engine_on(&dir, false);
        let _ = transcript(&first, &jobs[..half]);
        let resumed = engine_on(&dir, true);
        let reread = transcript(&resumed, &jobs);
        let s = resumed.stats();
        let accounted = s.cache_hits == half as u64 && s.executed == (jobs.len() - half) as u64;
        let diverged = reread != reference;
        outcomes.push(ChaosOutcome {
            scenario: "midrun_kill",
            site: "campaign",
            fault: "kill",
            injected: 1,
            detected: u64::from(accounted),
            masked: 0,
            verdict: score(diverged, 1, u64::from(accounted), "resume_from_cache"),
        });
    }

    ChaosReport { seed: cfg.seed, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(tag: &str) -> ChaosConfig {
        ChaosConfig {
            cache_root: std::env::temp_dir().join(format!("cfd-chaos-test-{tag}-{}", std::process::id())),
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn chaos_sweep_has_no_silent_divergence_and_no_hangs() {
        let cfg = test_cfg("contract");
        let report = run_exec_chaos(&cfg);
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert!(o.verdict.acceptable(), "{}: {}", o.scenario, o.verdict);
            assert!(o.injected > 0, "{} injected nothing", o.scenario);
        }
        assert_eq!(report.silent_divergences(), 0);
        let hangs = report.tally().iter().find(|(l, _)| *l == "hang").map(|(_, n)| *n);
        assert_eq!(hangs, Some(0));
        // Storage chaos must actually be *detected*, not just absorbed.
        let torn = &report.outcomes[0];
        assert_eq!(torn.scenario, "torn_cache_write");
        assert!(torn.detected > 0, "torn stores must be caught by the digest");
        let _ = fs::remove_dir_all(&cfg.cache_root);
    }

    #[test]
    fn chaos_report_renders_table_and_json() {
        let cfg = test_cfg("render");
        let report = run_exec_chaos(&cfg);
        let table = report.table();
        assert!(table.contains("torn_cache_write"));
        assert!(table.contains("silent_divergence"));
        let json = report.to_json();
        assert!(json.contains("\"scenarios\": ["));
        assert!(json.contains("\"silent_divergences\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let _ = fs::remove_dir_all(&cfg.cache_root);
    }
}
