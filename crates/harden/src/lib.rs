//! # cfd-harden — fault-injection campaigns with differential verification
//!
//! The timing core carries a retire-side functional oracle, so every
//! completed run is already verified instruction-by-instruction. This
//! crate turns that into a *robustness harness*: it sweeps deterministic
//! microarchitectural faults ([`cfd_core::FaultKind`]) across the
//! workload catalog and classifies each trial's outcome against the
//! detection contract:
//!
//! * **Masked** — the run completed and is architecturally identical to
//!   the fault-free functional reference (normal speculation machinery
//!   absorbed the fault);
//! * **Detected** — the run ended in a typed [`cfd_core::CoreError`]
//!   naming the failure (oracle mismatch, queue-protocol error, or the
//!   bounded-latency deadlock watchdog);
//! * **Hang** — the run blew through the cycle limit without the
//!   watchdog converting it into a report (a harness failure);
//! * **SilentDivergence** — the run completed with a result that differs
//!   from the reference (the one outcome the contract forbids);
//! * **NotReached** — the fault's trigger site was never visited (e.g. a
//!   VQ fault on a variant that never pushes the VQ).
//!
//! Campaigns are seeded: the same [`CampaignConfig`] produces the same
//! trial list and the same verdict table, byte for byte.
//!
//! # Example
//!
//! ```
//! use cfd_harden::{CampaignConfig, run_campaign};
//!
//! let cfg = CampaignConfig { scale_n: 40, trials_per_pair: 1, ..CampaignConfig::default() };
//! let report = run_campaign(&cfg);
//! assert!(report.outcomes.len() >= 12);
//! assert_eq!(report.silent_divergences(), 0);
//! ```

mod chaos;

pub use chaos::{run_exec_chaos, ChaosConfig, ChaosOutcome, ChaosReport};

use cfd_analysis::{lint_program, LintConfig};
use cfd_core::{Core, CoreConfig, CoreError, FaultKind, FaultSpec, TelemetryConfig, TelemetryReport};
use cfd_exec::{CampaignJob, Engine, Fingerprint, Hasher, Json};
use cfd_isa::check::Rng;
use cfd_workloads::{by_name, catalog, CatalogEntry, Scale, Variant, Workload};
use std::fmt;

/// The classified outcome of one fault-injection trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Completed, architecturally identical to the reference.
    Masked,
    /// Ended in a typed [`CoreError`]; the string is the error class
    /// (`"oracle_mismatch"`, `"deadlock"`, `"queue_protocol"`).
    Detected(String),
    /// Ran past the cycle limit without a watchdog report.
    Hang,
    /// Completed with a result that differs from the reference.
    SilentDivergence,
    /// The fault's trigger site was never visited.
    NotReached,
}

impl Verdict {
    /// Short machine-readable label.
    pub fn label(&self) -> &str {
        match self {
            Verdict::Masked => "masked",
            Verdict::Detected(_) => "detected",
            Verdict::Hang => "hang",
            Verdict::SilentDivergence => "silent_divergence",
            Verdict::NotReached => "not_reached",
        }
    }

    /// Whether this outcome satisfies the detection contract.
    pub fn acceptable(&self) -> bool {
        !matches!(self, Verdict::Hang | Verdict::SilentDivergence)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Detected(class) => write!(f, "detected({class})"),
            v => f.write_str(v.label()),
        }
    }
}

/// One row of the verdict table.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Workload name from the catalog.
    pub workload: &'static str,
    /// Variant the trial ran.
    pub variant: Variant,
    /// Injected fault class (machine name, e.g. `"bq_corrupt"`).
    pub fault: &'static str,
    /// Site the fault targets (e.g. `"execute.push_bq"`).
    pub site: &'static str,
    /// The trial fired the fault at the site's `nth` visit.
    pub nth: u64,
    /// Classified outcome.
    pub verdict: Verdict,
    /// Cycle the fault fired, when it did.
    pub injected_cycle: Option<u64>,
    /// Cycles simulated (to completion or failure).
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Cycles between injection and the failure report, for detected
    /// trials — the observed detection latency.
    pub detect_latency: Option<u64>,
}

/// A fault-injection campaign: seed, sweep axes, and run limits.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for trial-point selection (`nth` choices).
    pub seed: u64,
    /// Catalog workloads to sweep (must support [`Variant::CfdPlus`] or
    /// [`Variant::Cfd`]).
    pub workloads: Vec<&'static str>,
    /// Fault classes to sweep.
    pub faults: Vec<FaultKind>,
    /// Trials per (workload, fault) pair, each at a fresh `nth`.
    pub trials_per_pair: usize,
    /// Workload scale (outer trip count).
    pub scale_n: usize,
    /// Cycle limit per trial.
    pub cycle_limit: u64,
    /// Deadlock watchdog interval (cycles with no retirement).
    pub watchdog_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0xcfdf_a017,
            workloads: vec!["soplex_ref_like", "astar_r1_like", "bzip2_like", "gromacs_like", "bzip2_tq_like"],
            faults: vec![
                FaultKind::PredictorFlip,
                FaultKind::BqCorrupt,
                FaultKind::BqDrop,
                FaultKind::TqCorrupt,
                FaultKind::VqRemapCorrupt,
                FaultKind::MemDelay(300),
            ],
            trials_per_pair: 1,
            scale_n: 120,
            cycle_limit: 4_000_000,
            watchdog_cycles: 50_000,
        }
    }
}

/// A finished campaign: the verdict table plus its config echo.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the campaign ran with.
    pub seed: u64,
    /// One row per trial, in sweep order.
    pub outcomes: Vec<TrialOutcome>,
}

impl CampaignReport {
    /// Number of trials whose outcome violates the contract.
    pub fn silent_divergences(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.verdict.acceptable()).count()
    }

    /// Count of each verdict label, in a fixed order.
    pub fn tally(&self) -> Vec<(&'static str, usize)> {
        ["masked", "detected", "hang", "silent_divergence", "not_reached"]
            .iter()
            .map(|&label| (label, self.outcomes.iter().filter(|o| o.verdict.label() == label).count()))
            .collect()
    }

    /// Renders the verdict table for humans.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:<8} {:<16} {:<18} {:>5} {:<22} {:>9} {:>9}",
            "workload", "variant", "fault", "site", "nth", "verdict", "cycles", "latency"
        );
        for o in &self.outcomes {
            let lat = o.detect_latency.map_or_else(|| "-".to_string(), |l| l.to_string());
            let _ = writeln!(
                out,
                "{:<18} {:<8} {:<16} {:<18} {:>5} {:<22} {:>9} {:>9}",
                o.workload,
                o.variant.label(),
                o.fault,
                o.site,
                o.nth,
                o.verdict.to_string(),
                o.cycles,
                lat
            );
        }
        let _ = writeln!(out);
        for (label, n) in self.tally() {
            let _ = writeln!(out, "{label:<18} {n}");
        }
        out
    }

    /// Serialises the verdict table as JSON (hand-rolled; no external
    /// dependencies). The output is deterministic for a given config.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"silent_divergences\": {},\n", self.silent_divergences()));
        s.push_str("  \"tally\": {");
        let tally = self.tally();
        for (i, (label, n)) in tally.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{label}\": {n}"));
        }
        s.push_str("},\n  \"trials\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"workload\": {}, ", json_str(o.workload)));
            s.push_str(&format!("\"variant\": {}, ", json_str(o.variant.label())));
            s.push_str(&format!("\"fault\": {}, ", json_str(o.fault)));
            s.push_str(&format!("\"site\": {}, ", json_str(o.site)));
            s.push_str(&format!("\"nth\": {}, ", o.nth));
            s.push_str(&format!("\"verdict\": {}, ", json_str(o.verdict.label())));
            let class = match &o.verdict {
                Verdict::Detected(c) => json_str(c),
                _ => "null".to_string(),
            };
            s.push_str(&format!("\"error_class\": {class}, "));
            let cyc = o.injected_cycle.map_or("null".to_string(), |c| c.to_string());
            s.push_str(&format!("\"injected_cycle\": {cyc}, "));
            s.push_str(&format!("\"cycles\": {}, ", o.cycles));
            s.push_str(&format!("\"retired\": {}, ", o.retired));
            let lat = o.detect_latency.map_or("null".to_string(), |l| l.to_string());
            s.push_str(&format!("\"detect_latency\": {lat}"));
            s.push_str(if i + 1 < self.outcomes.len() { "},\n" } else { "}\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One row of the static/dynamic cross-check: the static verifier's
/// verdict for a program against a fault-free timing simulation of it.
#[derive(Debug, Clone)]
pub struct CrosscheckRow {
    /// Workload name from the catalog.
    pub workload: &'static str,
    /// Variant the row covers.
    pub variant: Variant,
    /// The static verifier found no error-severity violation.
    pub clean: bool,
    /// Static per-queue occupancy bounds `[BQ, VQ, TQ]` (`None` =
    /// unproved).
    pub static_bounds: [Option<u64>; 3],
    /// Fault-free run outcome: `None` when the run completed, else the
    /// error it raised.
    pub run_error: Option<String>,
    /// Observed architectural high-water marks `[BQ, VQ, TQ]` from
    /// [`cfd_core::CoreStats`] (zeros when the run failed).
    pub observed: [u64; 3],
}

impl CrosscheckRow {
    /// The soundness contract the verifier promises: a statically-clean
    /// program completes its fault-free run without a queue-structure
    /// error, and every proved bound dominates the occupancy the
    /// simulation actually observed. Rows the verifier flagged (or
    /// declined to bound) are vacuously fine — the contract only binds
    /// positive claims.
    pub fn holds(&self) -> bool {
        if !self.clean {
            return true;
        }
        self.run_error.is_none()
            && self.static_bounds.iter().zip(self.observed).all(|(b, seen)| b.is_none_or(|b| b >= seen))
    }
}

/// Cross-checks the static verifier against fault-free simulation for
/// every `(workload, variant)` pair in the catalog at scale `n`: lints
/// the program under the core's queue configuration, runs it with no
/// fault injected, and records both verdicts side by side.
pub fn run_crosscheck(n: usize, cycle_limit: u64) -> Vec<CrosscheckRow> {
    let core_cfg = CoreConfig::default();
    let lint_cfg = LintConfig {
        bq_size: core_cfg.bq_size,
        vq_size: core_cfg.vq_size,
        tq_size: core_cfg.tq_size,
        tq_trip_bits: core_cfg.tq_trip_bits,
    };
    let scale = Scale { n, ..Scale::small() };
    let mut rows = Vec::new();
    for entry in catalog() {
        for &variant in entry.variants {
            let w = entry.build(variant, scale);
            let rep = lint_program(&w.program, &lint_cfg);
            let out = Core::new(core_cfg.clone(), w.program.clone(), w.mem.clone())
                .expect("default config is valid")
                .run(cycle_limit);
            let (run_error, observed) = match out {
                Ok(r) => (None, [r.stats.max_bq_occupancy, r.stats.max_vq_occupancy, r.stats.max_tq_occupancy]),
                Err(e) => (Some(e.to_string()), [0; 3]),
            };
            rows.push(CrosscheckRow {
                workload: entry.name,
                variant,
                clean: rep.clean(),
                static_bounds: [rep.bounds.bq, rep.bounds.vq, rep.bounds.tq],
                run_error,
                observed,
            });
        }
    }
    rows
}

/// One statically-proven (load, store) disjointness claim held against a
/// fault-free functional run's observed addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimObservation {
    /// PC of the load the claim covers.
    pub load_pc: u32,
    /// PC of the store claimed disjoint from it.
    pub store_pc: u32,
    /// The observed byte footprints intersect: the static proof is wrong.
    pub contradicted: bool,
}

/// Dynamically cross-checks the alias analysis' disjointness claims
/// (`cfd_analysis::BranchReport::disjoint_claims`): runs `program`
/// functionally on `mem`, records the byte footprint every claimed PC
/// touches across the whole run, and reports a claim contradicted when
/// its load and store footprints intersect. A sound analysis yields zero
/// contradictions; one is a bug in `cfd_analysis`, not in the program.
///
/// # Errors
///
/// Propagates functional-simulation errors (the claims are then
/// unjudged, not vacuously confirmed).
pub fn check_disjoint_claims(
    program: &cfd_isa::Program,
    mem: &cfd_isa::MemImage,
    claims: &[(u32, u32)],
    limit: u64,
) -> Result<Vec<ClaimObservation>, cfd_isa::SimError> {
    use std::collections::{BTreeMap, BTreeSet};
    let watched: BTreeSet<u32> = claims.iter().flat_map(|&(l, s)| [l, s]).collect();
    let mut footprints: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
    let mut machine = cfd_isa::Machine::new(program.clone(), mem.clone());
    let mut sink = |ev: &cfd_isa::RetireEvent| {
        if let Some(access) = ev.mem {
            if watched.contains(&ev.pc) {
                let bytes = footprints.entry(ev.pc).or_default();
                for b in 0..access.width.bytes() {
                    bytes.insert(access.addr + b);
                }
            }
        }
    };
    machine.run(limit, &mut sink)?;
    Ok(claims
        .iter()
        .map(|&(load_pc, store_pc)| {
            let contradicted = match (footprints.get(&load_pc), footprints.get(&store_pc)) {
                (Some(l), Some(s)) => l.intersection(s).next().is_some(),
                // A PC that never executed (or never touched memory)
                // has an empty footprint: vacuously disjoint.
                _ => false,
            };
            ClaimObservation { load_pc, store_pc, contradicted }
        })
        .collect())
}

/// Picks the variant a fault should run under: the richest decoupled
/// form the workload supports, so the fault's target structure is live.
fn variant_for(workload: &CatalogEntry, fault: FaultKind) -> Option<Variant> {
    let prefer: &[Variant] = match fault {
        // TQ faults need a TQ-using variant.
        FaultKind::TqCorrupt => &[Variant::CfdTq, Variant::CfdBqTq],
        // VQ faults need CFD+ (the only VQ user).
        FaultKind::VqRemapCorrupt => &[Variant::CfdPlus],
        // Everything else fires on any CFD variant (BQ + loads + branches).
        _ => &[Variant::CfdPlus, Variant::Cfd, Variant::CfdTq, Variant::CfdBqTq],
    };
    prefer.iter().copied().find(|v| workload.variants.contains(v))
}

/// Runs one trial and classifies it.
pub fn run_trial(wl: &Workload, fault: FaultKind, nth: u64, cfg: &CampaignConfig) -> TrialOutcome {
    run_trial_inner(wl, fault, nth, cfg, None).0
}

/// Like [`run_trial`], but with the core's telemetry armed: the returned
/// [`TelemetryReport`] carries the pipeline trace of the faulted run —
/// the injection instant, every recovery, and the occupancy counter
/// tracks — up to completion *or* the detected failure. `None` only when
/// the core rejected its configuration before running.
pub fn run_trial_traced(
    wl: &Workload,
    fault: FaultKind,
    nth: u64,
    cfg: &CampaignConfig,
) -> (TrialOutcome, Option<TelemetryReport>) {
    run_trial_inner(wl, fault, nth, cfg, Some(TelemetryConfig::default()))
}

fn run_trial_inner(
    wl: &Workload,
    fault: FaultKind,
    nth: u64,
    cfg: &CampaignConfig,
    telemetry: Option<TelemetryConfig>,
) -> (TrialOutcome, Option<TelemetryReport>) {
    let reference = wl.dynamic_instructions().expect("catalog workloads run clean functionally");
    let core_cfg = CoreConfig { watchdog_cycles: cfg.watchdog_cycles, post_mortem_depth: 0, ..Default::default() };
    let spec = FaultSpec { kind: fault, nth };
    let mut core =
        Core::new(core_cfg, wl.program.clone(), wl.mem.clone()).expect("default config is valid").with_fault(spec);
    if let Some(tcfg) = telemetry {
        core = core.with_telemetry(tcfg);
    }
    let out = core.run_diag(cfg.cycle_limit);
    let captured: Option<TelemetryReport>;
    let (verdict, injected_cycle, cycles, retired, detect_latency) = match out {
        Ok(mut rep) => {
            captured = rep.telemetry.take();
            let injected = rep.injection.as_ref().map(|i| i.cycle);
            let verdict = match (&rep.injection, rep.stats.retired == reference) {
                (None, _) => Verdict::NotReached,
                (Some(_), true) => Verdict::Masked,
                (Some(_), false) => Verdict::SilentDivergence,
            };
            (verdict, injected, rep.stats.cycles, rep.stats.retired, None)
        }
        Err(mut fail) => {
            captured = fail.telemetry.take();
            let injected = fail.injection.as_ref().map(|i| i.cycle);
            let (at, verdict) = match &fail.error {
                CoreError::Deadlock { cycle, .. } => (Some(*cycle), Verdict::Detected("deadlock".to_string())),
                CoreError::OracleMismatch { .. } => (None, Verdict::Detected("oracle_mismatch".to_string())),
                CoreError::Program(_) => (None, Verdict::Detected("queue_protocol".to_string())),
                CoreError::CycleLimit(n) => (Some(*n), Verdict::Hang),
                // Trials never arm a CancelToken; if one ever trips it is
                // a supervisor intervention, which counts as detected.
                CoreError::Cancelled { cycle, .. } => (Some(*cycle), Verdict::Detected("cancelled".to_string())),
                CoreError::Config(_) => (None, Verdict::Detected("config".to_string())),
                // Trials never restore checkpoints; a rejected restore is
                // likewise a supervisor-level detection.
                CoreError::Checkpoint(_) => (None, Verdict::Detected("checkpoint".to_string())),
            };
            let latency = match (at, injected) {
                (Some(at), Some(inj)) => at.checked_sub(inj),
                _ => None,
            };
            (verdict, injected, 0, 0, latency)
        }
    };
    let outcome = TrialOutcome {
        workload: wl.name,
        variant: wl.variant,
        fault: fault.name(),
        site: fault.site().name(),
        nth,
        verdict,
        injected_cycle,
        cycles,
        retired,
        detect_latency,
    };
    (outcome, captured)
}

/// One fault-injection trial as a campaign-engine job: the built
/// workload, the fault to inject, and the run limits.
#[derive(Debug, Clone)]
pub struct TrialJob {
    /// The built workload the trial runs.
    pub workload: Workload,
    /// Fault class to inject.
    pub fault: FaultKind,
    /// Fire the fault at the site's `nth` visit.
    pub nth: u64,
    /// Cycle limit for the trial.
    pub cycle_limit: u64,
    /// Deadlock watchdog interval.
    pub watchdog_cycles: u64,
}

impl TrialJob {
    fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            cycle_limit: self.cycle_limit,
            watchdog_cycles: self.watchdog_cycles,
            ..CampaignConfig::default()
        }
    }

    fn verdict_from(&self, label: &str, class: Option<&str>) -> Option<Verdict> {
        Some(match label {
            "masked" => Verdict::Masked,
            "detected" => Verdict::Detected(class?.to_string()),
            "hang" => Verdict::Hang,
            "silent_divergence" => Verdict::SilentDivergence,
            "not_reached" => Verdict::NotReached,
            _ => return None,
        })
    }
}

impl CampaignJob for TrialJob {
    type Output = TrialOutcome;

    fn kind(&self) -> &'static str {
        "trial"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.section("workload", &self.workload.fingerprint_bytes());
        h.section("fault", format!("{:?} nth={}", self.fault, self.nth).as_bytes());
        let core_cfg = CoreConfig { watchdog_cycles: self.watchdog_cycles, post_mortem_depth: 0, ..Default::default() };
        h.section("config", core_cfg.stable_repr().as_bytes());
        h.section("limits", format!("cycle_limit={}", self.cycle_limit).as_bytes());
        h.finish()
    }

    fn describe(&self) -> String {
        format!(
            "trial {} [{}] {} nth={}",
            self.workload.name,
            self.workload.variant.label(),
            self.fault.name(),
            self.nth
        )
    }

    fn execute(&self) -> TrialOutcome {
        run_trial(&self.workload, self.fault, self.nth, &self.campaign_config())
    }

    fn result_to_json(out: &TrialOutcome) -> String {
        let opt = |x: Option<u64>| x.map_or("null".to_string(), |v| v.to_string());
        let class = match &out.verdict {
            Verdict::Detected(c) => json_str(c),
            _ => "null".to_string(),
        };
        format!(
            "{{\"verdict\":{},\"error_class\":{},\"injected_cycle\":{},\"cycles\":{},\"retired\":{},\"detect_latency\":{}}}",
            json_str(out.verdict.label()),
            class,
            opt(out.injected_cycle),
            out.cycles,
            out.retired,
            opt(out.detect_latency)
        )
    }

    fn result_from_json(&self, v: &Json) -> Option<TrialOutcome> {
        let class = match v.get("error_class")? {
            Json::Null => None,
            c => Some(c.as_str()?),
        };
        let verdict = self.verdict_from(v.get("verdict")?.as_str()?, class)?;
        Some(TrialOutcome {
            workload: self.workload.name,
            variant: self.workload.variant,
            fault: self.fault.name(),
            site: self.fault.site().name(),
            nth: self.nth,
            verdict,
            injected_cycle: v.get("injected_cycle")?.as_opt_u64()?,
            cycles: v.get("cycles")?.as_u64()?,
            retired: v.get("retired")?.as_u64()?,
            detect_latency: v.get("detect_latency")?.as_opt_u64()?,
        })
    }
}

/// Enumerates a campaign's trials — same sweep order and seeded `nth`
/// sequence as [`run_campaign`] — as engine jobs.
///
/// # Panics
///
/// Panics when a configured workload is not in the catalog.
pub fn campaign_jobs(cfg: &CampaignConfig) -> Vec<TrialJob> {
    let mut rng = Rng::new(cfg.seed);
    let mut jobs = Vec::new();
    for name in &cfg.workloads {
        let entry = by_name(name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let scale = Scale { n: cfg.scale_n, ..Scale::small() };
        for &fault in &cfg.faults {
            let Some(variant) = variant_for(&entry, fault) else {
                continue;
            };
            let wl = entry.build(variant, scale);
            for _ in 0..cfg.trials_per_pair {
                // Early site visits exercise warm-up; spread `nth` across
                // a window the run length comfortably covers (sites are
                // visited roughly once per outer iteration).
                let nth = rng.below((cfg.scale_n as u64 / 2).max(8));
                jobs.push(TrialJob {
                    workload: wl.clone(),
                    fault,
                    nth,
                    cycle_limit: cfg.cycle_limit,
                    watchdog_cycles: cfg.watchdog_cycles,
                });
            }
        }
    }
    jobs
}

/// Runs a full campaign on the given engine: every configured fault
/// class against every configured workload, `trials_per_pair` times at
/// seeded `nth` offsets. The verdict table is byte-identical at any
/// worker count.
///
/// # Panics
///
/// Panics when a configured workload is not in the catalog, a catalog
/// workload fails its fault-free functional run, or a trial panics
/// (all are repo bugs, not campaign outcomes).
pub fn run_campaign_on(engine: &Engine, cfg: &CampaignConfig) -> CampaignReport {
    let jobs = campaign_jobs(cfg);
    let outcomes = jobs
        .iter()
        .zip(engine.run_all(&jobs))
        .map(|(job, res)| res.unwrap_or_else(|e| panic!("{} failed: {e}", job.describe())))
        .collect();
    CampaignReport { seed: cfg.seed, outcomes }
}

/// Runs a full campaign serially (no worker threads, no result cache).
/// See [`run_campaign_on`] to run on a configured engine.
///
/// # Panics
///
/// Panics when a configured workload is not in the catalog, or a catalog
/// workload fails its fault-free functional run (both are repo bugs, not
/// campaign outcomes).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_on(&Engine::serial(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> CampaignConfig {
        CampaignConfig {
            workloads: vec!["soplex_ref_like", "astar_r1_like", "bzip2_like"],
            scale_n: 40,
            trials_per_pair: 1,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_has_no_silent_divergence() {
        let report = run_campaign(&smoke_cfg());
        assert!(report.outcomes.len() >= 12, "got {} trials", report.outcomes.len());
        for o in &report.outcomes {
            assert!(o.verdict.acceptable(), "{} / {} / nth {}: {}", o.workload, o.fault, o.nth, o.verdict);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&smoke_cfg()).to_json();
        let b = run_campaign(&smoke_cfg()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_is_worker_count_invariant() {
        let serial = run_campaign(&smoke_cfg()).to_json();
        let engine = Engine::new(cfd_exec::ExecConfig { jobs: 4, use_cache: false, ..cfd_exec::ExecConfig::default() });
        let parallel = run_campaign_on(&engine, &smoke_cfg()).to_json();
        assert_eq!(serial, parallel);
        assert_eq!(engine.stats().executed, engine.stats().submitted - engine.stats().deduped);
    }

    #[test]
    fn different_seeds_pick_different_trial_points() {
        let a = run_campaign(&smoke_cfg());
        let b = run_campaign(&CampaignConfig { seed: 99, ..smoke_cfg() });
        let nths_a: Vec<u64> = a.outcomes.iter().map(|o| o.nth).collect();
        let nths_b: Vec<u64> = b.outcomes.iter().map(|o| o.nth).collect();
        assert_ne!(nths_a, nths_b);
    }

    #[test]
    fn json_is_parseable_shape() {
        let report = run_campaign(&CampaignConfig {
            workloads: vec!["soplex_ref_like"],
            faults: vec![FaultKind::PredictorFlip, FaultKind::BqCorrupt],
            scale_n: 40,
            ..CampaignConfig::default()
        });
        let j = report.to_json();
        assert!(j.contains("\"trials\": ["));
        assert!(j.contains("\"verdict\": "));
        assert!(j.contains("\"silent_divergences\": 0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn verdict_labels_and_contract() {
        assert!(Verdict::Masked.acceptable());
        assert!(Verdict::Detected("deadlock".into()).acceptable());
        assert!(Verdict::NotReached.acceptable());
        assert!(!Verdict::Hang.acceptable());
        assert!(!Verdict::SilentDivergence.acceptable());
        assert_eq!(Verdict::Detected("x".into()).label(), "detected");
    }

    #[test]
    fn disjoint_claims_judged_against_observed_footprints() {
        use cfd_isa::{Assembler, MemImage, Reg};
        let (i, n, base, x) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let mut a = Assembler::new();
        a.li(n, 50);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(x, i, 3i64);
        a.add(x, x, base);
        let load_pc = a.here();
        a.ld(Reg::new(5), 0, x);
        let far_store = a.here();
        a.sd(Reg::new(5), 8 * 50, x); // one array away: truly disjoint
        let near_store = a.here();
        a.sd(Reg::new(5), 8, x); // hits the next element: overlaps the load
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let obs = check_disjoint_claims(
            &program,
            &MemImage::new(),
            &[(load_pc, far_store), (load_pc, near_store), (load_pc, 0)],
            1_000_000,
        )
        .unwrap();
        assert_eq!(obs[0], ClaimObservation { load_pc, store_pc: far_store, contradicted: false });
        assert_eq!(obs[1], ClaimObservation { load_pc, store_pc: near_store, contradicted: true });
        // A claimed PC with no memory footprint (the `li`) is vacuous.
        assert!(!obs[2].contradicted);
    }

    #[test]
    fn traced_trial_records_the_fault_instant() {
        let cfg = smoke_cfg();
        let entry = by_name("soplex_ref_like").unwrap();
        let wl = entry.build(Variant::CfdPlus, Scale { n: cfg.scale_n, ..Scale::small() });
        let (outcome, telemetry) = run_trial_traced(&wl, FaultKind::BqCorrupt, 4, &cfg);
        let t = telemetry.expect("traced trial always arms telemetry");
        let injected = outcome.injected_cycle.expect("nth=4 BQ corruption fires");
        let faults: Vec<_> = t.trace.events().iter().filter(|e| e.name == "fault").collect();
        assert_eq!(faults.len(), 1, "exactly one injection instant");
        assert_eq!(faults[0].ts, injected, "instant stamped at the injection cycle");
        assert!(t.trace.to_json().contains("\"name\":\"fault\""));
        // The untraced trial classifies identically: telemetry is neutral.
        let plain = run_trial(&wl, FaultKind::BqCorrupt, 4, &cfg);
        assert_eq!(plain.verdict, outcome.verdict);
        assert_eq!(plain.cycles, outcome.cycles);
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn static_verdicts_agree_with_fault_free_simulation() {
        let rows = run_crosscheck(48, 4_000_000);
        assert!(rows.len() >= 12, "got {} rows", rows.len());
        let mut clean_bounded = 0;
        for r in &rows {
            assert!(
                r.holds(),
                "{} / {}: clean={} bounds={:?} observed={:?} error={:?}",
                r.workload,
                r.variant.label(),
                r.clean,
                r.static_bounds,
                r.observed,
                r.run_error
            );
            if r.clean && r.static_bounds.iter().any(|b| b.is_some()) {
                clean_bounded += 1;
            }
        }
        // The check must not pass vacuously: most catalog rows are
        // statically clean with at least one proved bound.
        assert!(clean_bounded >= 8, "only {clean_bounded} clean bounded rows");
    }
}
