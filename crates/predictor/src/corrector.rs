//! Statistical corrector — the "S" of ISL-TAGE (Seznec, CBP3 2011).
//!
//! TAGE occasionally settles on a provider whose prediction is *statistically*
//! wrong for a branch (e.g. a 70%-taken branch captured by a noisy history
//! pattern). The corrector tracks, per (PC, TAGE-confidence) bucket, whether
//! agreeing with TAGE or inverting it has been the better choice, and
//! inverts low-confidence predictions when inversion has a track record.

/// Per-prediction metadata.
#[derive(Debug, Clone, Copy)]
pub struct CorrectorMeta {
    index: usize,
    /// Whether the corrector inverted TAGE's prediction.
    pub inverted: bool,
    /// The final (possibly inverted) prediction.
    pub pred: bool,
    /// TAGE's original prediction.
    pub tage_pred: bool,
}

/// The statistical corrector table: signed counters voting
/// "trust TAGE" (positive) vs "invert TAGE" (negative).
#[derive(Debug, Clone)]
pub struct StatisticalCorrector {
    ctrs: Vec<i8>,
    index_bits: u32,
    /// Use threshold: only invert when the counter is confidently negative.
    threshold: i8,
}

impl StatisticalCorrector {
    /// Creates a corrector with `2^index_bits` 6-bit counters.
    pub fn new(index_bits: u32) -> StatisticalCorrector {
        StatisticalCorrector { ctrs: vec![0; 1 << index_bits], index_bits, threshold: -8 }
    }

    fn index(&self, pc: u64, tage_pred: bool, provider_confident: bool) -> usize {
        let h = (pc >> 2) ^ (pc >> 9) ^ ((tage_pred as u64) << 1) ^ (provider_confident as u64);
        (h as usize) & ((1 << self.index_bits) - 1)
    }

    /// Filters a TAGE prediction: returns the (possibly inverted) final
    /// prediction and the metadata needed for training.
    ///
    /// `provider_confident` should be false for weak/newly-allocated
    /// providers — the corrector only ever inverts those.
    pub fn filter(&mut self, pc: u64, tage_pred: bool, provider_confident: bool) -> (bool, CorrectorMeta) {
        let index = self.index(pc, tage_pred, provider_confident);
        let inverted = !provider_confident && self.ctrs[index] <= self.threshold;
        let pred = tage_pred ^ inverted;
        (pred, CorrectorMeta { index, inverted, pred, tage_pred })
    }

    /// Trains at retirement: reward the counter when TAGE was right,
    /// punish it when TAGE was wrong.
    pub fn train(&mut self, taken: bool, meta: &CorrectorMeta) {
        let c = &mut self.ctrs[meta.index];
        if meta.tage_pred == taken {
            *c = (*c + 1).min(31);
        } else {
            *c = (*c - 1).max(-32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_trusting_tage() {
        let mut sc = StatisticalCorrector::new(10);
        let (pred, meta) = sc.filter(0x40, true, false);
        assert!(pred);
        assert!(!meta.inverted);
    }

    #[test]
    fn learns_to_invert_a_consistently_wrong_prediction() {
        let mut sc = StatisticalCorrector::new(10);
        // TAGE keeps predicting taken while the branch is not-taken.
        for _ in 0..20 {
            let (_, meta) = sc.filter(0x40, true, false);
            sc.train(false, &meta);
        }
        let (pred, meta) = sc.filter(0x40, true, false);
        assert!(meta.inverted, "corrector should override after 20 failures");
        assert!(!pred);
    }

    #[test]
    fn never_inverts_confident_providers() {
        let mut sc = StatisticalCorrector::new(10);
        for _ in 0..40 {
            let (_, meta) = sc.filter(0x40, true, true);
            sc.train(false, &meta);
        }
        let (pred, meta) = sc.filter(0x40, true, true);
        assert!(pred && !meta.inverted, "confident providers are left alone");
    }

    #[test]
    fn recovers_trust_when_tage_improves() {
        let mut sc = StatisticalCorrector::new(10);
        for _ in 0..20 {
            let (_, meta) = sc.filter(0x80, true, false);
            sc.train(false, &meta);
        }
        assert!(sc.filter(0x80, true, false).1.inverted);
        for _ in 0..40 {
            let (_, meta) = sc.filter(0x80, true, false);
            sc.train(true, &meta);
        }
        assert!(!sc.filter(0x80, true, false).1.inverted);
    }
}
