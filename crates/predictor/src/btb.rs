//! Branch Target Buffer.
//!
//! The BTB detects control instructions and supplies taken targets in the
//! fetch cycle. Per the paper (§III-C4), `Branch_on_BQ` is cached in the
//! BTB like any other branch; its predicate is read from the BQ head *in
//! parallel* with the BTB access. A BTB miss on a taken control instruction
//! costs a 1-cycle misfetch bubble in the timing model.

/// The kind of control instruction cached in a BTB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Conventional conditional branch (predictor-served).
    Conditional,
    /// Unconditional direct jump/call.
    Unconditional,
    /// Indirect jump (`jr`).
    Indirect,
    /// CFD `Branch_on_BQ` (predicate from the BQ head).
    CfdPop,
    /// CFD `Branch_on_TCR` (direction from the TCR).
    CfdTcr,
}

/// One BTB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// Cached taken-target (instruction index).
    pub target: u32,
    /// Cached branch kind.
    pub kind: BranchKind,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u32,
    entry: BtbEntry,
    lru: u8,
    valid: bool,
}

/// A set-associative Branch Target Buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<Way>>,
    set_bits: u32,
    /// Lookup count (for energy accounting).
    pub lookups: u64,
    /// Hit count.
    pub hits: u64,
}

impl Btb {
    /// Creates a BTB with `2^set_bits` sets of `ways` entries
    /// (default Sandy-Bridge-class: 1024 sets × 4 ways ≈ 4K entries).
    pub fn new(set_bits: u32, ways: usize) -> Btb {
        assert!(ways > 0);
        let dummy = Way { tag: 0, entry: BtbEntry { target: 0, kind: BranchKind::Conditional }, lru: 0, valid: false };
        Btb { sets: vec![vec![dummy; ways]; 1 << set_bits], set_bits, lookups: 0, hits: 0 }
    }

    fn set_index(&self, pc: u64) -> usize {
        (pc as usize) & ((1 << self.set_bits) - 1)
    }

    fn tag(&self, pc: u64) -> u32 {
        (pc >> self.set_bits) as u32
    }

    /// Looks up `pc`; a hit refreshes LRU state.
    pub fn lookup(&mut self, pc: u64) -> Option<BtbEntry> {
        self.lookups += 1;
        let idx = self.set_index(pc);
        let tag = self.tag(pc);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.valid && w.tag == tag)?;
        self.hits += 1;
        let entry = set[pos].entry;
        let old = set[pos].lru;
        for w in set.iter_mut() {
            if w.lru > old {
                w.lru -= 1;
            }
        }
        let ways = set.len() as u8;
        set[pos].lru = ways - 1;
        Some(entry)
    }

    /// Inserts or updates the entry for `pc`.
    pub fn insert(&mut self, pc: u64, entry: BtbEntry) {
        let idx = self.set_index(pc);
        let tag = self.tag(pc);
        let set = &mut self.sets[idx];
        let ways = set.len() as u8;
        let pos = set
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .or_else(|| set.iter().position(|w| !w.valid))
            .unwrap_or_else(|| set.iter().enumerate().min_by_key(|(_, w)| w.lru).map(|(i, _)| i).unwrap());
        let old = if set[pos].valid { set[pos].lru } else { 0 };
        for w in set.iter_mut() {
            if w.valid && w.lru > old {
                w.lru -= 1;
            }
        }
        set[pos] = Way { tag, entry, lru: ways - 1, valid: true };
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.sets[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(target: u32) -> BtbEntry {
        BtbEntry { target, kind: BranchKind::Conditional }
    }

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(4, 2);
        assert!(btb.lookup(0x40).is_none());
        btb.insert(0x40, e(7));
        assert_eq!(btb.lookup(0x40), Some(e(7)));
        assert_eq!(btb.hits, 1);
        assert_eq!(btb.lookups, 2);
    }

    #[test]
    fn update_in_place() {
        let mut btb = Btb::new(4, 2);
        btb.insert(0x40, e(7));
        btb.insert(0x40, e(9));
        assert_eq!(btb.lookup(0x40).unwrap().target, 9);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut btb = Btb::new(0, 2); // one set, two ways
        btb.insert(0, e(1));
        btb.insert(1, e(2));
        btb.lookup(0); // refresh pc 0
        btb.insert(2, e(3)); // must evict pc 1
        assert!(btb.lookup(0).is_some());
        assert!(btb.lookup(1).is_none());
        assert!(btb.lookup(2).is_some());
    }

    #[test]
    fn kinds_are_cached() {
        let mut btb = Btb::new(4, 4);
        btb.insert(0x80, BtbEntry { target: 12, kind: BranchKind::CfdPop });
        assert_eq!(btb.lookup(0x80).unwrap().kind, BranchKind::CfdPop);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(Btb::new(10, 4).capacity(), 4096);
    }
}
