//! # cfd-predictor — branch prediction structures
//!
//! Front-end prediction machinery for the CFD reproduction:
//!
//! * [`IslTage`] — TAGE + loop predictor + UAONA, our stand-in for the
//!   CBP3-winning 64 KB ISL-TAGE the paper's baseline uses,
//! * [`Gshare`], [`Bimodal`] — ablation baselines,
//! * [`Btb`] — set-associative branch target buffer (caches CFD pops too),
//! * [`Ras`] — return address stack with snapshot repair,
//! * [`ConfidenceEstimator`] — JRS resetting counters, used by the core to
//!   guide checkpoint allocation,
//! * [`DirectionPredictor`] — the object-safe interface the timing core
//!   drives, with speculative-history recovery metadata in [`PredMeta`].
//!
//! All predictors are speculatively updated at predict time and carry
//! snapshot metadata for squash/misprediction repair, mirroring real
//! front ends.
//!
//! # Example
//!
//! ```
//! use cfd_predictor::{DirectionPredictor, predictor_by_name};
//! let mut p = predictor_by_name("isl-tage").unwrap();
//! // Immediate-update profiling loop (as in the paper's pintool):
//! let mut miss = 0;
//! for i in 0..1000u64 {
//!     miss += p.observe(0x40, i % 2 == 0) as u64;
//! }
//! assert!(miss < 100); // alternation is easy
//! ```

mod btb;
mod conf;
mod corrector;
mod history;
mod isl_tage;
mod loop_pred;
mod perceptron;
mod ras;
mod simple;
mod tage;

pub use btb::{BranchKind, Btb, BtbEntry};
pub use conf::ConfidenceEstimator;
pub use corrector::{CorrectorMeta, StatisticalCorrector};
pub use history::{FoldedHistory, GlobalHistory, HistorySnapshot};
pub use isl_tage::{IslTage, IslTageMeta};
pub use loop_pred::{LoopMeta, LoopPredictor};
pub use perceptron::{Perceptron, PerceptronMeta};
pub use ras::{Ras, RasSnapshot};
pub use simple::{Bimodal, Gshare, GshareMeta};
pub use tage::{Tage, TageConfig, TageMeta};

/// Per-prediction recovery/training metadata, one variant per predictor.
#[derive(Debug, Clone)]
pub enum PredMeta {
    /// Static predictors carry no state.
    Static,
    /// Bimodal carries no speculative state.
    Bimodal,
    /// Gshare metadata.
    Gshare(Box<GshareMeta>),
    /// Perceptron metadata.
    Perceptron(Box<PerceptronMeta>),
    /// ISL-TAGE metadata.
    IslTage(Box<IslTageMeta>),
}

/// The uniform, object-safe interface the timing core drives.
///
/// Contract: `predict` speculatively updates internal history and returns
/// metadata; exactly one of `recover` (branch resolved, mispredicted),
/// `squash` (branch discarded entirely), or nothing (correct prediction)
/// repairs that speculation; `train` is called at retirement for every
/// resolved branch, in program order.
pub trait DirectionPredictor {
    /// Predicts the branch at `pc`, updating speculative state.
    fn predict(&mut self, pc: u64) -> (bool, PredMeta);
    /// Repairs speculative state after this branch resolved `taken` against
    /// a wrong prediction.
    fn recover(&mut self, pc: u64, taken: bool, meta: &PredMeta);
    /// Discards this branch's speculative state (it was on the wrong path).
    ///
    /// A core that restores predictor state wholesale from a checkpoint
    /// (snapshot-restore recovery, as `cfd-core` does for global history)
    /// subsumes per-branch squash for the snapshot-covered state; `squash`
    /// still repairs state outside any snapshot, such as the loop
    /// predictor's speculative iteration counters.
    fn squash(&mut self, meta: &PredMeta);
    /// Trains tables at retirement.
    fn train(&mut self, pc: u64, taken: bool, meta: &PredMeta);
    /// Short predictor name for reports.
    fn name(&self) -> &'static str;
    /// Deep-copies the predictor behind the trait object. This is what
    /// makes a core checkpoint self-contained: tables, histories and
    /// speculative counters all travel with the clone.
    fn clone_box(&self) -> Box<dyn DirectionPredictor>;

    /// Immediate-update convenience for trace-driven profiling: predict,
    /// repair, train, and report whether the prediction was wrong.
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let (pred, meta) = self.predict(pc);
        if pred != taken {
            self.recover(pc, taken, &meta);
        }
        self.train(pc, taken, &meta);
        pred != taken
    }
}

impl Clone for Box<dyn DirectionPredictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Always-taken static predictor (the weakest baseline).
#[derive(Debug, Default, Clone)]
pub struct AlwaysTaken;

impl DirectionPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> (bool, PredMeta) {
        (true, PredMeta::Static)
    }
    fn recover(&mut self, _pc: u64, _taken: bool, _meta: &PredMeta) {}
    fn squash(&mut self, _meta: &PredMeta) {}
    fn train(&mut self, _pc: u64, _taken: bool, _meta: &PredMeta) {}
    fn name(&self) -> &'static str {
        "always-taken"
    }
    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> (bool, PredMeta) {
        (Bimodal::predict(self, pc), PredMeta::Bimodal)
    }
    fn recover(&mut self, _pc: u64, _taken: bool, _meta: &PredMeta) {}
    fn squash(&mut self, _meta: &PredMeta) {}
    fn train(&mut self, pc: u64, taken: bool, _meta: &PredMeta) {
        Bimodal::train(self, pc, taken);
    }
    fn name(&self) -> &'static str {
        "bimodal"
    }
    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> (bool, PredMeta) {
        let (p, m) = Gshare::predict(self, pc);
        (p, PredMeta::Gshare(Box::new(m)))
    }
    fn recover(&mut self, pc: u64, taken: bool, meta: &PredMeta) {
        if let PredMeta::Gshare(m) = meta {
            Gshare::recover(self, m, taken, pc);
        }
    }
    fn squash(&mut self, meta: &PredMeta) {
        if let PredMeta::Gshare(m) = meta {
            Gshare::squash(self, m);
        }
    }
    fn train(&mut self, _pc: u64, taken: bool, meta: &PredMeta) {
        if let PredMeta::Gshare(m) = meta {
            Gshare::train(self, taken, m);
        }
    }
    fn name(&self) -> &'static str {
        "gshare"
    }
    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

impl DirectionPredictor for Perceptron {
    fn predict(&mut self, pc: u64) -> (bool, PredMeta) {
        let (p, m) = Perceptron::predict(self, pc);
        (p, PredMeta::Perceptron(Box::new(m)))
    }
    fn recover(&mut self, pc: u64, taken: bool, meta: &PredMeta) {
        if let PredMeta::Perceptron(m) = meta {
            Perceptron::recover(self, m, taken, pc);
        }
    }
    fn squash(&mut self, meta: &PredMeta) {
        if let PredMeta::Perceptron(m) = meta {
            Perceptron::squash(self, m);
        }
    }
    fn train(&mut self, _pc: u64, taken: bool, meta: &PredMeta) {
        if let PredMeta::Perceptron(m) = meta {
            Perceptron::train(self, taken, m);
        }
    }
    fn name(&self) -> &'static str {
        "perceptron"
    }
    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

impl DirectionPredictor for IslTage {
    fn predict(&mut self, pc: u64) -> (bool, PredMeta) {
        let (p, m) = IslTage::predict(self, pc);
        (p, PredMeta::IslTage(Box::new(m)))
    }
    fn recover(&mut self, pc: u64, taken: bool, meta: &PredMeta) {
        if let PredMeta::IslTage(m) = meta {
            IslTage::recover(self, pc, taken, m);
        }
    }
    fn squash(&mut self, meta: &PredMeta) {
        if let PredMeta::IslTage(m) = meta {
            IslTage::squash(self, m);
        }
    }
    fn train(&mut self, pc: u64, taken: bool, meta: &PredMeta) {
        if let PredMeta::IslTage(m) = meta {
            IslTage::train(self, pc, taken, m);
        }
    }
    fn name(&self) -> &'static str {
        "isl-tage"
    }
    fn clone_box(&self) -> Box<dyn DirectionPredictor> {
        Box::new(self.clone())
    }
}

/// Constructs a predictor by name: `"always-taken"`, `"bimodal"`,
/// `"gshare"`, `"perceptron"`, or `"isl-tage"`. Returns `None` for unknown
/// names.
pub fn predictor_by_name(name: &str) -> Option<Box<dyn DirectionPredictor>> {
    match name {
        "always-taken" => Some(Box::new(AlwaysTaken)),
        "bimodal" => Some(Box::new(Bimodal::new(14))),
        "gshare" => Some(Box::new(Gshare::new(14))),
        "perceptron" => Some(Box::new(Perceptron::new(10))),
        "isl-tage" => Some(Box::new(IslTage::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_knows_all_names() {
        for n in ["always-taken", "bimodal", "gshare", "perceptron", "isl-tage"] {
            assert_eq!(predictor_by_name(n).unwrap().name(), n);
        }
        assert!(predictor_by_name("oracle").is_none());
    }

    #[test]
    fn accuracy_ordering_on_history_pattern() {
        // A history-correlated pattern: isl-tage <= gshare <= bimodal misses.
        let pattern = [true, false, false, true, false, true, true, false];
        let mut rates = Vec::new();
        for name in ["bimodal", "gshare", "isl-tage"] {
            let mut p = predictor_by_name(name).unwrap();
            let mut miss = 0u64;
            for i in 0..30_000 {
                miss += p.observe(0x40, pattern[i % pattern.len()]) as u64;
            }
            rates.push(miss);
        }
        // Both history predictors learn this pattern nearly perfectly; the
        // ordering holds up to noise, and both crush bimodal.
        assert!(rates[2] <= rates[1] + 30, "isl-tage ({}) should match gshare ({})", rates[2], rates[1]);
        assert!(rates[1] * 10 < rates[0], "gshare ({}) should crush bimodal ({})", rates[1], rates[0]);
    }

    #[test]
    fn observe_reports_mispredictions() {
        let mut p = AlwaysTaken;
        assert!(!p.observe(0, true));
        assert!(p.observe(0, false));
    }
}
