//! Perceptron branch predictor (Jiménez & Lin, HPCA 2001).
//!
//! Included as an ablation point between gshare and TAGE: linear in the
//! global history, so it captures long correlations that gshare's XOR
//! folding destroys, but — like every history-based predictor — it cannot
//! learn the data-dependent predicates CFD targets. The predictor ablation
//! experiment uses it to show CFD's gains are predictor-independent.

use crate::history::{GlobalHistory, HistorySnapshot};

/// History length (number of weights per entry, minus the bias).
const HIST_LEN: usize = 32;
/// Weight saturation bound.
const WMAX: i16 = 127;
/// Training threshold θ ≈ 1.93·h + 14 (the paper's tuned value).
const THETA: i32 = (1.93 * HIST_LEN as f64 + 14.0) as i32;

/// Per-prediction metadata.
#[derive(Debug, Clone)]
pub struct PerceptronMeta {
    snapshot: HistorySnapshot,
    /// Dot-product output at predict time.
    pub output: i32,
    /// Predicted direction.
    pub pred: bool,
    index: usize,
    /// History bits used (most recent first).
    bits: [bool; HIST_LEN],
}

/// A global-history perceptron predictor.
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// weights[i][0] is the bias; [1..] pair with history bits.
    weights: Vec<[i16; HIST_LEN + 1]>,
    index_bits: u32,
    hist: GlobalHistory,
}

impl Perceptron {
    /// Creates a perceptron predictor with `2^index_bits` entries
    /// (10 bits ≈ 33 KB of weights at h=32).
    pub fn new(index_bits: u32) -> Perceptron {
        Perceptron { weights: vec![[0; HIST_LEN + 1]; 1 << index_bits], index_bits, hist: GlobalHistory::new() }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ (pc >> 12) as usize) & ((1 << self.index_bits) - 1)
    }

    /// Predicts the branch at `pc`, speculatively updating the history.
    pub fn predict(&mut self, pc: u64) -> (bool, PerceptronMeta) {
        let index = self.index(pc);
        let mut bits = [false; HIST_LEN];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = self.hist.recent(i);
        }
        let w = &self.weights[index];
        let mut output = w[0] as i32;
        for (i, &b) in bits.iter().enumerate() {
            output += if b { w[i + 1] as i32 } else { -(w[i + 1] as i32) };
        }
        let pred = output >= 0;
        let snapshot = self.hist.snapshot();
        self.hist.insert(pred, pc);
        (pred, PerceptronMeta { snapshot, output, pred, index, bits })
    }

    /// Repairs the speculative history after a misprediction.
    pub fn recover(&mut self, meta: &PerceptronMeta, taken: bool, pc: u64) {
        self.hist.recover(&meta.snapshot, taken, pc);
    }

    /// Discards this branch's speculative history.
    pub fn squash(&mut self, meta: &PerceptronMeta) {
        self.hist.restore(&meta.snapshot);
    }

    /// Trains at retirement: on a misprediction or a low-confidence output,
    /// nudge the weights toward the outcome.
    pub fn train(&mut self, taken: bool, meta: &PerceptronMeta) {
        let mispredicted = meta.pred != taken;
        if !mispredicted && meta.output.abs() > THETA {
            return;
        }
        let t = if taken { 1i16 } else { -1i16 };
        let w = &mut self.weights[meta.index];
        w[0] = (w[0] + t).clamp(-WMAX, WMAX);
        for (i, &b) in meta.bits.iter().enumerate() {
            let x = if b { 1i16 } else { -1i16 };
            w[i + 1] = (w[i + 1] + t * x).clamp(-WMAX, WMAX);
        }
    }

    /// Table storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.weights.len() * (HIST_LEN + 1) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe(p: &mut Perceptron, pc: u64, taken: bool) -> bool {
        let (pred, meta) = p.predict(pc);
        if pred != taken {
            p.recover(&meta, taken, pc);
        }
        p.train(taken, &meta);
        pred != taken
    }

    #[test]
    fn learns_bias() {
        let mut p = Perceptron::new(8);
        let miss: u64 = (0..2000).map(|_| observe(&mut p, 0x40, true) as u64).sum();
        assert!(miss < 50, "always-taken must converge, miss={miss}");
    }

    #[test]
    fn learns_linearly_separable_correlation() {
        // outcome = previous outcome (trivially linear in history bit 0).
        let mut p = Perceptron::new(8);
        let mut prev = true;
        let mut x = 0x1234u64;
        let mut miss = 0u64;
        for i in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let cur = if i % 2 == 0 { (x >> 63) != 0 } else { prev };
            if i % 2 == 0 {
                observe(&mut p, 0x10, cur);
                prev = cur;
            } else {
                miss += observe(&mut p, 0x20, cur) as u64;
            }
        }
        assert!(miss < 1500, "correlated branch should be learned, miss={miss}");
    }

    #[test]
    fn cannot_learn_random_data_dependence() {
        let mut p = Perceptron::new(8);
        let mut x = 99u64;
        let n = 10_000;
        let mut miss = 0u64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            miss += observe(&mut p, 0x30, (x >> 62) == 0) as u64;
        }
        let rate = miss as f64 / n as f64;
        assert!(rate > 0.15, "random 25%-biased stream stays hard, rate={rate}");
    }

    #[test]
    fn storage_is_reported() {
        let p = Perceptron::new(10);
        assert_eq!(p.storage_bytes(), 1024 * 33 * 2);
    }

    #[test]
    fn squash_restores_history() {
        let mut p = Perceptron::new(8);
        observe(&mut p, 0x40, true);
        let (_, m) = p.predict(0x50);
        let out_before = m.output;
        p.squash(&m);
        let (_, m2) = p.predict(0x50);
        assert_eq!(m2.output, out_before);
    }
}
