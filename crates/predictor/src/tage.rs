//! A TAGE conditional branch predictor.
//!
//! Follows Seznec's TAGE design: a bimodal base table plus `N` tagged
//! tables indexed with geometrically increasing global-history lengths.
//! The provider is the hitting table with the longest history; `u` (useful)
//! counters arbitrate allocation on mispredictions; a "use alt on newly
//! allocated" (UAONA) counter — one of the ISL-TAGE refinements — decides
//! whether to trust weak newly-allocated entries.
//!
//! The predictor is *speculatively updated*: `predict` inserts the predicted
//! direction into the global history, and the returned [`TageMeta`] carries
//! the [`HistorySnapshot`] needed to repair the history on a misprediction.

use crate::history::{GlobalHistory, HistorySnapshot};

/// Configuration of a [`Tage`] predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// log2 entries of the bimodal base table.
    pub base_bits: u32,
    /// log2 entries of each tagged table.
    pub tagged_bits: u32,
    /// Tag width of each tagged table.
    pub tag_bits: u32,
    /// History lengths of the tagged tables, shortest first.
    pub history_lengths: Vec<usize>,
    /// Period (in branches) of the graceful `u`-bit reset.
    pub u_reset_period: u64,
}

impl Default for TageConfig {
    fn default() -> Self {
        // ~64 KB class budget, comparable to the paper's CBP3 ISL-TAGE.
        TageConfig {
            base_bits: 14,
            tagged_bits: 10,
            tag_bits: 11,
            history_lengths: vec![4, 7, 12, 21, 36, 62, 107, 185, 319, 550],
            u_reset_period: 256 * 1024,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter, taken when >= 0.
    ctr: i8,
    /// 2-bit useful counter.
    u: u8,
}

/// Upper bound on tagged tables (fixed arrays keep metadata heap-free).
pub const MAX_TABLES: usize = 16;

/// Per-prediction metadata carried by an in-flight branch.
#[derive(Debug, Clone)]
pub struct TageMeta {
    /// History state before this branch (for recovery).
    pub snapshot: HistorySnapshot,
    /// Predicted direction.
    pub pred: bool,
    provider: Option<usize>,
    provider_idx: usize,
    /// The provider entry's own direction at predict time (pre-UAONA).
    provider_dir: bool,
    alt_pred: bool,
    base_idx: usize,
    /// Whether the provider entry was "newly allocated" (weak and not useful).
    provider_new: bool,
    /// Per-table indices/tags computed at predict time.
    indices: [u16; MAX_TABLES],
    tags: [u16; MAX_TABLES],
}

impl TageMeta {
    /// Whether the providing entry was confident (present, not newly
    /// allocated, and with a non-weak counter). The statistical corrector
    /// only considers inverting unconfident predictions.
    pub fn provider_confident(&self) -> bool {
        self.provider.is_some() && !self.provider_new
    }
}

/// The TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: TageConfig,
    base: Vec<i8>,
    tables: Vec<Vec<TaggedEntry>>,
    hist: GlobalHistory,
    idx_folds: Vec<usize>,
    tag_folds1: Vec<usize>,
    tag_folds2: Vec<usize>,
    /// Use-alt-on-newly-allocated counter (4 bits, signed around 0).
    uaona: i8,
    branches_seen: u64,
    alloc_seed: u32,
}

impl Tage {
    /// Creates a TAGE predictor from a configuration.
    pub fn new(cfg: TageConfig) -> Tage {
        assert!(cfg.history_lengths.len() <= MAX_TABLES, "too many tagged tables");
        let mut hist = GlobalHistory::new();
        let mut idx_folds = Vec::new();
        let mut tag_folds1 = Vec::new();
        let mut tag_folds2 = Vec::new();
        for &hl in &cfg.history_lengths {
            idx_folds.push(hist.add_fold(hl, cfg.tagged_bits));
            tag_folds1.push(hist.add_fold(hl, cfg.tag_bits));
            tag_folds2.push(hist.add_fold(hl, cfg.tag_bits - 1));
        }
        let tables = cfg.history_lengths.iter().map(|_| vec![TaggedEntry::default(); 1 << cfg.tagged_bits]).collect();
        Tage {
            base: vec![0; 1 << cfg.base_bits],
            tables,
            hist,
            idx_folds,
            tag_folds1,
            tag_folds2,
            uaona: 0,
            branches_seen: 0,
            alloc_seed: 0x9e3779b9,
            cfg,
        }
    }

    fn base_index(&self, pc: u64) -> usize {
        (pc as usize ^ (pc as usize >> 2)) & ((1 << self.cfg.base_bits) - 1)
    }

    fn table_index(&self, pc: u64, t: usize) -> usize {
        let mask = (1usize << self.cfg.tagged_bits) - 1;
        let f = self.hist.folded(self.idx_folds[t]) as usize;
        let p = (self.hist.path() as usize) & mask;
        (pc as usize ^ (pc as usize >> (self.cfg.tagged_bits as usize - t % 4)) ^ f ^ (p >> (t & 3))) & mask
    }

    fn table_tag(&self, pc: u64, t: usize) -> u16 {
        let mask = (1u32 << self.cfg.tag_bits) - 1;
        ((pc as u32 ^ self.hist.folded(self.tag_folds1[t]) ^ (self.hist.folded(self.tag_folds2[t]) << 1)) & mask) as u16
    }

    /// Predicts the branch at `pc`, speculatively updating the history.
    pub fn predict(&mut self, pc: u64) -> (bool, TageMeta) {
        let n = self.tables.len();
        let mut indices = [0u16; MAX_TABLES];
        let mut tags = [0u16; MAX_TABLES];
        for t in 0..n {
            indices[t] = self.table_index(pc, t) as u16;
            tags[t] = self.table_tag(pc, t);
        }
        let base_idx = self.base_index(pc);
        let base_pred = self.base[base_idx] >= 0;

        let mut provider = None;
        let mut alt_provider = None;
        for t in (0..n).rev() {
            let e = &self.tables[t][indices[t] as usize];
            if e.tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt_provider = Some(t);
                    break;
                }
            }
        }

        let alt_pred = match alt_provider {
            Some(t) => self.tables[t][indices[t] as usize].ctr >= 0,
            None => base_pred,
        };
        let (pred, provider_idx, provider_new, provider_dir) = match provider {
            Some(t) => {
                let e = &self.tables[t][indices[t] as usize];
                let newly = e.u == 0 && (e.ctr == 0 || e.ctr == -1);
                let use_alt = newly && self.uaona >= 0;
                let dir = e.ctr >= 0;
                let p = if use_alt { alt_pred } else { dir };
                (p, indices[t] as usize, newly, dir)
            }
            None => (base_pred, base_idx, false, base_pred),
        };

        let snapshot = self.hist.snapshot();
        self.hist.insert(pred, pc);
        let meta = TageMeta {
            snapshot,
            pred,
            provider,
            provider_idx,
            provider_dir,
            alt_pred,
            base_idx,
            provider_new,
            indices,
            tags,
        };
        (pred, meta)
    }

    /// Repairs the speculative history after `pc` resolved `taken` against a
    /// mispredicted `meta`.
    pub fn recover(&mut self, meta: &TageMeta, taken: bool, pc: u64) {
        self.hist.recover(&meta.snapshot, taken, pc);
    }

    /// Restores the history to just before this branch (squash without
    /// re-execution, e.g. a wrong-path branch being discarded).
    pub fn squash(&mut self, meta: &TageMeta) {
        self.hist.restore(&meta.snapshot);
    }

    fn bump(ctr: &mut i8, up: bool, lo: i8, hi: i8) {
        if up {
            if *ctr < hi {
                *ctr += 1;
            }
        } else if *ctr > lo {
            *ctr -= 1;
        }
    }

    /// Trains the predictor at retirement with the resolved direction.
    pub fn train(&mut self, pc: u64, taken: bool, meta: &TageMeta) {
        let _ = pc;
        self.branches_seen += 1;
        // Graceful u-bit aging.
        if self.branches_seen.is_multiple_of(self.cfg.u_reset_period) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.u >>= 1;
                }
            }
        }

        let mispredicted = meta.pred != taken;

        // UAONA bookkeeping: when the provider was newly allocated and its
        // own prediction differed from the alternate, learn which to trust.
        if meta.provider.is_some() && meta.provider_new && meta.provider_dir != meta.alt_pred {
            Self::bump(&mut self.uaona, meta.alt_pred == taken, -8, 7);
        }

        // Update provider (or base) counter.
        match meta.provider {
            Some(t) => {
                let e = &mut self.tables[t][meta.provider_idx];
                Self::bump(&mut e.ctr, taken, -4, 3);
                // Useful-bit update uses the provider's *predict-time*
                // direction: a provider that mispredicted must not be
                // credited just because the bump moved its counter.
                if meta.provider_dir == taken && meta.alt_pred != taken && e.u < 3 {
                    e.u += 1;
                } else if meta.provider_dir != taken && meta.alt_pred == taken && e.u > 0 {
                    e.u -= 1;
                }
                // Also train the base table when the provider is weak.
                if meta.provider_new {
                    Self::bump(&mut self.base[meta.base_idx], taken, -2, 1);
                }
            }
            None => {
                Self::bump(&mut self.base[meta.base_idx], taken, -2, 1);
            }
        }

        // Allocate on misprediction in a longer-history table.
        if mispredicted {
            let start = meta.provider.map_or(0, |t| t + 1);
            if start < self.tables.len() {
                // Pseudo-random start offset reduces ping-ponging.
                self.alloc_seed = self.alloc_seed.wrapping_mul(1664525).wrapping_add(1013904223);
                let skip = (self.alloc_seed >> 16) as usize % 2;
                let mut allocated = false;
                for t in (start + skip.min(self.tables.len() - 1 - start))..self.tables.len() {
                    let idx = meta.indices[t] as usize;
                    let e = &mut self.tables[t][idx];
                    if e.u == 0 {
                        e.tag = meta.tags[t];
                        e.ctr = if taken { 0 } else { -1 };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    // Decay u over the candidate range to make room next time.
                    for t in start..self.tables.len() {
                        let idx = meta.indices[t] as usize;
                        let e = &mut self.tables[t][idx];
                        if e.u > 0 {
                            e.u -= 1;
                        }
                    }
                }
            }
        }
    }

    /// Storage budget of the tables in bytes (excluding history registers).
    pub fn storage_bytes(&self) -> usize {
        let base = (1usize << self.cfg.base_bits) * 2 / 8;
        let per_entry_bits = self.cfg.tag_bits as usize + 3 + 2;
        base + self.tables.len() * (1usize << self.cfg.tagged_bits) * per_entry_bits / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_stream(t: &mut Tage, stream: impl Iterator<Item = (u64, bool)>) -> (u64, u64) {
        let (mut total, mut miss) = (0u64, 0u64);
        for (pc, taken) in stream {
            let (pred, meta) = t.predict(pc);
            if pred != taken {
                miss += 1;
                t.recover(&meta, taken, pc);
            }
            t.train(pc, taken, &meta);
            total += 1;
        }
        (total, miss)
    }

    #[test]
    fn learns_always_taken() {
        let mut t = Tage::new(TageConfig::default());
        let (total, miss) = run_stream(&mut t, (0..2000).map(|_| (0x40, true)));
        assert!(miss * 20 < total, "miss={miss}/{total}");
    }

    #[test]
    fn learns_short_pattern_via_history() {
        // Period-7 pattern: bimodal alone cannot learn it, TAGE must.
        let pattern = [true, true, false, true, false, false, true];
        let mut t = Tage::new(TageConfig::default());
        let stream = (0..30_000).map(|i| (0x80u64, pattern[i % pattern.len()]));
        let (_, warm_miss) = run_stream(&mut t, stream);
        // After warmup the steady-state misses should be a tiny fraction.
        let (total, miss) = run_stream(&mut t, (0..5000).map(|i| (0x80u64, pattern[i % pattern.len()])));
        assert!(miss * 50 < total, "steady miss={miss}/{total} (warm={warm_miss})");
    }

    #[test]
    fn random_stream_mispredicts_half() {
        let mut t = Tage::new(TageConfig::default());
        let mut x = 0xdeadbeefu64;
        let stream = (0..20_000).map(move |_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (0x100u64, (x >> 63) != 0)
        });
        // Reconstruct the same stream (same closure semantics need care; use a vec)
        let mut y = 0xdeadbeefu64;
        let v: Vec<(u64, bool)> = (0..20_000)
            .map(|_| {
                y = y.wrapping_mul(6364136223846793005).wrapping_add(1);
                (0x100u64, (y >> 63) != 0)
            })
            .collect();
        drop(stream);
        let (total, miss) = run_stream(&mut t, v.into_iter());
        let rate = miss as f64 / total as f64;
        assert!(rate > 0.35 && rate < 0.65, "rate={rate}");
    }

    #[test]
    fn distinguishes_pcs() {
        let mut t = Tage::new(TageConfig::default());
        let v: Vec<(u64, bool)> = (0..4000).flat_map(|_| [(0x10u64, true), (0x20u64, false)]).collect();
        let (total, miss) = run_stream(&mut t, v.into_iter());
        assert!(miss * 20 < total, "miss={miss}/{total}");
    }

    #[test]
    fn recovery_keeps_history_consistent() {
        // Predict with deliberate wrong-path inserts: outcome correctness of
        // the *final* accuracy implies recovery works; here we check a
        // mechanical invariant instead: recover + same-pc repredict is stable.
        let mut t = Tage::new(TageConfig::default());
        for i in 0..100 {
            let (p, meta) = t.predict(0x40 + (i % 3) * 8);
            if p != (i % 2 == 0) {
                t.recover(&meta, i % 2 == 0, 0x40 + (i % 3) * 8);
            }
            t.train(0x40 + (i % 3) * 8, i % 2 == 0, &meta);
        }
        let snap_before = t.hist.snapshot();
        let (_, meta) = t.predict(0x99);
        t.squash(&meta);
        assert_eq!(t.hist.snapshot(), snap_before);
    }

    #[test]
    fn storage_budget_is_reported() {
        let t = Tage::new(TageConfig::default());
        let kb = t.storage_bytes() / 1024;
        assert!((20..=128).contains(&kb), "storage {kb} KB");
    }
}
