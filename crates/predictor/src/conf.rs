//! JRS-style branch confidence estimator.
//!
//! Jacobsen, Rotenberg & Smith (MICRO 1996): a table of resetting counters.
//! A counter increments on every correct prediction of branches mapping to
//! it and resets to zero on a misprediction; a branch is *high confidence*
//! when its counter saturates. The paper's best baseline uses a confidence
//! estimator to guide checkpoint allocation (§VI), which is exactly what
//! `cfd-core` uses this type for.

/// Resetting-counter confidence estimator.
#[derive(Debug, Clone)]
pub struct ConfidenceEstimator {
    ctrs: Vec<u8>,
    index_bits: u32,
    threshold: u8,
}

impl ConfidenceEstimator {
    /// Creates an estimator with `2^index_bits` 4-bit resetting counters and
    /// the given saturation threshold (15 = classic "MaxCtr" policy).
    pub fn new(index_bits: u32, threshold: u8) -> ConfidenceEstimator {
        assert!(threshold <= 15);
        ConfidenceEstimator { ctrs: vec![0; 1 << index_bits], index_bits, threshold }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ (pc >> 11) as usize) & ((1 << self.index_bits) - 1)
    }

    /// Whether the branch at `pc` is currently predicted with high
    /// confidence (its counter has reached the threshold).
    pub fn is_confident(&self, pc: u64) -> bool {
        self.ctrs[self.index(pc)] >= self.threshold
    }

    /// Updates the counter with the outcome of a prediction.
    pub fn update(&mut self, pc: u64, correct: bool) {
        let idx = self.index(pc);
        let c = &mut self.ctrs[idx];
        if correct {
            *c = (*c + 1).min(15);
        } else {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unconfident() {
        let ce = ConfidenceEstimator::new(10, 15);
        assert!(!ce.is_confident(0x40));
    }

    #[test]
    fn saturates_to_confident() {
        let mut ce = ConfidenceEstimator::new(10, 15);
        for _ in 0..15 {
            ce.update(0x40, true);
        }
        assert!(ce.is_confident(0x40));
    }

    #[test]
    fn resets_on_mispredict() {
        let mut ce = ConfidenceEstimator::new(10, 15);
        for _ in 0..20 {
            ce.update(0x40, true);
        }
        ce.update(0x40, false);
        assert!(!ce.is_confident(0x40));
    }

    #[test]
    fn threshold_is_configurable() {
        let mut ce = ConfidenceEstimator::new(10, 4);
        for _ in 0..4 {
            ce.update(0x80, true);
        }
        assert!(ce.is_confident(0x80));
    }
}
