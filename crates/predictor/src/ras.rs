//! Return Address Stack with checkpoint-based repair.
//!
//! Calls push a return address at fetch; returns pop speculatively. On a
//! squash the stack is repaired from a [`RasSnapshot`] (top-of-stack index
//! plus the top value), the standard low-cost repair scheme.

/// Snapshot of the RAS for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasSnapshot {
    top: usize,
    top_value: u32,
}

/// A fixed-size circular return address stack.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u32>,
    top: usize,
}

impl Ras {
    /// Creates a RAS with `depth` entries (16 is Sandy-Bridge-class).
    pub fn new(depth: usize) -> Ras {
        assert!(depth > 0);
        Ras { stack: vec![0; depth], top: 0 }
    }

    /// Pushes a return address (at a call's fetch).
    pub fn push(&mut self, ret_addr: u32) {
        self.top = (self.top + 1) % self.stack.len();
        self.stack[self.top] = ret_addr;
    }

    /// Pops the predicted return address (at a return's fetch).
    pub fn pop(&mut self) -> u32 {
        let v = self.stack[self.top];
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        v
    }

    /// Captures repair state.
    pub fn snapshot(&self) -> RasSnapshot {
        RasSnapshot { top: self.top, top_value: self.stack[self.top] }
    }

    /// Restores repair state.
    pub fn restore(&mut self, snap: &RasSnapshot) {
        self.top = snap.top;
        self.stack[self.top] = snap.top_value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut ras = Ras::new(8);
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop(), 20);
        assert_eq!(ras.pop(), 10);
    }

    #[test]
    fn snapshot_restore_repairs_wrong_path() {
        let mut ras = Ras::new(8);
        ras.push(10);
        let snap = ras.snapshot();
        ras.push(99); // wrong path
        ras.pop();
        ras.pop();
        ras.restore(&snap);
        assert_eq!(ras.pop(), 10);
    }

    #[test]
    fn wraps_without_panic() {
        let mut ras = Ras::new(2);
        for i in 0..10 {
            ras.push(i);
        }
        assert_eq!(ras.pop(), 9);
        assert_eq!(ras.pop(), 8);
    }
}
