//! Baseline direction predictors: bimodal, gshare, static.
//!
//! These serve as ablation baselines for the ISL-TAGE-lite predictor and as
//! cheap predictors for unit tests.

use crate::history::{GlobalHistory, HistorySnapshot};

/// A bimodal predictor: a table of 2-bit saturating counters indexed by PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    ctrs: Vec<i8>,
    index_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    pub fn new(index_bits: u32) -> Bimodal {
        Bimodal { ctrs: vec![0; 1 << index_bits], index_bits }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize ^ (pc as usize >> 13)) & ((1 << self.index_bits) - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.ctrs[self.index(pc)] >= 0
    }

    /// Trains with the resolved direction.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.ctrs[idx];
        if taken {
            *c = (*c + 1).min(1);
        } else {
            *c = (*c - 1).max(-2);
        }
    }
}

/// Per-prediction metadata of [`Gshare`].
#[derive(Debug, Clone)]
pub struct GshareMeta {
    snapshot: HistorySnapshot,
    index: usize,
    /// Predicted direction.
    pub pred: bool,
}

/// A gshare predictor: PC xor folded-global-history indexed 2-bit counters,
/// with speculative history and snapshot-based recovery.
#[derive(Debug, Clone)]
pub struct Gshare {
    ctrs: Vec<i8>,
    index_bits: u32,
    hist: GlobalHistory,
    fold: usize,
}

impl Gshare {
    /// Creates a gshare predictor with `2^index_bits` counters and an
    /// `index_bits`-long global history.
    pub fn new(index_bits: u32) -> Gshare {
        let mut hist = GlobalHistory::new();
        let fold = hist.add_fold(index_bits as usize, index_bits);
        Gshare { ctrs: vec![0; 1 << index_bits], index_bits, hist, fold }
    }

    /// Predicts the branch at `pc`, speculatively updating the history.
    pub fn predict(&mut self, pc: u64) -> (bool, GshareMeta) {
        let index = ((pc as usize >> 2) ^ self.hist.folded(self.fold) as usize) & ((1 << self.index_bits) - 1);
        let pred = self.ctrs[index] >= 0;
        let snapshot = self.hist.snapshot();
        self.hist.insert(pred, pc);
        (pred, GshareMeta { snapshot, index, pred })
    }

    /// Repairs the history after a misprediction.
    pub fn recover(&mut self, meta: &GshareMeta, taken: bool, pc: u64) {
        self.hist.recover(&meta.snapshot, taken, pc);
    }

    /// Discards this branch's speculative history (wrong-path squash).
    pub fn squash(&mut self, meta: &GshareMeta) {
        self.hist.restore(&meta.snapshot);
    }

    /// Trains with the resolved direction.
    pub fn train(&mut self, taken: bool, meta: &GshareMeta) {
        let c = &mut self.ctrs[meta.index];
        if taken {
            *c = (*c + 1).min(1);
        } else {
            *c = (*c - 1).max(-2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut b = Bimodal::new(10);
        for _ in 0..10 {
            b.train(0x40, true);
        }
        assert!(b.predict(0x40));
        for _ in 0..10 {
            b.train(0x40, false);
        }
        assert!(!b.predict(0x40));
    }

    #[test]
    fn bimodal_hysteresis() {
        let mut b = Bimodal::new(10);
        b.train(0x40, true);
        b.train(0x40, true);
        b.train(0x40, false); // one anomaly
        assert!(b.predict(0x40), "2-bit counter should tolerate one anomaly");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut g = Gshare::new(12);
        let mut miss = 0;
        for i in 0..4000 {
            let taken = i % 2 == 0;
            let (p, meta) = g.predict(0x80);
            if p != taken {
                miss += 1;
                g.recover(&meta, taken, 0x80);
            }
            g.train(taken, &meta);
        }
        assert!(miss < 200, "gshare should learn T/NT alternation, miss={miss}");
    }

    #[test]
    fn gshare_squash_restores_history() {
        let mut g = Gshare::new(10);
        let (_, m1) = g.predict(0x10);
        g.train(true, &m1);
        let before = g.hist.snapshot();
        let (_, m2) = g.predict(0x20);
        g.squash(&m2);
        assert_eq!(g.hist.snapshot(), before);
    }
}
