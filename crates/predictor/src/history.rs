//! Speculative global branch history with O(1) folded views.
//!
//! TAGE-style predictors index their tables with very long global histories
//! (hundreds of bits) folded down to table-index width. We keep the history
//! in a large circular bit buffer with an *insertion position* and maintain
//! folded CSRs incrementally. Recovery from a misprediction restores the
//! position and the folded registers from a per-branch [`HistorySnapshot`];
//! the bits behind the restored position are still intact in the buffer
//! (wrong-path bits ahead of it are overwritten before they can ever be
//! read), so rewinding is O(#folds), not O(history length).

/// Size of the circular history buffer in bits. Must exceed the longest
/// history length plus the maximum number of in-flight branches.
const BUF_BITS: usize = 4096;

/// An incrementally folded view of the last `hist_len` history bits,
/// compressed to `out_bits` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldedHistory {
    value: u32,
    hist_len: u16,
    out_bits: u8,
    /// `hist_len % out_bits`, the rotation applied to the outgoing bit.
    out_pos: u8,
}

impl FoldedHistory {
    /// An inert placeholder fold (used to pre-fill fixed-size arrays).
    pub const fn empty() -> FoldedHistory {
        FoldedHistory { value: 0, hist_len: 0, out_bits: 1, out_pos: 0 }
    }

    /// Creates a folded view of `hist_len` bits compressed to `out_bits`.
    pub fn new(hist_len: usize, out_bits: u32) -> FoldedHistory {
        assert!(out_bits > 0 && out_bits <= 31);
        assert!(hist_len <= u16::MAX as usize);
        FoldedHistory {
            value: 0,
            hist_len: hist_len as u16,
            out_bits: out_bits as u8,
            out_pos: (hist_len % out_bits as usize) as u8,
        }
    }

    /// The current folded value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Shifts in `new_bit` and shifts out `old_bit` (the bit leaving the
    /// `hist_len` window).
    #[inline]
    pub fn update(&mut self, new_bit: bool, old_bit: bool) {
        let mask = (1u32 << self.out_bits) - 1;
        // Rotate-insert the new bit.
        self.value = (self.value << 1) | (new_bit as u32);
        self.value ^= self.value >> self.out_bits;
        self.value &= mask;
        // Remove the outgoing bit at its rotated position.
        self.value ^= (old_bit as u32) << self.out_pos;
        // If the outgoing bit's position is at or above out_bits the xor-fold
        // already cancelled it; out_pos < out_bits by construction.
    }
}

/// Maximum number of folded views a [`GlobalHistory`] may carry.
pub const MAX_FOLDS: usize = 48;

/// Snapshot of the history state at a branch, for misprediction recovery.
///
/// Fixed-size (no heap) because one is taken per predicted branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistorySnapshot {
    pos: u64,
    phist: u32,
    n_folds: u8,
    folds: [FoldedHistory; MAX_FOLDS],
}

/// The speculative global history: a circular bit buffer plus a set of
/// registered folded views and a short path history.
#[derive(Debug, Clone)]
pub struct GlobalHistory {
    buf: Vec<u64>,
    /// Total bits ever inserted (insertion position).
    pos: u64,
    /// 16-bit path history (low bits of branch PCs).
    phist: u32,
    n_folds: usize,
    folds: [FoldedHistory; MAX_FOLDS],
}

impl GlobalHistory {
    /// Creates an empty history with no folded views.
    pub fn new() -> GlobalHistory {
        GlobalHistory {
            buf: vec![0; BUF_BITS / 64],
            pos: 0,
            phist: 0,
            n_folds: 0,
            folds: [FoldedHistory::empty(); MAX_FOLDS],
        }
    }

    /// Registers a folded view; returns its handle for [`folded`](Self::folded).
    pub fn add_fold(&mut self, hist_len: usize, out_bits: u32) -> usize {
        assert!(hist_len < BUF_BITS / 2, "history length too large for the buffer");
        assert!(self.n_folds < MAX_FOLDS, "too many folded views");
        self.folds[self.n_folds] = FoldedHistory::new(hist_len, out_bits);
        self.n_folds += 1;
        self.n_folds - 1
    }

    /// The current value of a registered folded view.
    #[inline]
    pub fn folded(&self, handle: usize) -> u32 {
        self.folds[handle].value()
    }

    /// The 16-bit path history.
    #[inline]
    pub fn path(&self) -> u32 {
        self.phist
    }

    #[inline]
    fn bit(&self, abs: u64) -> bool {
        let idx = (abs as usize) % BUF_BITS;
        (self.buf[idx / 64] >> (idx % 64)) & 1 != 0
    }

    #[inline]
    fn set_bit(&mut self, abs: u64, v: bool) {
        let idx = (abs as usize) % BUF_BITS;
        let (w, b) = (idx / 64, idx % 64);
        if v {
            self.buf[w] |= 1 << b;
        } else {
            self.buf[w] &= !(1 << b);
        }
    }

    /// Raw history bit `n` positions back (0 = most recent).
    #[inline]
    pub fn recent(&self, n: usize) -> bool {
        if (n as u64) < self.pos {
            self.bit(self.pos - 1 - n as u64)
        } else {
            false
        }
    }

    /// Inserts a branch outcome (speculatively, at predict time).
    pub fn insert(&mut self, taken: bool, pc: u64) {
        let pos = self.pos;
        self.set_bit(pos, taken);
        self.pos += 1;
        for f in self.folds[..self.n_folds].iter_mut() {
            let old = if pos >= f.hist_len as u64 {
                // This reads a bit strictly behind the insertion point, which
                // survives any later rewind (see module docs).
                self.buf[((pos - f.hist_len as u64) as usize % BUF_BITS) / 64]
                    >> ((pos - f.hist_len as u64) as usize % BUF_BITS % 64)
                    & 1
                    != 0
            } else {
                false
            };
            f.update(taken, old);
        }
        self.phist = ((self.phist << 1) | ((pc >> 2) & 1) as u32) & 0xffff;
    }

    /// Captures the state for later recovery.
    pub fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot { pos: self.pos, phist: self.phist, n_folds: self.n_folds as u8, folds: self.folds }
    }

    /// Restores a snapshot (the state *before* the mispredicted branch was
    /// inserted), then re-inserts the resolved outcome.
    pub fn recover(&mut self, snap: &HistorySnapshot, resolved_taken: bool, pc: u64) {
        self.pos = snap.pos;
        self.phist = snap.phist;
        self.folds = snap.folds;
        self.insert(resolved_taken, pc);
    }

    /// Restores a snapshot exactly (no re-insert). Used when squashing a
    /// wrong-path branch entirely.
    pub fn restore(&mut self, snap: &HistorySnapshot) {
        self.pos = snap.pos;
        self.phist = snap.phist;
        self.folds = snap.folds;
    }
}

impl Default for GlobalHistory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference fold: xor together hist_len bits in out_bits chunks.
    fn reference_fold(bits: &[bool], hist_len: usize, out_bits: u32) -> u32 {
        let mut v: u32 = 0;
        // bits[0] is oldest; fold so that the most recent bit lands in bit 0
        // of the first chunk, matching the incremental scheme.
        for (age, b) in bits.iter().rev().take(hist_len).enumerate() {
            let pos = age as u32 % out_bits;
            // Incremental scheme effectively xors bit at (age % out_bits)
            // but with chunks laid out from the recent end.
            if *b {
                v ^= 1 << pos;
            }
        }
        v
    }

    #[test]
    fn folded_matches_reference_after_random_stream() {
        let mut gh = GlobalHistory::new();
        let h = gh.add_fold(13, 7);
        let mut bits = Vec::new();
        let mut x: u64 = 0x12345;
        for i in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = x >> 63 != 0;
            bits.push(b);
            gh.insert(b, i);
        }
        assert_eq!(gh.folded(h), reference_fold(&bits, 13, 7));
    }

    #[test]
    fn snapshot_recover_roundtrip() {
        let mut gh = GlobalHistory::new();
        let h = gh.add_fold(20, 9);
        for i in 0..100 {
            gh.insert(i % 3 == 0, i);
        }
        let snap = gh.snapshot();
        let correct_value_after = {
            let mut copy = gh.clone();
            copy.insert(true, 999);
            copy.folded(h)
        };
        // Wrong path: insert garbage, then recover with the actual outcome.
        gh.insert(false, 999);
        for i in 0..50 {
            gh.insert(i % 2 == 0, 5000 + i);
        }
        gh.recover(&snap, true, 999);
        assert_eq!(gh.folded(h), correct_value_after);
    }

    #[test]
    fn restore_is_exact() {
        let mut gh = GlobalHistory::new();
        gh.add_fold(8, 5);
        for i in 0..10 {
            gh.insert(true, i);
        }
        let snap = gh.snapshot();
        gh.insert(false, 11);
        gh.restore(&snap);
        assert_eq!(gh.snapshot(), snap);
    }

    #[test]
    fn recent_reads_latest_bits() {
        let mut gh = GlobalHistory::new();
        gh.insert(true, 0);
        gh.insert(false, 4);
        assert!(!gh.recent(0));
        assert!(gh.recent(1));
        assert!(!gh.recent(2)); // beyond inserted history
    }

    #[test]
    fn path_history_tracks_pc_bits() {
        let mut gh = GlobalHistory::new();
        gh.insert(true, 0b100); // pc bit (pc>>2)&1 = 1
        gh.insert(true, 0b000); // 0
        assert_eq!(gh.path() & 0b11, 0b10);
    }
}
