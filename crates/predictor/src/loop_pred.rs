//! Loop termination predictor (the "L" of ISL-TAGE).
//!
//! Detects branches that behave as loop back-edges with a constant trip
//! count: taken `N-1` times, then not-taken once (or the converse). Once a
//! stable count is confirmed several times, the predictor overrides TAGE
//! with full confidence.
//!
//! The per-entry speculative iteration counter advances at predict time and
//! is restored from the per-branch [`LoopMeta`] on a squash or misprediction.

/// Per-prediction metadata for recovery and training.
#[derive(Debug, Clone, Copy)]
pub struct LoopMeta {
    /// Index of the entry used, if the branch hit in the table.
    entry: Option<usize>,
    /// Speculative iteration count before this prediction.
    spec_iter_before: u32,
    /// The loop predictor's prediction, if confident.
    pub pred: Option<bool>,
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u16,
    /// Confirmed trip count (number of `dir` outcomes before the inverse one).
    trip: u32,
    /// Non-speculative iteration counter (retire time).
    retire_iter: u32,
    /// Speculative iteration counter (predict time).
    spec_iter: u32,
    /// Confidence: number of consecutive confirmations (saturates at 7).
    conf: u8,
    /// Direction of the "body" outcomes (true = taken back-edge).
    dir: bool,
    /// Age for replacement.
    age: u8,
    valid: bool,
}

/// The loop predictor table.
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    index_bits: u32,
}

impl LoopPredictor {
    /// Confidence needed before the predictor overrides TAGE.
    const CONF_THRESHOLD: u8 = 3;

    /// Creates a loop predictor with `2^index_bits` direct-mapped entries.
    pub fn new(index_bits: u32) -> LoopPredictor {
        LoopPredictor { entries: vec![LoopEntry::default(); 1 << index_bits], index_bits }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ (pc >> 12) as usize) & ((1 << self.index_bits) - 1)
    }

    fn tag(pc: u64) -> u16 {
        ((pc >> 2) ^ (pc >> 9) ^ (pc >> 17)) as u16 & 0x3ff
    }

    /// Looks up `pc`, advancing the speculative iteration counter.
    pub fn predict(&mut self, pc: u64) -> LoopMeta {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != Self::tag(pc) {
            return LoopMeta { entry: None, spec_iter_before: 0, pred: None };
        }
        let before = e.spec_iter;
        let pred = if e.conf >= Self::CONF_THRESHOLD && e.trip > 0 {
            // Iterations 0..trip-1 follow `dir`; iteration `trip` inverts.
            Some(if e.spec_iter < e.trip { e.dir } else { !e.dir })
        } else {
            None
        };
        // Advance the speculative counter along the predicted (or assumed)
        // path: wrap after the exit iteration.
        if e.spec_iter >= e.trip {
            e.spec_iter = 0;
        } else {
            e.spec_iter += 1;
        }
        LoopMeta { entry: Some(idx), spec_iter_before: before, pred }
    }

    /// Restores the speculative counter after a squash of this branch.
    pub fn squash(&mut self, meta: &LoopMeta) {
        if let Some(idx) = meta.entry {
            self.entries[idx].spec_iter = meta.spec_iter_before;
        }
    }

    /// Resynchronizes the speculative counter after a misprediction at this
    /// branch resolved with direction `taken`.
    pub fn recover(&mut self, meta: &LoopMeta, taken: bool) {
        if let Some(idx) = meta.entry {
            let e = &mut self.entries[idx];
            // Recompute from the retire-time counter, which trails the
            // resolved branch by the in-flight ones; approximating with the
            // resolved outcome keeps the counter sane.
            e.spec_iter = if taken == e.dir { meta.spec_iter_before.saturating_add(1) } else { 0 };
        }
    }

    /// Trains at retirement. Allocates on a miss when `alloc` is set
    /// (typically on a TAGE misprediction).
    pub fn train(&mut self, pc: u64, taken: bool, meta: &LoopMeta, alloc: bool) {
        let tag = Self::tag(pc);
        match meta.entry {
            Some(idx) => {
                let e = &mut self.entries[idx];
                if !e.valid || e.tag != tag {
                    return;
                }
                if taken == e.dir {
                    e.retire_iter = e.retire_iter.saturating_add(1);
                    if e.trip > 0 && e.retire_iter > e.trip {
                        // Ran past the recorded trip count: not a fixed loop.
                        e.conf = 0;
                        e.trip = 0;
                        e.retire_iter = 0;
                        e.valid = alloc;
                    }
                } else {
                    // Exit observed. An entry allocated on the exit outcome
                    // itself recorded the *inverse* direction (allocation
                    // typically fires on the mispredicted exit): an
                    // immediate "exit" with no body iterations is the
                    // telltale — flip the direction instead of learning a
                    // zero trip count.
                    if e.retire_iter == 0 && e.trip == 0 && e.conf == 0 {
                        e.dir = taken;
                        e.retire_iter = 1;
                        return;
                    }
                    // Confirm or relearn the trip count.
                    if e.trip == e.retire_iter && e.trip > 0 {
                        e.conf = (e.conf + 1).min(7);
                    } else {
                        e.trip = e.retire_iter;
                        e.conf = if e.trip > 0 { 1 } else { 0 };
                    }
                    e.retire_iter = 0;
                    // The speculative counter belongs to the predict-time
                    // stream (it may already be counting the next loop
                    // instance); recovery resynchronizes it on mispredicts,
                    // so do not clobber it here.
                    e.age = e.age.saturating_add(1).min(7);
                }
            }
            None => {
                if !alloc {
                    return;
                }
                let idx = self.index(pc);
                let e = &mut self.entries[idx];
                if e.valid && e.conf >= Self::CONF_THRESHOLD && e.age > 0 {
                    e.age -= 1; // protect confident entries
                    return;
                }
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    retire_iter: u32::from(taken),
                    spec_iter: 0,
                    conf: 0,
                    dir: taken,
                    age: 0,
                    valid: true,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a fixed-trip loop stream: `trip` taken outcomes then one
    /// not-taken, repeated; returns (total, mispredicted-with-override).
    fn run_loop(lp: &mut LoopPredictor, pc: u64, trip: u32, reps: usize) -> (u64, u64, u64) {
        let (mut total, mut overridden, mut wrong) = (0u64, 0u64, 0u64);
        for _ in 0..reps {
            for i in 0..=trip {
                let taken = i < trip;
                let meta = lp.predict(pc);
                if let Some(p) = meta.pred {
                    overridden += 1;
                    if p != taken {
                        wrong += 1;
                        lp.recover(&meta, taken);
                    }
                }
                lp.train(pc, taken, &meta, true);
                total += 1;
            }
        }
        (total, overridden, wrong)
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut lp = LoopPredictor::new(7);
        let (_, _, _) = run_loop(&mut lp, 0x400, 9, 10); // warmup
        let (total, overridden, wrong) = run_loop(&mut lp, 0x400, 9, 50);
        assert!(overridden > total / 2, "override coverage {overridden}/{total}");
        assert_eq!(wrong, 0, "confident overrides must be perfect on a fixed loop");
    }

    #[test]
    fn varying_trip_count_stays_unconfident() {
        let mut lp = LoopPredictor::new(7);
        let mut overridden_wrong = 0u64;
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let trip = (x >> 60) as u32 % 10;
            for i in 0..=trip {
                let taken = i < trip;
                let meta = lp.predict(0x500);
                if let Some(p) = meta.pred {
                    if p != taken {
                        overridden_wrong += 1;
                        lp.recover(&meta, taken);
                    }
                }
                lp.train(0x500, taken, &meta, true);
            }
        }
        // It may occasionally gain confidence then lose it; it must not be
        // systematically wrong.
        assert!(overridden_wrong < 100, "wrong overrides: {overridden_wrong}");
    }

    #[test]
    fn squash_restores_spec_counter() {
        let mut lp = LoopPredictor::new(6);
        // Allocate an entry.
        let meta0 = lp.predict(0x40);
        lp.train(0x40, true, &meta0, true);
        let m1 = lp.predict(0x40);
        let m2 = lp.predict(0x40);
        lp.squash(&m2);
        lp.squash(&m1);
        let m3 = lp.predict(0x40);
        assert_eq!(m3.spec_iter_before, m1.spec_iter_before);
    }

    #[test]
    fn no_alloc_without_flag() {
        let mut lp = LoopPredictor::new(6);
        let meta = lp.predict(0x80);
        lp.train(0x80, true, &meta, false);
        let meta2 = lp.predict(0x80);
        assert!(meta2.entry.is_none());
    }
}
