//! ISL-TAGE-lite: TAGE + loop predictor + use-alt-on-newly-allocated.
//!
//! This is our stand-in for the CBP3-winning 64 KB ISL-TAGE the paper uses
//! (Seznec 2011). It combines:
//!
//! * the [`Tage`] predictor (geometric history lengths, u-bit aging), which
//!   internally implements the *Statistical-corrector-flavored* UAONA
//!   heuristic,
//! * the [`LoopPredictor`] ("L"), which overrides TAGE on branches with
//!   stable trip counts once confident.
//!
//! The combination reproduces the qualitative property the paper relies on:
//! state-of-the-art accuracy on correlated branches, while data-dependent
//! branches (the CFD targets) remain hard.

use crate::corrector::{CorrectorMeta, StatisticalCorrector};
use crate::loop_pred::{LoopMeta, LoopPredictor};
use crate::tage::{Tage, TageConfig, TageMeta};

/// Per-prediction metadata for [`IslTage`].
#[derive(Debug, Clone)]
pub struct IslTageMeta {
    tage: TageMeta,
    loop_meta: LoopMeta,
    corrector: CorrectorMeta,
    /// Final prediction (after corrector and loop-predictor overrides).
    pub pred: bool,
    /// Whether the loop predictor supplied the prediction.
    pub from_loop: bool,
}

/// The combined predictor.
#[derive(Debug, Clone)]
pub struct IslTage {
    tage: Tage,
    loop_pred: LoopPredictor,
    corrector: StatisticalCorrector,
}

impl IslTage {
    /// Creates the predictor with the default (~64 KB-class) configuration.
    pub fn new() -> IslTage {
        IslTage::with_config(TageConfig::default(), 7)
    }

    /// Creates the predictor with an explicit TAGE configuration and
    /// `2^loop_bits` loop-predictor entries.
    pub fn with_config(cfg: TageConfig, loop_bits: u32) -> IslTage {
        IslTage {
            tage: Tage::new(cfg),
            loop_pred: LoopPredictor::new(loop_bits),
            corrector: StatisticalCorrector::new(12),
        }
    }

    /// Predicts the branch at `pc`, speculatively updating internal history.
    pub fn predict(&mut self, pc: u64) -> (bool, IslTageMeta) {
        let loop_meta = self.loop_pred.predict(pc);
        let (tage_pred, tage_meta) = self.tage.predict(pc);
        // The statistical corrector may invert unconfident TAGE output.
        let (sc_pred, corrector) = self.corrector.filter(pc, tage_pred, tage_meta.provider_confident());
        // Priority: loop predictor (when confident) > corrector > TAGE.
        let (pred, from_loop) = match loop_meta.pred {
            Some(p) => (p, true),
            None => (sc_pred, false),
        };
        if pred != tage_pred {
            // The speculative history must reflect the *final* prediction.
            self.tage.recover(&tage_meta, pred, pc);
        }
        (pred, IslTageMeta { tage: tage_meta, loop_meta, corrector, pred, from_loop })
    }

    /// Repairs speculative state after this branch mispredicted and
    /// resolved with direction `taken`.
    pub fn recover(&mut self, pc: u64, taken: bool, meta: &IslTageMeta) {
        self.tage.recover(&meta.tage, taken, pc);
        self.loop_pred.recover(&meta.loop_meta, taken);
    }

    /// Discards this branch's speculative state (wrong-path squash).
    pub fn squash(&mut self, meta: &IslTageMeta) {
        self.tage.squash(&meta.tage);
        self.loop_pred.squash(&meta.loop_meta);
    }

    /// Trains both components at retirement.
    pub fn train(&mut self, pc: u64, taken: bool, meta: &IslTageMeta) {
        self.tage.train(pc, taken, &meta.tage);
        self.corrector.train(taken, &meta.corrector);
        let tage_was_wrong = meta.tage.pred != taken;
        self.loop_pred.train(pc, taken, &meta.loop_meta, tage_was_wrong);
    }

    /// Total table storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.tage.storage_bytes() + (1 << 7) * 8 + (1 << 12)
    }
}

impl Default for IslTage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe(p: &mut IslTage, pc: u64, taken: bool) -> bool {
        let (pred, meta) = p.predict(pc);
        if pred != taken {
            p.recover(pc, taken, &meta);
        }
        p.train(pc, taken, &meta);
        pred != taken
    }

    #[test]
    fn loop_override_beats_tage_on_long_fixed_loops() {
        // A 33-iteration loop: TAGE's short tables struggle, the loop
        // predictor nails it after warmup.
        let mut p = IslTage::new();
        let mut warm = 0u64;
        for _ in 0..50 {
            for i in 0..=33 {
                warm += observe(&mut p, 0x1000, i < 33) as u64;
            }
        }
        let mut miss = 0u64;
        let mut total = 0u64;
        for _ in 0..100 {
            for i in 0..=33 {
                miss += observe(&mut p, 0x1000, i < 33) as u64;
                total += 1;
            }
        }
        assert!(miss * 100 < total, "steady-state miss {miss}/{total} (warmup {warm})");
    }

    #[test]
    fn random_branches_stay_hard() {
        // The CFD premise: data-dependent branches defeat even ISL-TAGE.
        let mut p = IslTage::new();
        let mut x = 42u64;
        let mut miss = 0u64;
        let n = 20_000;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            miss += observe(&mut p, 0x2000, (x >> 62) == 0) as u64; // ~25% taken
        }
        let rate = miss as f64 / n as f64;
        assert!(rate > 0.15, "a random 25%-biased stream must stay hard, rate={rate}");
        assert!(rate < 0.40, "but not worse than the bias, rate={rate}");
    }

    #[test]
    fn correlated_branches_are_easy() {
        // Branch B repeats branch A's outcome: global history captures it.
        let mut p = IslTage::new();
        let mut x = 17u64;
        let mut miss_b = 0u64;
        let n = 30_000;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
            let a = (x >> 63) != 0;
            observe(&mut p, 0x3000, a);
            miss_b += observe(&mut p, 0x3010, a) as u64;
        }
        let rate = miss_b as f64 / n as f64;
        assert!(rate < 0.08, "correlated branch should be easy, rate={rate}");
    }

    #[test]
    fn squash_then_repredict_consistent() {
        let mut p = IslTage::new();
        for i in 0..50 {
            observe(&mut p, 0x40, i % 2 == 0);
        }
        let (pred1, meta1) = p.predict(0x99);
        p.squash(&meta1);
        let (pred2, meta2) = p.predict(0x99);
        p.squash(&meta2);
        assert_eq!(pred1, pred2);
    }
}
