//! # cfd-energy — event-based energy accounting
//!
//! A McPAT/CACTI substitute: the timing core counts microarchitectural
//! events ([`EventCounts`]) — including wrong-path activity, which is the
//! point of the paper's energy argument — and an [`EnergyModel`] turns them
//! into picojoules with CACTI-flavored per-access constants, plus a static
//! (leakage + clock) term per cycle.
//!
//! The paper augments McPAT with accounting for the BQ, VQ renamer, and TQ
//! (§VI); we do the same: those structures have their own counters and
//! per-access energies (tiny, since a BQ entry is a handful of bits — see
//! paper Fig. 17b).
//!
//! Absolute joules are not meaningful here; *relative* energy between
//! schemes on the same model is, and that is what the paper's figures show.
//!
//! # Example
//!
//! ```
//! use cfd_energy::{EnergyModel, EventCounts};
//! let model = EnergyModel::default();
//! let mut base = EventCounts::default();
//! base.cycles = 1000;
//! base.l1d_accesses = 400;
//! let mut better = base.clone();
//! better.cycles = 800; // fewer cycles -> less static energy
//! assert!(model.total_pj(&better) < model.total_pj(&base));
//! ```

use std::fmt;

pub mod fixed;

pub use fixed::{edp_uj_cycles, fixed, fixed_scaled};

/// Microarchitectural event counters accumulated by the timing core.
///
/// All counters include wrong-path activity unless stated otherwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Total cycles simulated (drives static energy).
    pub cycles: u64,
    /// Instructions fetched (L1I reads are folded into this).
    pub fetched: u64,
    /// Instructions decoded.
    pub decoded: u64,
    /// Instructions renamed (RMT reads/writes + freelist).
    pub renamed: u64,
    /// Issue-queue writes (dispatch).
    pub iq_writes: u64,
    /// Issue-queue wakeup/select events (issue).
    pub iq_wakeups: u64,
    /// Register file reads.
    pub regfile_reads: u64,
    /// Register file writes.
    pub regfile_writes: u64,
    /// Simple ALU executions.
    pub alu_simple: u64,
    /// Complex ALU (mul/div) executions.
    pub alu_complex: u64,
    /// Load/store queue operations.
    pub lsq_ops: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Conditional branch predictor lookups + updates.
    pub bpred_ops: u64,
    /// BTB lookups + fills.
    pub btb_ops: u64,
    /// ROB writes + retire reads.
    pub rob_ops: u64,
    /// Checkpoints taken or restored.
    pub checkpoint_ops: u64,
    /// Branch Queue reads/writes (CFD).
    pub bq_ops: u64,
    /// VQ renamer reads/writes (CFD+).
    pub vq_ops: u64,
    /// Trip-count Queue + TCR reads/writes (CFD-TQ).
    pub tq_ops: u64,
}

impl EventCounts {
    /// Element-wise sum of two counter sets.
    pub fn add(&self, other: &EventCounts) -> EventCounts {
        EventCounts {
            cycles: self.cycles + other.cycles,
            fetched: self.fetched + other.fetched,
            decoded: self.decoded + other.decoded,
            renamed: self.renamed + other.renamed,
            iq_writes: self.iq_writes + other.iq_writes,
            iq_wakeups: self.iq_wakeups + other.iq_wakeups,
            regfile_reads: self.regfile_reads + other.regfile_reads,
            regfile_writes: self.regfile_writes + other.regfile_writes,
            alu_simple: self.alu_simple + other.alu_simple,
            alu_complex: self.alu_complex + other.alu_complex,
            lsq_ops: self.lsq_ops + other.lsq_ops,
            l1d_accesses: self.l1d_accesses + other.l1d_accesses,
            l2_accesses: self.l2_accesses + other.l2_accesses,
            l3_accesses: self.l3_accesses + other.l3_accesses,
            dram_accesses: self.dram_accesses + other.dram_accesses,
            bpred_ops: self.bpred_ops + other.bpred_ops,
            btb_ops: self.btb_ops + other.btb_ops,
            rob_ops: self.rob_ops + other.rob_ops,
            checkpoint_ops: self.checkpoint_ops + other.checkpoint_ops,
            bq_ops: self.bq_ops + other.bq_ops,
            vq_ops: self.vq_ops + other.vq_ops,
            tq_ops: self.tq_ops + other.tq_ops,
        }
    }
}

/// Per-event energies in picojoules (CACTI-flavored relative ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// I-fetch energy per instruction (L1I read amortized).
    pub fetch_pj: f64,
    /// Decode energy per instruction.
    pub decode_pj: f64,
    /// Rename energy per instruction.
    pub rename_pj: f64,
    /// Issue-queue write.
    pub iq_write_pj: f64,
    /// Issue-queue wakeup/select.
    pub iq_wakeup_pj: f64,
    /// Register file read port access.
    pub regread_pj: f64,
    /// Register file write port access.
    pub regwrite_pj: f64,
    /// Simple ALU op.
    pub alu_pj: f64,
    /// Complex ALU op.
    pub complex_alu_pj: f64,
    /// LSQ search/insert.
    pub lsq_pj: f64,
    /// L1D access.
    pub l1d_pj: f64,
    /// L2 access.
    pub l2_pj: f64,
    /// L3 access.
    pub l3_pj: f64,
    /// DRAM access.
    pub dram_pj: f64,
    /// Branch predictor access (64 KB ISL-TAGE-class).
    pub bpred_pj: f64,
    /// BTB access.
    pub btb_pj: f64,
    /// ROB access.
    pub rob_pj: f64,
    /// Checkpoint take/restore.
    pub checkpoint_pj: f64,
    /// BQ access (a 128 x 5-bit tagless RAM — paper Fig. 17b scale).
    pub bq_pj: f64,
    /// VQ renamer access (128 x 8-bit mapping RAM).
    pub vq_pj: f64,
    /// TQ/TCR access (256 x 17-bit tagless RAM).
    pub tq_pj: f64,
    /// Static (leakage + clock tree) energy per cycle.
    pub static_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            fetch_pj: 28.0,
            decode_pj: 6.0,
            rename_pj: 9.0,
            iq_write_pj: 8.0,
            iq_wakeup_pj: 12.0,
            regread_pj: 4.5,
            regwrite_pj: 6.5,
            alu_pj: 10.0,
            complex_alu_pj: 38.0,
            lsq_pj: 11.0,
            l1d_pj: 30.0,
            l2_pj: 85.0,
            l3_pj: 260.0,
            dram_pj: 2400.0,
            bpred_pj: 14.0,
            btb_pj: 8.0,
            rob_pj: 5.0,
            checkpoint_pj: 45.0,
            bq_pj: 0.7,
            vq_pj: 2.2,
            tq_pj: 1.4,
            static_pj_per_cycle: 110.0,
        }
    }
}

/// An itemized energy total.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// (component name, picojoules), in model order.
    pub components: Vec<(&'static str, f64)>,
    /// Sum of all components.
    pub total_pj: f64,
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // All floats route through the fixed-precision formatter so the
        // rendering stays byte-exact across hosts (fixture contract).
        writeln!(f, "total: {} nJ", fixed(self.total_pj / 1000.0, 1))?;
        for (name, pj) in &self.components {
            if *pj > 0.0 {
                writeln!(
                    f,
                    "  {name:12} {:>10} nJ ({:>4}%)",
                    fixed(pj / 1000.0, 1),
                    fixed(100.0 * pj / self.total_pj, 1)
                )?;
            }
        }
        Ok(())
    }
}

impl EnergyModel {
    /// Itemized energy for a set of event counts.
    pub fn breakdown(&self, c: &EventCounts) -> EnergyBreakdown {
        let components: Vec<(&'static str, f64)> = vec![
            ("fetch", c.fetched as f64 * self.fetch_pj),
            ("decode", c.decoded as f64 * self.decode_pj),
            ("rename", c.renamed as f64 * self.rename_pj),
            ("iq", c.iq_writes as f64 * self.iq_write_pj + c.iq_wakeups as f64 * self.iq_wakeup_pj),
            ("regfile", c.regfile_reads as f64 * self.regread_pj + c.regfile_writes as f64 * self.regwrite_pj),
            ("alu", c.alu_simple as f64 * self.alu_pj + c.alu_complex as f64 * self.complex_alu_pj),
            ("lsq", c.lsq_ops as f64 * self.lsq_pj),
            ("l1d", c.l1d_accesses as f64 * self.l1d_pj),
            ("l2", c.l2_accesses as f64 * self.l2_pj),
            ("l3", c.l3_accesses as f64 * self.l3_pj),
            ("dram", c.dram_accesses as f64 * self.dram_pj),
            ("bpred", c.bpred_ops as f64 * self.bpred_pj),
            ("btb", c.btb_ops as f64 * self.btb_pj),
            ("rob", c.rob_ops as f64 * self.rob_pj),
            ("checkpoint", c.checkpoint_ops as f64 * self.checkpoint_pj),
            ("bq", c.bq_ops as f64 * self.bq_pj),
            ("vq-renamer", c.vq_ops as f64 * self.vq_pj),
            ("tq", c.tq_ops as f64 * self.tq_pj),
            ("static", c.cycles as f64 * self.static_pj_per_cycle),
        ];
        let total_pj = components.iter().map(|(_, v)| v).sum();
        EnergyBreakdown { components, total_pj }
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self, c: &EventCounts) -> f64 {
        self.breakdown(c).total_pj
    }
}

/// Storage overhead of the CFD structures, as in paper Fig. 17b.
///
/// Returns `(bq_bytes, vq_renamer_bytes, tq_bytes)` for the given sizes.
///
/// Each BQ entry: predicate + pushed + popped bits + checkpoint id (4 bits
/// at 8 checkpoints) ≈ 7 bits with head/tail/mark pointers amortized. Each
/// VQ renamer entry: a physical register mapping (8 bits at a 256-entry
/// PRF). Each TQ entry: a 16-bit trip count + pushed + overflow bits.
pub fn cfd_storage_bytes(bq_size: usize, vq_size: usize, tq_size: usize) -> (usize, usize, usize) {
    let bq_bits = bq_size * 7 + 3 * 8; // entries + head/tail/mark pointers
    let vq_bits = vq_size * 8 + 2 * 8;
    let tq_bits = tq_size * 18 + 2 * 8 + 16; // entries + pointers + TCR
    (bq_bits.div_ceil(8), vq_bits.div_ceil(8), tq_bits.div_ceil(8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_events_zero_dynamic_energy() {
        let m = EnergyModel::default();
        let c = EventCounts::default();
        assert_eq!(m.total_pj(&c), 0.0);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let m = EnergyModel::default();
        let a = EventCounts { cycles: 100, ..Default::default() };
        let b = EventCounts { cycles: 200, ..Default::default() };
        assert!((m.total_pj(&b) - 2.0 * m.total_pj(&a)).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::default();
        let c = EventCounts {
            cycles: 1000,
            fetched: 4000,
            l1d_accesses: 900,
            dram_accesses: 3,
            bq_ops: 120,
            ..Default::default()
        };
        let b = m.breakdown(&c);
        let sum: f64 = b.components.iter().map(|(_, v)| v).sum();
        assert!((sum - b.total_pj).abs() < 1e-9);
    }

    #[test]
    fn dram_dominates_same_count() {
        let m = EnergyModel::default();
        assert!(m.dram_pj > m.l3_pj && m.l3_pj > m.l2_pj && m.l2_pj > m.l1d_pj);
        assert!(m.bq_pj < m.btb_pj, "the BQ must be far cheaper than even the BTB");
    }

    #[test]
    fn counts_add_elementwise() {
        let a = EventCounts { fetched: 10, bq_ops: 2, ..Default::default() };
        let b = EventCounts { fetched: 5, tq_ops: 7, ..Default::default() };
        let c = a.add(&b);
        assert_eq!(c.fetched, 15);
        assert_eq!(c.bq_ops, 2);
        assert_eq!(c.tq_ops, 7);
    }

    #[test]
    fn storage_matches_paper_scale() {
        // Paper Fig. 17b reports on the order of 100 B for the BQ and ~600 B
        // for the TQ at 128/128/256 entries.
        let (bq, vq, tq) = cfd_storage_bytes(128, 128, 256);
        assert!((80..=150).contains(&bq), "bq={bq}");
        assert!((100..=200).contains(&vq), "vq={vq}");
        assert!((500..=700).contains(&tq), "tq={tq}");
    }

    #[test]
    fn display_breakdown_mentions_total() {
        let m = EnergyModel::default();
        let c = EventCounts { cycles: 10, ..Default::default() };
        let s = m.breakdown(&c).to_string();
        assert!(s.contains("total:"));
        assert!(s.contains("static"));
    }
}
