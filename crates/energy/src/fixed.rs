//! One fixed-precision decimal formatter for every `f64` the repo puts
//! in a comparable table.
//!
//! The experiment fixtures are gated with `cmp`: a table regenerated on
//! any host must reproduce the checked-in bytes exactly. Integer counters
//! are trivially stable, but derived rates (IPC, MPKI) and energies (nJ,
//! EDP) are `f64`s, and every call site inventing its own `{:.N}` format
//! is a fixture hazard — one site printing `-0.0`, `NaN`, or a different
//! precision breaks byte-equality in ways that only show up later.
//!
//! This module is the single funnel: [`fixed`] renders an `f64` with a
//! fixed number of decimals (normalizing negative zero and guarding
//! non-finite values), and [`fixed_scaled`] returns the *same rounding*
//! as an exact scaled integer, which is what deterministic comparisons
//! (e.g. Pareto dominance over rendered metrics) should use. The two are
//! consistent by construction: `fixed_scaled` is derived from the digits
//! `fixed` prints, so a table and the decisions made over it can never
//! disagree.
//!
//! `f64` arithmetic on identical inputs is bit-exact across conforming
//! platforms (IEEE 754 basic ops), and Rust's `{:.N}` formatting of a
//! given bit pattern is deterministic, so routing every table through
//! here makes the whole rendering pipeline byte-stable.

/// Renders `v` with exactly `decimals` digits after the point.
///
/// Differences from a bare `format!("{:.N}", v)`:
///
/// * negative zero renders as positive zero (`-0.000` → `0.000`), so a
///   tiny negative rounding residue cannot flip a fixture byte;
/// * non-finite values render as `nan` / `inf` / `-inf` (stable spellings
///   rather than platform-typed debug output).
pub fn fixed(v: f64, decimals: usize) -> String {
    if v.is_nan() {
        return "nan".to_string();
    }
    if v.is_infinite() {
        return if v < 0.0 { "-inf".to_string() } else { "inf".to_string() };
    }
    let s = format!("{v:.decimals$}");
    // `{:.N}` rounds before printing, so a negative value can surface as
    // "-0.000"; normalize it to the positive spelling.
    if let Some(rest) = s.strip_prefix('-') {
        if rest.chars().all(|c| c == '0' || c == '.') {
            return rest.to_string();
        }
    }
    s
}

/// The value [`fixed`] would print, as an exact scaled integer
/// (`round(v * 10^decimals)` under the same rounding `fixed` uses).
///
/// Use this for deterministic *comparisons* of rendered quantities: two
/// values that print identically compare equal, and ordering decisions
/// (sorts, Pareto dominance) made on the scaled integers can never
/// contradict the table the reader sees. Non-finite inputs map to `None`.
pub fn fixed_scaled(v: f64, decimals: usize) -> Option<i128> {
    if !v.is_finite() {
        return None;
    }
    let s = fixed(v, decimals);
    let neg = s.starts_with('-');
    let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
    let mag: i128 = digits.parse().ok()?;
    Some(if neg { -mag } else { mag })
}

/// Energy-delay product in µJ·cycles: `total_pj * cycles / 1e6`.
///
/// The paper's energy argument is relative, and so is EDP here: the unit
/// is chosen so kernel-scale sweeps land in a readable range (tens to
/// thousands) at three decimals.
pub fn edp_uj_cycles(total_pj: f64, cycles: u64) -> f64 {
    total_pj * cycles as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_std_formatting_for_ordinary_values() {
        for (v, d, want) in
            [(1.2345, 3, "1.234"), (1.2345, 1, "1.2"), (0.0, 2, "0.00"), (1234.5, 0, "1234"), (-2.5, 1, "-2.5")]
        {
            assert_eq!(fixed(v, d), want);
            assert_eq!(fixed(v, d), format!("{v:.d$}"));
        }
    }

    #[test]
    fn negative_zero_is_normalized() {
        assert_eq!(fixed(-0.0, 3), "0.000");
        assert_eq!(fixed(-1e-9, 3), "0.000");
        assert_eq!(fixed(-0.0004, 3), "0.000");
        // A genuinely negative value keeps its sign.
        assert_eq!(fixed(-0.0006, 3), "-0.001");
    }

    #[test]
    fn non_finite_values_are_stable_words() {
        assert_eq!(fixed(f64::NAN, 2), "nan");
        assert_eq!(fixed(f64::INFINITY, 2), "inf");
        assert_eq!(fixed(f64::NEG_INFINITY, 2), "-inf");
    }

    #[test]
    fn scaled_agrees_with_rendering() {
        for v in [0.0, 0.1234, 1.9999, 12345.678, -3.25, -0.0004, 2.5e8] {
            for d in 0..=4usize {
                let rendered = fixed(v, d);
                let scaled = fixed_scaled(v, d).unwrap();
                // Re-render the scaled integer and compare: the pair must
                // be two views of one quantity.
                let sign = if scaled < 0 { "-" } else { "" };
                let mag = scaled.unsigned_abs();
                let rebuilt = if d == 0 {
                    format!("{sign}{mag}")
                } else {
                    format!("{sign}{}.{:0d$}", mag / 10u128.pow(d as u32), mag % 10u128.pow(d as u32))
                };
                assert_eq!(rendered, rebuilt, "v={v} d={d}");
            }
        }
        assert_eq!(fixed_scaled(f64::NAN, 2), None);
    }

    #[test]
    fn edp_unit_is_microjoule_cycles() {
        // 1e6 pJ (1 µJ) over 1000 cycles = 1000 µJ·cycles.
        assert_eq!(edp_uj_cycles(1e6, 1000), 1000.0);
        assert_eq!(edp_uj_cycles(0.0, 5), 0.0);
    }
}
