//! # cfd-profile — branch profiling and misprediction characterization
//!
//! The paper's §II methodology: run every benchmark to completion under a
//! PIN tool that feeds each conditional branch to a state-of-the-art
//! predictor and records per-static-branch misprediction statistics, then
//! classify the hard branches' control-dependent regions. This crate is
//! that tool for `cfd-isa` programs:
//!
//! * [`profile`] — replay a workload's retirement stream through any
//!   `cfd-predictor` predictor (immediate update, like the pintool),
//! * [`ProfileReport`] — per-branch and aggregate MPKI,
//! * [`classified_mpki`] — joins the profile with `cfd-analysis`'s static
//!   classification to produce the paper's Fig. 6c class breakdown.
//!
//! # Example
//!
//! ```
//! use cfd_profile::profile;
//! use cfd_workloads::{by_name, Scale, Variant};
//!
//! let w = by_name("soplex_ref_like").unwrap().build(Variant::Base, Scale { n: 500, seed: 1 });
//! let rep = profile(&w, "isl-tage", 10_000_000).unwrap();
//! assert!(rep.mpki() > 10.0, "a hard separable branch dominates");
//! ```

use cfd_analysis::{classify_program, BranchClass, ClassifyConfig};
use cfd_isa::{Instr, Machine, RetireEvent, SimError, TraceSink};
use cfd_predictor::{predictor_by_name, DirectionPredictor};
use cfd_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;

/// Per-static-branch profile counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchProfile {
    /// Dynamic executions.
    pub executed: u64,
    /// Taken outcomes.
    pub taken: u64,
    /// Mispredictions under the profiled predictor.
    pub mispredicted: u64,
}

impl BranchProfile {
    /// Misprediction rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.executed as f64
        }
    }
}

/// A completed profile of one workload run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Workload name.
    pub name: &'static str,
    /// Predictor used.
    pub predictor: &'static str,
    /// Total retired instructions.
    pub instructions: u64,
    /// Total conditional branches.
    pub branches: u64,
    /// Total mispredictions.
    pub mispredictions: u64,
    /// Per-PC counters (plain conditional branches only).
    pub per_branch: BTreeMap<u32, BranchProfile>,
}

impl ProfileReport {
    /// Mispredictions per 1000 instructions — the paper's headline metric.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.mispredictions as f64 / self.instructions as f64
        }
    }

    /// Overall misprediction rate over conditional branches.
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// The top contributors, sorted by misprediction count, descending.
    pub fn top_branches(&self, k: usize) -> Vec<(u32, &BranchProfile)> {
        let mut v: Vec<(u32, &BranchProfile)> = self.per_branch.iter().map(|(pc, b)| (*pc, b)).collect();
        v.sort_by_key(|(_, b)| std::cmp::Reverse(b.mispredicted));
        v.truncate(k);
        v
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} instrs, {} branches, {} mispredicts, MPKI {:.2} ({}):",
            self.name,
            self.instructions,
            self.branches,
            self.mispredictions,
            self.mpki(),
            self.predictor
        )?;
        for (pc, b) in self.top_branches(5) {
            writeln!(f, "  pc {pc:5}  exec {:9}  miss {:8}  rate {:.3}", b.executed, b.mispredicted, b.miss_rate())?;
        }
        Ok(())
    }
}

struct ProfileSink<'a> {
    predictor: &'a mut dyn DirectionPredictor,
    report: &'a mut ProfileReport,
}

impl TraceSink for ProfileSink<'_> {
    fn retire(&mut self, ev: &RetireEvent) {
        if let (Instr::Branch { .. }, Some(taken)) = (&ev.instr, ev.taken) {
            let miss = self.predictor.observe(ev.pc as u64 * 4, taken);
            self.report.branches += 1;
            let b = self.report.per_branch.entry(ev.pc).or_default();
            b.executed += 1;
            b.taken += taken as u64;
            if miss {
                b.mispredicted += 1;
                self.report.mispredictions += 1;
            }
        }
    }
}

/// Profiles a workload under the named predictor, running it functionally
/// to completion (bounded by `instruction_limit`).
///
/// # Errors
///
/// Returns [`SimError`] if the workload misbehaves or exceeds the limit.
///
/// # Panics
///
/// Panics on an unknown predictor name.
pub fn profile(workload: &Workload, predictor_name: &str, instruction_limit: u64) -> Result<ProfileReport, SimError> {
    let mut predictor =
        predictor_by_name(predictor_name).unwrap_or_else(|| panic!("unknown predictor `{predictor_name}`"));
    let mut report = ProfileReport {
        name: workload.name,
        predictor: predictor.name(),
        instructions: 0,
        branches: 0,
        mispredictions: 0,
        per_branch: BTreeMap::new(),
    };
    let mut machine = Machine::new(workload.program.clone(), workload.mem.clone());
    {
        let mut sink = ProfileSink { predictor: predictor.as_mut(), report: &mut report };
        let stats = machine.run(instruction_limit, &mut sink)?;
        report.instructions = stats.retired;
    }
    Ok(report)
}

/// MPKI attributed to each control-flow class (the paper's Fig. 6c): joins
/// the dynamic profile with the static classifier. Branch classes come
/// from `cfd-analysis`; PCs the classifier cannot place fall into
/// `NotAnalyzed`.
pub fn classified_mpki(workload: &Workload, report: &ProfileReport) -> BTreeMap<BranchClass, f64> {
    let classes: BTreeMap<u32, BranchClass> = classify_program(&workload.program, None, ClassifyConfig::default())
        .into_iter()
        .map(|r| (r.pc, r.class))
        .collect();
    let mut out: BTreeMap<BranchClass, f64> = BTreeMap::new();
    if report.instructions == 0 {
        return out;
    }
    for (pc, b) in &report.per_branch {
        let class = classes.get(pc).copied().unwrap_or(BranchClass::NotAnalyzed);
        *out.entry(class).or_insert(0.0) += 1000.0 * b.mispredicted as f64 / report.instructions as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_workloads::{by_name, Scale, Variant};

    fn small(name: &str) -> Workload {
        by_name(name).unwrap().build(Variant::Base, Scale { n: 1_000, seed: 13 })
    }

    #[test]
    fn hard_branch_dominates_soplex_profile() {
        let w = small("soplex_ref_like");
        let rep = profile(&w, "isl-tage", 50_000_000).unwrap();
        let (top_pc, top) = rep.top_branches(1)[0];
        assert_eq!(top_pc, w.interest[0].pc, "the annotated branch is the top contributor");
        assert!(top.miss_rate() > 0.2, "rate {}", top.miss_rate());
    }

    #[test]
    fn loop_branches_are_easy() {
        let w = small("hammock_like");
        let rep = profile(&w, "isl-tage", 50_000_000).unwrap();
        // The hammock branch is hard; the loop back-edge is easy.
        let hammock_pc = w.interest[0].pc;
        for (pc, b) in &rep.per_branch {
            if *pc != hammock_pc {
                assert!(b.miss_rate() < 0.05, "loop branch at {pc} should be easy: {}", b.miss_rate());
            }
        }
    }

    #[test]
    fn classified_mpki_places_separable_class() {
        let w = small("soplex_ref_like");
        let rep = profile(&w, "isl-tage", 50_000_000).unwrap();
        let classes = classified_mpki(&w, &rep);
        let separable = classes.get(&BranchClass::SeparableTotal).copied().unwrap_or(0.0);
        let total: f64 = classes.values().sum();
        assert!(separable > 0.5 * total, "separable dominates: {classes:?}");
    }

    #[test]
    fn weaker_predictors_miss_more() {
        let w = small("gromacs_like");
        let tage = profile(&w, "isl-tage", 50_000_000).unwrap();
        let bimodal = profile(&w, "bimodal", 50_000_000).unwrap();
        assert!(bimodal.mispredictions >= tage.mispredictions);
    }

    #[test]
    fn display_formats() {
        let w = small("gromacs_like");
        let rep = profile(&w, "bimodal", 50_000_000).unwrap();
        let s = rep.to_string();
        assert!(s.contains("MPKI"));
    }
}
