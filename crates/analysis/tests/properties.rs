//! Property-based tests for the static analyses: random structured
//! programs must satisfy the textbook dominance/control-dependence laws.

use cfd_analysis::{backward_slice, classify_program, find_loops, Cfg, ClassifyConfig, DomTree};
use cfd_isa::{Assembler, Program, Reg};
use proptest::prelude::*;

/// Generates a random structured program: a chain of `segments`, each either
/// straight-line code, an if (optionally with else), or a counted loop whose
/// body is straight-line with an optional guarded region.
#[derive(Debug, Clone)]
enum Segment {
    Straight(u8),
    IfThen { then_len: u8, with_else: bool },
    Loop { body_len: u8, guarded: Option<u8> },
}

fn segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (1u8..6).prop_map(Segment::Straight),
        ((1u8..5), any::<bool>()).prop_map(|(t, e)| Segment::IfThen { then_len: t, with_else: e }),
        ((1u8..4), proptest::option::of(1u8..8)).prop_map(|(b, g)| Segment::Loop { body_len: b, guarded: g }),
    ]
}

fn build(segments: &[Segment]) -> Program {
    let r = Reg::new;
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    for (k, seg) in segments.iter().enumerate() {
        match seg {
            Segment::Straight(len) => {
                for j in 0..*len {
                    a.addi(r(4 + (j as usize % 4)), r(4 + (j as usize % 4)), 1);
                }
            }
            Segment::IfThen { then_len, with_else } => {
                let (els, join) = (format!("else{k}"), format!("join{k}"));
                a.xor(p, r(4), 1i64);
                a.and(p, p, 1i64);
                a.beqz(p, if *with_else { &els } else { &join });
                for _ in 0..*then_len {
                    a.addi(r(5), r(5), 1);
                }
                if *with_else {
                    a.j(&join);
                    a.label(&els);
                    a.addi(r(6), r(6), 2);
                }
                a.label(&join);
            }
            Segment::Loop { body_len, guarded } => {
                let (top, skip) = (format!("top{k}"), format!("skip{k}"));
                a.li(i, 0);
                a.li(n, 5);
                a.label(&top);
                for _ in 0..*body_len {
                    a.addi(r(7), r(7), 3);
                }
                if let Some(g) = guarded {
                    a.and(p, r(7), 1i64);
                    a.beqz(p, &skip);
                    for _ in 0..*g {
                        a.addi(r(8), r(8), 1);
                    }
                    a.label(&skip);
                }
                a.addi(i, i, 1);
                a.blt(i, n, &top);
            }
        }
    }
    a.halt();
    a.finish().expect("generated program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dominance_laws_hold(segments in proptest::collection::vec(segment(), 1..8)) {
        let program = build(&segments);
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let pdom = DomTree::post_dominators(&cfg);
        for b in 0..cfg.len() {
            // Entry dominates everything; exit post-dominates everything.
            prop_assert!(dom.dominates(cfg.entry(), b));
            prop_assert!(pdom.dominates(cfg.exit(), b));
            // Reflexivity.
            prop_assert!(dom.dominates(b, b));
            // idom is a strict dominator (except at the root).
            if b != cfg.entry() {
                let id = dom.idom(b);
                prop_assert!(dom.dominates(id, b));
                prop_assert!(id == b || dom.strictly_dominates(id, b));
            }
            // Antisymmetry.
            for c in 0..cfg.len() {
                if b != c {
                    prop_assert!(
                        !(dom.strictly_dominates(b, c) && dom.strictly_dominates(c, b)),
                        "mutual strict dominance {b} <-> {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn loops_have_dominating_headers(segments in proptest::collection::vec(segment(), 1..8)) {
        let program = build(&segments);
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        for lp in find_loops(&cfg, &dom) {
            prop_assert!(lp.contains(lp.header));
            for &b in &lp.blocks {
                prop_assert!(dom.dominates(lp.header, b), "header must dominate the body");
            }
            for &latch in &lp.latches {
                prop_assert!(lp.contains(latch));
                prop_assert!(cfg.blocks[latch].succs.contains(&lp.header), "latch closes the loop");
            }
        }
    }

    #[test]
    fn classification_is_total_and_slices_are_in_loops(
        segments in proptest::collection::vec(segment(), 1..8)
    ) {
        let program = build(&segments);
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        let reports = classify_program(&program, Some(&cfg), ClassifyConfig::default());
        // Every plain conditional branch gets exactly one report.
        let branch_count =
            program.instrs().iter().filter(|x| x.is_plain_conditional()).count();
        prop_assert_eq!(reports.len(), branch_count);
        // Slices stay within their loop.
        for rep in &reports {
            let block = cfg.block_of(rep.pc);
            if let Some(lp) = loops.iter().find(|l| l.contains(block)) {
                let slice = backward_slice(&program, &cfg, lp, rep.pc);
                for pc in &slice.pcs {
                    prop_assert!(lp.contains(cfg.block_of(*pc)), "slice escaped its loop");
                }
            }
        }
    }
}
