//! Property-based tests for the static analyses: random structured
//! programs must satisfy the textbook dominance/control-dependence laws.
//! Cases come from the in-repo seeded harness (`cfd_isa::prop_check`).

use cfd_analysis::{
    backward_slice, classify_program, find_loops, lint_program, Cfg, ClassifyConfig, DomTree, LintConfig, Rule,
    Severity,
};
use cfd_isa::check::Rng;
use cfd_isa::{prop_check, Assembler, Program, Reg};

/// A random structured program: a chain of `segments`, each either
/// straight-line code, an if (optionally with else), or a counted loop whose
/// body is straight-line with an optional guarded region.
#[derive(Debug, Clone)]
enum Segment {
    Straight(u8),
    IfThen { then_len: u8, with_else: bool },
    Loop { body_len: u8, guarded: Option<u8> },
}

fn segment(rng: &mut Rng) -> Segment {
    match rng.below(3) {
        0 => Segment::Straight(rng.range_u64(1, 6) as u8),
        1 => Segment::IfThen { then_len: rng.range_u64(1, 5) as u8, with_else: rng.bool() },
        _ => Segment::Loop {
            body_len: rng.range_u64(1, 4) as u8,
            guarded: rng.bool().then(|| rng.range_u64(1, 8) as u8),
        },
    }
}

fn segments(rng: &mut Rng) -> Vec<Segment> {
    rng.vec(1, 8, segment)
}

fn build(segments: &[Segment]) -> Program {
    let r = Reg::new;
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    for (k, seg) in segments.iter().enumerate() {
        match seg {
            Segment::Straight(len) => {
                for j in 0..*len {
                    a.addi(r(4 + (j as usize % 4)), r(4 + (j as usize % 4)), 1);
                }
            }
            Segment::IfThen { then_len, with_else } => {
                let (els, join) = (format!("else{k}"), format!("join{k}"));
                a.xor(p, r(4), 1i64);
                a.and(p, p, 1i64);
                a.beqz(p, if *with_else { &els } else { &join });
                for _ in 0..*then_len {
                    a.addi(r(5), r(5), 1);
                }
                if *with_else {
                    a.j(&join);
                    a.label(&els);
                    a.addi(r(6), r(6), 2);
                }
                a.label(&join);
            }
            Segment::Loop { body_len, guarded } => {
                let (top, skip) = (format!("top{k}"), format!("skip{k}"));
                a.li(i, 0);
                a.li(n, 5);
                a.label(&top);
                for _ in 0..*body_len {
                    a.addi(r(7), r(7), 3);
                }
                if let Some(g) = guarded {
                    a.and(p, r(7), 1i64);
                    a.beqz(p, &skip);
                    for _ in 0..*g {
                        a.addi(r(8), r(8), 1);
                    }
                    a.label(&skip);
                }
                a.addi(i, i, 1);
                a.blt(i, n, &top);
            }
        }
    }
    a.halt();
    a.finish().expect("generated program assembles")
}

#[test]
fn dominance_laws_hold() {
    prop_check!(48, |rng| {
        let program = build(&segments(rng));
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let pdom = DomTree::post_dominators(&cfg);
        for b in 0..cfg.len() {
            // Entry dominates everything; exit post-dominates everything.
            assert!(dom.dominates(cfg.entry(), b));
            assert!(pdom.dominates(cfg.exit(), b));
            // Reflexivity.
            assert!(dom.dominates(b, b));
            // idom is a strict dominator (except at the root).
            if b != cfg.entry() {
                let id = dom.idom(b);
                assert!(dom.dominates(id, b));
                assert!(id == b || dom.strictly_dominates(id, b));
            }
            // Antisymmetry.
            for c in 0..cfg.len() {
                if b != c {
                    assert!(
                        !(dom.strictly_dominates(b, c) && dom.strictly_dominates(c, b)),
                        "mutual strict dominance {b} <-> {c}"
                    );
                }
            }
        }
    });
}

#[test]
fn loops_have_dominating_headers() {
    prop_check!(48, |rng| {
        let program = build(&segments(rng));
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        for lp in find_loops(&cfg, &dom) {
            assert!(lp.contains(lp.header));
            for &b in &lp.blocks {
                assert!(dom.dominates(lp.header, b), "header must dominate the body");
            }
            for &latch in &lp.latches {
                assert!(lp.contains(latch));
                assert!(cfg.blocks[latch].succs.contains(&lp.header), "latch closes the loop");
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Degenerate control-flow graphs: the queue-discipline verifier must
// stay total (no panic, a verdict for every input) on the shapes real
// front-ends occasionally emit.
// ---------------------------------------------------------------------------

/// Queue-op-free structured programs are vacuously clean with all-zero
/// bounds, whatever their CFG shape.
#[test]
fn lint_is_clean_on_random_queue_free_programs() {
    prop_check!(48, |rng| {
        let program = build(&segments(rng));
        let rep = lint_program(&program, &LintConfig::default());
        assert!(rep.clean(), "{}", rep.table());
        assert_eq!(rep.bounds.bq, Some(0));
        assert_eq!(rep.bounds.vq, Some(0));
        assert_eq!(rep.bounds.tq, Some(0));
    });
}

/// The empty program — a bare `halt` — is the smallest valid input.
#[test]
fn lint_handles_empty_program() {
    let mut a = Assembler::new();
    a.halt();
    let rep = lint_program(&a.finish().unwrap(), &LintConfig::default());
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(0));
}

/// Code after an unconditional jump is unreachable; a queue violation
/// buried there must not poison the verdict of the live code, but the
/// dead region is reported.
#[test]
fn lint_skips_unreachable_blocks() {
    let r = Reg::new;
    let mut a = Assembler::new();
    a.addi(r(4), r(4), 1);
    a.j("live");
    // Dead: a bare pop that would underflow if it could ever run.
    a.branch_on_bq("live");
    a.label("live");
    a.addi(r(5), r(5), 1);
    a.halt();
    let rep = lint_program(&a.finish().unwrap(), &LintConfig::default());
    assert!(rep.clean(), "{}", rep.table());
    assert!(
        rep.diagnostics.iter().any(|d| d.rule == Rule::UnreachableCode),
        "dead block not reported:\n{}",
        rep.table()
    );
}

/// A conditional branch whose fallthrough is the final `halt`: the
/// fallthrough edge runs straight into the CFG exit, so exit-balance
/// checking must see both the taken and the fallthrough path.
#[test]
fn lint_checks_fallthrough_into_exit() {
    let r = Reg::new;
    // Unbalanced on the fallthrough path: one push, popped only on the
    // taken side.
    let mut a = Assembler::new();
    a.li(r(9), 0x1000);
    a.ld(r(5), 0, r(9)); // opaque predicate: both branch arms stay live
    a.push_bq(r(4));
    a.beqz(r(5), "drain");
    a.halt();
    a.label("drain");
    a.branch_on_bq("out");
    a.label("out");
    a.halt();
    let rep = lint_program(&a.finish().unwrap(), &LintConfig::default());
    assert!(!rep.clean(), "missed the unbalanced fallthrough exit");
    assert!(
        rep.diagnostics.iter().any(|d| d.rule == Rule::UnbalancedAtExit && d.severity == Severity::Error),
        "wrong finding:\n{}",
        rep.table()
    );
}

/// A cycle with two distinct entry points is irreducible — no natural
/// loop exists, and the verifier must refuse loudly instead of proving
/// bounds it cannot justify.
#[test]
fn lint_flags_irreducible_loop() {
    let r = Reg::new;
    let mut a = Assembler::new();
    a.beqz(r(4), "l2"); // second entry into the cycle, skipping l1
    a.label("l1");
    a.addi(r(5), r(5), 1);
    a.label("l2");
    a.addi(r(6), r(6), 1);
    a.bnez(r(6), "l1"); // closes the l1 <-> l2 cycle
    a.halt();
    let rep = lint_program(&a.finish().unwrap(), &LintConfig::default());
    assert!(!rep.clean());
    assert!(
        rep.diagnostics.iter().any(|d| d.rule == Rule::IrreducibleCfg && d.severity == Severity::Error),
        "irreducible cycle not flagged:\n{}",
        rep.table()
    );
    assert_eq!(rep.bounds.bq, None, "no bound may be claimed on an unanalyzed CFG");
}

#[test]
fn classification_is_total_and_slices_are_in_loops() {
    prop_check!(48, |rng| {
        let program = build(&segments(rng));
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        let reports = classify_program(&program, Some(&cfg), ClassifyConfig::default());
        // Every plain conditional branch gets exactly one report.
        let branch_count = program.instrs().iter().filter(|x| x.is_plain_conditional()).count();
        assert_eq!(reports.len(), branch_count);
        // Slices stay within their loop.
        for rep in &reports {
            let block = cfg.block_of(rep.pc);
            if let Some(lp) = loops.iter().find(|l| l.contains(block)) {
                let slice = backward_slice(&program, &cfg, lp, rep.pc);
                for pc in &slice.pcs {
                    assert!(lp.contains(cfg.block_of(*pc)), "slice escaped its loop");
                }
            }
        }
    });
}
