//! Automatic CFD transformation for canonical totally separable branches.
//!
//! The paper implemented a gcc pass that decouples loops automatically and
//! reports performance comparable to manual CFD for totally separable
//! branches (§I, §III-B). This module is the analog for our IR: it
//! recognizes the canonical guarded-loop shape
//!
//! ```text
//! top:   <slice>                 ; computes predicate p
//!        beqz p, skip           ; the separable branch
//!        <cd region>            ; straight-line
//! skip:  <induction>            ; e.g. addi i, i, 1
//!        blt i, n, top
//! ```
//!
//! and rewrites it into two decoupled loops communicating through the BQ,
//! strip-mined into chunks of the BQ size (§III-B: "the most straightforward
//! solution is loop strip mining").
//!
//! The transform is deliberately conservative: anything not matching the
//! canonical shape is rejected with a precise [`TransformError`], exactly
//! like a compiler pass bailing out.

use crate::cfg::Cfg;
use crate::classify::{classify_program, BranchClass, ClassifyConfig};
use crate::dom::DomTree;
use crate::loops::find_loops;
use cfd_isa::{AluOp, AsmError, Assembler, BranchCond, Instr, Program, Reg};
use std::fmt;

/// Why the transform refused a branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The PC does not hold a conditional branch.
    NotABranch(u32),
    /// The branch is not classified totally separable.
    NotTotallySeparable(BranchClass),
    /// The enclosing loop does not match the canonical 3-block shape.
    NonCanonicalLoop(&'static str),
    /// Not enough scratch registers were supplied (need 4).
    NeedScratchRegisters,
    /// Re-assembly failed (duplicate/undefined internal label).
    Assembly(AsmError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotABranch(pc) => write!(f, "pc {pc} is not a conditional branch"),
            TransformError::NotTotallySeparable(c) => write!(f, "branch class is {c}, not totally separable"),
            TransformError::NonCanonicalLoop(why) => write!(f, "loop shape not canonical: {why}"),
            TransformError::NeedScratchRegisters => write!(f, "transform needs 4 scratch registers"),
            TransformError::Assembly(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<AsmError> for TransformError {
    fn from(e: AsmError) -> Self {
        TransformError::Assembly(e)
    }
}

/// What the transform did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformReport {
    /// The rewritten program.
    pub program: Program,
    /// Strip-mining chunk (= BQ size used).
    pub chunk: usize,
    /// Static instruction count before/after.
    pub static_instrs: (usize, usize),
    /// Translation validation: the rewritten program re-linted by
    /// [`lint_program`](crate::lint_program) against the queue size the
    /// transform strip-mined for. A non-clean report means the rewrite
    /// itself broke the queue discipline.
    pub lint: crate::LintReport,
}

/// Applies the CFD transform to the totally separable branch at
/// `branch_pc`, strip-mining with `bq_size` chunks.
///
/// `scratch` must name at least 4 registers that are dead across the loop
/// (the pass does not do liveness analysis; the caller — like a real
/// compiler's register allocator — guarantees them).
///
/// # Errors
///
/// Returns a [`TransformError`] when the branch or its loop does not match
/// the canonical shape; the original program is untouched.
pub fn apply_cfd(
    program: &Program,
    branch_pc: u32,
    bq_size: usize,
    scratch: &[Reg],
) -> Result<TransformReport, TransformError> {
    apply_cfd_gated(program, branch_pc, bq_size, scratch, false)
}

/// The transform body behind [`apply_cfd`]; `speculative` additionally
/// admits [`BranchClass::SpeculativelySeparable`] branches (whose loads
/// the caller re-validates with [`crate::lint_speculation`]).
fn apply_cfd_gated(
    program: &Program,
    branch_pc: u32,
    bq_size: usize,
    scratch: &[Reg],
    speculative: bool,
) -> Result<TransformReport, TransformError> {
    if scratch.len() < 4 {
        return Err(TransformError::NeedScratchRegisters);
    }
    let (s_end, s_save, s_lim, s_n) = (scratch[0], scratch[1], scratch[2], scratch[3]);

    let branch = program.fetch(branch_pc).ok_or(TransformError::NotABranch(branch_pc))?;
    let Instr::Branch { cond: BranchCond::Eq, rs1: _pred, rs2, target: skip_target } = branch else {
        return Err(TransformError::NonCanonicalLoop("separable branch must be `beqz p, skip`"));
    };
    if !rs2.is_zero() {
        return Err(TransformError::NonCanonicalLoop("separable branch must compare against r0"));
    }

    // Classification gate: totally separable transforms directly;
    // partially separable additionally hoists + if-converts the short
    // loop-carried dependence into the first loop (§III).
    let report = classify_program(program, None, ClassifyConfig::default())
        .into_iter()
        .find(|r| r.pc == branch_pc)
        .ok_or(TransformError::NotABranch(branch_pc))?;
    let partial = match report.class {
        BranchClass::SeparableTotal => false,
        BranchClass::SeparablePartial => true,
        // The upgraded class behaves like total/partial separability once
        // the precise slice (which `backward_slice` computes) governs.
        BranchClass::SpeculativelySeparable if speculative => report.overlap_instrs > 0,
        other => return Err(TransformError::NotTotallySeparable(other)),
    };

    // Canonical shape: header [loop_start .. branch_pc], CD region
    // [branch_pc+1 .. skip_target), latch [skip_target .. back_branch].
    let cfg = Cfg::build(program);
    let dom = DomTree::dominators(&cfg);
    let loops = find_loops(&cfg, &dom);
    let lp = loops
        .iter()
        .filter(|l| l.contains(cfg.block_of(branch_pc)))
        .min_by_key(|l| l.blocks.len())
        .ok_or(TransformError::NonCanonicalLoop("branch not in a loop"))?;
    let loop_start = lp.blocks.iter().map(|&b| cfg.blocks[b].start).min().expect("non-empty loop");
    let loop_end = lp.blocks.iter().map(|&b| cfg.blocks[b].end).max().expect("non-empty loop");
    let back_pc = loop_end - 1;
    let Some(Instr::Branch { cond: BranchCond::Lt, rs1: ind, rs2: bound, target: back_target }) =
        program.fetch(back_pc)
    else {
        return Err(TransformError::NonCanonicalLoop("latch must end in `blt i, n, top`"));
    };
    if back_target != loop_start {
        return Err(TransformError::NonCanonicalLoop("latch must branch to the loop start"));
    }
    if !(loop_start..loop_end).contains(&skip_target) || skip_target <= branch_pc {
        return Err(TransformError::NonCanonicalLoop("skip label must be inside the loop, after the branch"));
    }
    // All three regions must be straight-line (no other control flow).
    for pc in loop_start..loop_end {
        if pc != branch_pc && pc != back_pc {
            let i = program.fetch(pc).expect("in range");
            if i.is_control() || matches!(i, Instr::Halt) {
                return Err(TransformError::NonCanonicalLoop("loop contains extra control flow"));
            }
        }
    }

    let slice: Vec<Instr> = (loop_start..branch_pc).map(|pc| program.fetch(pc).expect("in range")).collect();
    let latch: Vec<Instr> = (skip_target..back_pc).map(|pc| program.fetch(pc).expect("in range")).collect();
    // The latch is re-emitted in *both* decoupled loops, and only the
    // induction register is saved/restored around the second loop. Any
    // other latch effect (another register, a store) would therefore apply
    // twice per original iteration.
    for i in &latch {
        if i.dest() != Some(ind) || i.is_mem() {
            return Err(TransformError::NonCanonicalLoop(
                "latch may only update the induction register (it runs in both loops)",
            ));
        }
    }
    let pred = match branch {
        Instr::Branch { rs1, .. } => rs1,
        _ => unreachable!(),
    };

    // Partial separability: locate the slice-CD overlap (the feedback) and
    // validate it can be if-converted into the first loop.
    let overlap_pcs: std::collections::BTreeSet<u32> = if partial {
        let lp_slice = crate::slice::backward_slice(program, &cfg, lp, branch_pc);
        lp_slice.pcs.iter().copied().filter(|pc| (branch_pc + 1..skip_target).contains(pc)).collect()
    } else {
        Default::default()
    };
    let overlap: Vec<Instr> = overlap_pcs.iter().map(|&pc| program.fetch(pc).expect("in range")).collect();
    if partial {
        if scratch.len() < 6 {
            return Err(TransformError::NeedScratchRegisters);
        }
        // The conditional-move mask is synthesized as `-p`, which is
        // all-ones only when the predicate is exactly 0 or 1: the final
        // definition of `pred` in the slice must be a set-style compare.
        let pred_is_boolean = slice.iter().rev().find_map(|i| match *i {
            Instr::Alu { op, rd, .. } if rd == pred => {
                Some(matches!(op, AluOp::Slt | AluOp::Sltu | AluOp::Seq | AluOp::Sne | AluOp::Sge))
            }
            Instr::Li { rd, imm } if rd == pred => Some(imm == 0 || imm == 1),
            _ if i.dest() == Some(pred) => Some(false),
            _ => None,
        });
        if pred_is_boolean != Some(true) {
            return Err(TransformError::NonCanonicalLoop(
                "if-converted feedback needs a 0/1 predicate (set-op as the final def)",
            ));
        }
        let overlap_defs: std::collections::BTreeSet<Reg> = overlap.iter().filter_map(|i| i.dest()).collect();
        for (pc, i) in overlap_pcs.iter().zip(overlap.iter()) {
            // Only plain ALU feedback can be predicated with selects.
            if !matches!(i, Instr::Alu { .. }) {
                return Err(TransformError::NonCanonicalLoop("feedback must be ALU-only for if-conversion"));
            }
            // Sources must come from the slice, the feedback itself, or
            // from outside the CD region.
            let (a1, a2) = i.sources();
            for r in [a1, a2].into_iter().flatten() {
                let defined_in_cd_outside_overlap = (branch_pc + 1..*pc)
                    .any(|q| !overlap_pcs.contains(&q) && program.fetch(q).and_then(|x| x.dest()) == Some(r));
                if defined_in_cd_outside_overlap {
                    return Err(TransformError::NonCanonicalLoop(
                        "feedback reads non-feedback CD results; cannot hoist",
                    ));
                }
            }
        }
        // No non-feedback CD instruction may read a feedback destination
        // (it would observe the hoisted, already-final value).
        for pc in branch_pc + 1..skip_target {
            if overlap_pcs.contains(&pc) {
                continue;
            }
            let i = program.fetch(pc).expect("in range");
            let (a1, a2) = i.sources();
            for r in [a1, a2].into_iter().flatten() {
                if overlap_defs.contains(&r) {
                    return Err(TransformError::NonCanonicalLoop("CD region reads feedback values; cannot hoist"));
                }
            }
        }
    }
    // The second loop's CD region excludes the hoisted feedback.
    let cd: Vec<Instr> = (branch_pc + 1..skip_target)
        .filter(|pc| !overlap_pcs.contains(pc))
        .map(|pc| program.fetch(pc).expect("in range"))
        .collect();

    // Values computed by the slice and read by the CD region must flow from
    // the first loop to the second. This is the paper's CFD+ optimization:
    // communicate them through the Value Queue instead of recomputing
    // (§IV-B, Fig. 11). Latch-defined registers (induction variables) are
    // recomputed by the second loop and excluded.
    let slice_defs: std::collections::BTreeSet<Reg> = slice.iter().filter_map(|i| i.dest()).collect();
    let latch_defs: std::collections::BTreeSet<Reg> = latch.iter().filter_map(|i| i.dest()).collect();
    let mut shared: Vec<Reg> = Vec::new();
    for i in &cd {
        let (a, b) = i.sources();
        for r in [a, b].into_iter().flatten() {
            if slice_defs.contains(&r) && !latch_defs.contains(&r) && !shared.contains(&r) {
                shared.push(r);
            }
        }
    }
    // The VQ holds `shared.len()` values per iteration; shrink the strip
    // chunk so a chunk's pushes fit (the VQ is architected at BQ size).
    let chunk = if shared.is_empty() { bq_size } else { (bq_size / shared.len()).max(1) };

    // Rebuild: prefix, decoupled loops, suffix. Original targets become
    // "L{pc}" labels; the loop start maps to the transform's entry.
    let mut a = Assembler::new();
    let n_instrs = program.len() as u32;
    let mut is_target = vec![false; n_instrs as usize + 1];
    for instr in program.instrs() {
        if let Some(t) = instr.direct_target() {
            is_target[t as usize] = true;
        }
    }
    let emit_translated = |a: &mut Assembler, instr: Instr| {
        // Re-emit with PC targets renamed to labels.
        match instr {
            Instr::Branch { cond, rs1, rs2, target } => {
                a.branch(cond, rs1, rs2, &label_for(target, loop_start, loop_end));
            }
            Instr::Jump { target } => {
                a.j(&label_for(target, loop_start, loop_end));
            }
            Instr::Jal { rd, target } => {
                a.jal(rd, &label_for(target, loop_start, loop_end));
            }
            other => {
                a.raw(other);
            }
        }
    };

    for pc in 0..loop_start {
        if is_target[pc as usize] {
            a.label(&format!("L{pc}"));
        }
        emit_translated(&mut a, program.fetch(pc).expect("in range"));
    }

    // --- decoupled region ---
    a.label("cfd_entry");
    // Zero-trip guard: the original loop is bottom-tested; preserve that
    // do-while behaviour (it always runs at least one chunk).
    a.mv(s_n, bound);
    a.label("cfd_chunk");
    a.mv(s_save, ind); // chunk start
    a.addi(s_lim, ind, chunk as i64);
    a.min(s_lim, s_lim, s_n);
    // Loop 1: slice + pushes.
    a.label("cfd_loop1");
    for i in &slice {
        a.raw(*i);
    }
    a.push_bq(pred);
    for &r in &shared {
        a.push_vq(r);
    }
    if partial {
        // Hoisted, if-converted feedback: for each feedback instruction
        // `rd = op(..)`, compute into a scratch register and select
        // `rd = p ? t : rd` with mask arithmetic (conditional-move
        // synthesis, as the paper prescribes for partially separable
        // branches).
        let (t_val, t_mask) = (scratch[4], scratch[5]);
        for i in &overlap {
            let Instr::Alu { op, rd, rs1, src2 } = *i else { unreachable!("validated ALU-only") };
            a.alu(op, t_val, rs1, src2);
            a.sub(t_mask, Reg::ZERO, pred);
            a.and(t_val, t_val, t_mask);
            a.xor(t_mask, t_mask, -1i64);
            a.and(rd, rd, t_mask);
            a.or(rd, rd, t_val);
        }
    }
    for i in &latch {
        a.raw(*i);
    }
    a.branch(BranchCond::Lt, ind, s_lim, "cfd_loop1");
    a.mv(s_end, ind); // actual chunk end
    a.mv(ind, s_save);
    // Loop 2: pops + CD region. VQ pops run unconditionally to stay aligned
    // with their pushes (the push/pop ordering rules of §III-A).
    a.label("cfd_loop2");
    for &r in &shared {
        a.pop_vq(r);
    }
    a.branch_on_bq("cfd_skip");
    for i in &cd {
        a.raw(*i);
    }
    a.label("cfd_skip");
    for i in &latch {
        a.raw(*i);
    }
    a.branch(BranchCond::Lt, ind, s_end, "cfd_loop2");
    a.branch(BranchCond::Lt, ind, s_n, "cfd_chunk");

    for pc in loop_end..n_instrs {
        if is_target[pc as usize] {
            a.label(&format!("L{pc}"));
        }
        emit_translated(&mut a, program.fetch(pc).expect("in range"));
    }
    let new_program = a.finish()?;
    let static_instrs = (program.len(), new_program.len());
    let lint = crate::lint_program(&new_program, &crate::LintConfig { bq_size: chunk, ..crate::LintConfig::default() });
    Ok(TransformReport { program: new_program, chunk, static_instrs, lint })
}

/// Which rewrite [`apply_cfd_spec`] selected for a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecDecision {
    /// Plain CFD: totally separable.
    Cfd,
    /// CFD with the if-converted feedback loop: partially separable.
    CfdPartial,
    /// Speculative CFD: proven-safe loads hoisted past loop stores.
    CfdSpec,
    /// CFD through the trip-count queue: separable loop-branch.
    CfdTq,
}

impl fmt::Display for SpecDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpecDecision::Cfd => "cfd",
            SpecDecision::CfdPartial => "cfd-partial",
            SpecDecision::CfdSpec => "cfd-spec",
            SpecDecision::CfdTq => "cfd-tq",
        })
    }
}

/// What [`apply_cfd_spec`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecTransformReport {
    /// The rewrite selected from the branch's classification.
    pub decision: SpecDecision,
    /// The underlying transform result; for [`SpecDecision::CfdSpec`] its
    /// lint additionally carries the speculation-contract diagnostics from
    /// [`crate::lint_speculation`].
    pub report: TransformReport,
    /// Loads the leading loop executes ahead of the trailing loop's
    /// stores (each proven safe for `CfdSpec`).
    pub hoisted_loads: usize,
    /// (load pc, store pc) disjointness proofs on the *original* program
    /// backing a `CfdSpec` decision; empty for the other decisions.
    pub claims: Vec<(u32, u32)>,
}

/// Selects and applies the CFD rewrite matching the classification of the
/// branch at `branch_pc`: plain CFD for (totally/partially) separable
/// branches, CFD(TQ) for separable loop-branches, and speculative CFD for
/// [`BranchClass::SpeculativelySeparable`] upgrades. Speculative outputs
/// are re-validated by [`crate::lint_speculation`]: any hoisted store or
/// unproven load shows up as an error in the returned report's lint.
///
/// # Errors
///
/// [`TransformError::NotTotallySeparable`] when the class admits no CFD
/// rewrite (hammock, inseparable, not analyzed); otherwise whatever the
/// underlying transform reports.
pub fn apply_cfd_spec(
    program: &Program,
    branch_pc: u32,
    bq_size: usize,
    tq_size: usize,
    scratch: &[Reg],
) -> Result<SpecTransformReport, TransformError> {
    let class_report = classify_program(program, None, ClassifyConfig::default())
        .into_iter()
        .find(|r| r.pc == branch_pc)
        .ok_or(TransformError::NotABranch(branch_pc))?;
    match class_report.class {
        BranchClass::SeparableTotal | BranchClass::SeparablePartial => {
            let report = apply_cfd_gated(program, branch_pc, bq_size, scratch, false)?;
            let decision = if class_report.class == BranchClass::SeparableTotal {
                SpecDecision::Cfd
            } else {
                SpecDecision::CfdPartial
            };
            Ok(SpecTransformReport { decision, report, hoisted_loads: class_report.slice_loads, claims: Vec::new() })
        }
        BranchClass::SeparableLoopBranch => {
            let report = crate::apply_cfd_tq(program, branch_pc, tq_size, scratch)?;
            Ok(SpecTransformReport { decision: SpecDecision::CfdTq, report, hoisted_loads: 0, claims: Vec::new() })
        }
        BranchClass::SpeculativelySeparable => {
            let mut report = apply_cfd_gated(program, branch_pc, bq_size, scratch, true)?;
            report.lint.diagnostics.extend(crate::lint_speculation(program, &report.program, branch_pc));
            Ok(SpecTransformReport {
                decision: SpecDecision::CfdSpec,
                report,
                hoisted_loads: class_report.proven_safe_loads,
                claims: class_report.disjoint_claims.clone(),
            })
        }
        other => Err(TransformError::NotTotallySeparable(other)),
    }
}

fn label_for(target: u32, loop_start: u32, loop_end: u32) -> String {
    if target == loop_start {
        "cfd_entry".to_string()
    } else if (loop_start..loop_end).contains(&target) {
        // Canonicality checks reject other in-loop targets from outside.
        format!("L{target}")
    } else {
        format!("L{target}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::{Machine, MemImage};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// The soplex-like kernel of Fig. 8, in canonical shape.
    fn kernel(n: i64) -> (Program, u32, MemImage) {
        let (i, nn, base, x, eps, p, tmp, cnt, sum) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
        let mut a = Assembler::new();
        a.li(nn, n);
        a.li(base, 0x1000);
        a.li(eps, 500);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.slt(p, x, eps);
        let bpc = a.here();
        a.beqz(p, "skip");
        // CD region: 6 instructions, disjoint from the slice.
        a.add(sum, sum, x);
        a.addi(cnt, cnt, 1);
        a.xor(r(10), sum, cnt);
        a.add(r(11), r(11), r(10));
        a.sub(r(12), r(11), sum);
        a.add(r(12), r(12), 7i64);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let program = a.finish().unwrap();
        let mut mem = MemImage::new();
        let mut x = 88172645463325252u64;
        for k in 0..n as u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            mem.write_u64(0x1000 + 8 * k, x % 1000);
        }
        (program, bpc, mem)
    }

    pub(crate) fn run_regs(program: &Program, outs: &[Reg]) -> Vec<i64> {
        let mut m = Machine::new(program.clone(), MemImage::new());
        m.run_to_halt().unwrap();
        outs.iter().map(|&x| m.regs.read(x)).collect()
    }

    fn outputs(program: Program, mem: MemImage) -> Vec<i64> {
        let mut m = Machine::new(program, mem);
        m.run_to_halt().unwrap();
        [8, 9, 10, 11, 12].iter().map(|&i| m.regs.read(r(i))).collect()
    }

    #[test]
    fn transformed_program_is_equivalent() {
        let (program, bpc, mem) = kernel(1000);
        let rep = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert_eq!(outputs(program, mem.clone()), outputs(rep.program, mem));
    }

    #[test]
    fn transformed_program_passes_translation_validation() {
        let (program, bpc, _) = kernel(1000);
        let rep = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert!(rep.lint.clean(), "{}", rep.lint.table());
        assert_eq!(rep.lint.bounds.bq, Some(128));
    }

    #[test]
    fn equivalence_with_tiny_bq_chunks() {
        let (program, bpc, mem) = kernel(100);
        let rep = apply_cfd(&program, bpc, 8, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert_eq!(outputs(program, mem.clone()), outputs(rep.program, mem));
        assert!(rep.lint.clean(), "{}", rep.lint.table());
        assert_eq!(rep.lint.bounds.bq, Some(8));
    }

    #[test]
    fn transformed_program_contains_cfd_instructions() {
        let (program, bpc, _) = kernel(100);
        let rep = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
        let instrs = rep.program.instrs();
        assert!(instrs.iter().any(|i| matches!(i, Instr::PushBq { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::BranchOnBq { .. })));
        assert!(rep.static_instrs.1 > rep.static_instrs.0);
    }

    #[test]
    fn bq_never_overflows_during_execution() {
        let (program, bpc, mem) = kernel(5000);
        let rep = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
        // Run on a machine whose BQ is exactly the chunk size: strip mining
        // must keep occupancy within bounds, or the run errors.
        let mut m = Machine::with_queues(rep.program, mem, cfd_isa::QueueConfig { bq_size: 128, ..Default::default() });
        m.run_to_halt().unwrap();
        assert!(m.bq.is_empty(), "all predicates popped");
    }

    #[test]
    fn rejects_hammock() {
        let (i, nn, p) = (r(1), r(2), r(3));
        let mut a = Assembler::new();
        a.li(nn, 10);
        a.label("top");
        a.xor(p, i, 1i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.addi(r(4), r(4), 1); // tiny CD region -> hammock
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let err = apply_cfd(&a.finish().unwrap(), bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert_eq!(err, TransformError::NotTotallySeparable(BranchClass::Hammock));
    }

    /// Builds a partially separable loop: the predicate reads `acc`, which
    /// the CD region increments (short loop-carried feedback).
    fn partial_kernel() -> (Program, u32) {
        let (i, nn, p, acc) = (r(1), r(2), r(3), r(4));
        let mut a = Assembler::new();
        a.li(nn, 2000);
        a.label("top");
        a.and(p, i, 3i64);
        a.add(p, p, acc);
        a.slt(p, p, 800i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.addi(acc, acc, 1); // the feedback
        a.addi(r(5), r(5), 1);
        a.xor(r(6), r(6), r(5));
        a.add(r(7), r(7), r(6));
        a.sub(r(8), r(7), r(5));
        a.add(r(8), r(8), 3i64);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        (a.finish().unwrap(), bpc)
    }

    #[test]
    fn partially_separable_transforms_with_ifconverted_feedback() {
        let (program, bpc) = partial_kernel();
        let t = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23), r(24), r(25)]).unwrap();
        let outs = [r(4), r(5), r(6), r(7), r(8)];
        assert_eq!(
            crate::transform::tests::run_regs(&program, &outs),
            crate::transform::tests::run_regs(&t.program, &outs)
        );
    }

    #[test]
    fn partial_needs_six_scratch_registers() {
        let (program, bpc) = partial_kernel();
        let err = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert_eq!(err, TransformError::NeedScratchRegisters);
    }

    #[test]
    fn rejects_cd_reading_feedback_values() {
        // A non-feedback CD instruction reads the feedback register: the
        // hoisted (final) value would be observed too early. Must bail.
        let (i, nn, p, acc) = (r(1), r(2), r(3), r(4));
        let mut a = Assembler::new();
        a.li(nn, 100);
        a.label("top");
        a.add(p, i, acc);
        a.slt(p, p, 60i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.addi(acc, acc, 1);
        a.add(r(5), r(5), acc); // reads the feedback value per iteration
        a.xor(r(6), r(6), r(5));
        a.add(r(7), r(7), r(6));
        a.sub(r(8), r(7), r(5));
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let err = apply_cfd(&a.finish().unwrap(), bpc, 128, &[r(20), r(21), r(22), r(23), r(24), r(25)]).unwrap_err();
        assert!(matches!(err, TransformError::NonCanonicalLoop(_)), "got {err:?}");
    }

    #[test]
    fn rejects_without_scratch() {
        let (program, bpc, _) = kernel(10);
        assert_eq!(apply_cfd(&program, bpc, 128, &[r(20)]).unwrap_err(), TransformError::NeedScratchRegisters);
    }

    #[test]
    fn rejects_latch_with_non_induction_update() {
        // The latch also advances a pointer: emitted in both loops it would
        // advance twice per iteration, so the transform must bail.
        let (i, nn, p, ptr) = (r(1), r(2), r(3), r(9));
        let mut a = Assembler::new();
        a.li(nn, 100);
        a.label("top");
        a.and(p, i, 7i64);
        a.slt(p, p, 3i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        for k in 0..8 {
            a.addi(r(4 + k % 4), r(4 + k % 4), 1);
        }
        a.label("skip");
        a.addi(ptr, ptr, 8);
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let err = apply_cfd(&a.finish().unwrap(), bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert_eq!(
            err,
            TransformError::NonCanonicalLoop("latch may only update the induction register (it runs in both loops)")
        );
    }

    #[test]
    fn rejects_partial_with_non_boolean_predicate() {
        // Predicate is `i & 3` (0..=3): `-p` is not a valid cmov mask, so the
        // if-conversion must be refused.
        let (i, nn, p, acc) = (r(1), r(2), r(3), r(4));
        let mut a = Assembler::new();
        a.li(nn, 100);
        a.label("top");
        a.add(p, i, acc);
        a.and(p, p, 3i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.addi(acc, acc, 1); // feedback -> partially separable
        for k in 0..7 {
            a.addi(r(5 + k % 4), r(5 + k % 4), 1);
        }
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let err = apply_cfd(&a.finish().unwrap(), bpc, 128, &[r(20), r(21), r(22), r(23), r(24), r(25)]).unwrap_err();
        assert_eq!(
            err,
            TransformError::NonCanonicalLoop("if-converted feedback needs a 0/1 predicate (set-op as the final def)")
        );
    }

    #[test]
    fn rejects_non_branch_pc() {
        let (program, _, _) = kernel(10);
        let err = apply_cfd(&program, 0, 128, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert!(matches!(err, TransformError::NonCanonicalLoop(_) | TransformError::NotABranch(_)));
    }

    /// A guarded scatter whose CD region stores through the *same* base
    /// register the predicate load reads: the name heuristic entangles the
    /// stores into the slice (inseparable), while the precise tier proves
    /// every store disjoint from the load's whole-loop interval.
    fn spec_kernel(n: i64) -> (Program, u32, MemImage) {
        let (i, nn, base, x, eps, p, tmp, sum, acc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
        let mut a = Assembler::new();
        a.li(nn, n);
        a.li(base, 0x1000);
        a.li(eps, 450);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.slt(p, x, eps);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.add(sum, sum, x);
        a.xor(acc, acc, x);
        a.sd(x, 8 * n, tmp);
        a.sd(sum, 16 * n, tmp);
        a.sd(acc, 24 * n, tmp);
        a.sd(x, 32 * n, tmp);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let program = a.finish().unwrap();
        let mut mem = MemImage::new();
        let mut v = 6364136223846793005u64;
        for k in 0..n as u64 {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            mem.write_u64(0x1000 + 8 * k, v % 1000);
        }
        (program, bpc, mem)
    }

    fn spec_outputs(program: Program, mem: MemImage, n: i64) -> (Vec<i64>, Vec<u64>) {
        let mut m = Machine::new(program, mem);
        m.run_to_halt().unwrap();
        let regs = [8, 9].iter().map(|&i| m.regs.read(r(i))).collect();
        let words = (0..4 * n as u64).map(|k| m.mem.read_u64(0x1000u64 + 8 * n as u64 + 8 * k)).collect();
        (regs, words)
    }

    #[test]
    fn spec_kernel_upgrades_and_transforms_cleanly() {
        let (program, bpc, mem) = spec_kernel(100);
        let class =
            classify_program(&program, None, ClassifyConfig::default()).into_iter().find(|c| c.pc == bpc).unwrap();
        assert_eq!(class.class, BranchClass::SpeculativelySeparable);
        assert_eq!(class.heuristic_class, BranchClass::Inseparable);
        let t = apply_cfd_spec(&program, bpc, 64, 64, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert_eq!(t.decision, SpecDecision::CfdSpec);
        assert_eq!(t.hoisted_loads, 1);
        assert_eq!(t.claims.len(), 4, "one disjointness proof per store");
        assert!(t.report.lint.clean(), "{}", t.report.lint.table());
        assert_eq!(spec_outputs(program, mem.clone(), 100), spec_outputs(t.report.program, mem, 100));
    }

    #[test]
    fn apply_cfd_spec_dispatches_plain_cfd() {
        let (program, bpc, mem) = kernel(500);
        let t = apply_cfd_spec(&program, bpc, 128, 64, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert_eq!(t.decision, SpecDecision::Cfd);
        assert!(t.claims.is_empty());
        assert_eq!(outputs(program, mem.clone()), outputs(t.report.program, mem));
    }

    #[test]
    fn apply_cfd_spec_refuses_unprovable_store() {
        // One store goes through a conditionally-updated counter: no
        // disjointness proof, no upgrade, no speculative transform.
        let (i, nn, base, x, eps, p, tmp, cnt, t0) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
        let mut a = Assembler::new();
        a.li(nn, 100);
        a.li(base, 0x1000);
        a.li(eps, 450);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.slt(p, x, eps);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.sll(t0, cnt, 3i64);
        a.sd(x, 0x4000, t0);
        a.sd(x, 800, tmp);
        a.sd(x, 1600, tmp);
        a.sd(x, 2400, tmp);
        a.sd(x, 3200, tmp);
        a.addi(cnt, cnt, 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let program = a.finish().unwrap();
        let err = apply_cfd_spec(&program, bpc, 64, 64, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert_eq!(err, TransformError::NotTotallySeparable(BranchClass::Inseparable));
    }

    #[test]
    fn lint_speculation_flags_hoisted_store_and_unproven_load() {
        let (program, bpc, _) = spec_kernel(100);
        let (i, base, x, tmp, y) = (r(1), r(3), r(4), r(7), r(10));
        // A hand-built "transform output" that violates the contract: the
        // leading loop contains a store and a load with no safety proof.
        let mut b = Assembler::new();
        b.label("cfd_loop1");
        b.sll(tmp, i, 3i64);
        b.add(tmp, tmp, base);
        b.ld(x, 0, tmp); // identical to the proven-safe original load: ok
        b.sd(x, 800, tmp); // hoisted store
        b.ld(y, 0, x); // unproven load
        b.label("cfd_loop2");
        b.halt();
        let bad = b.finish().unwrap();
        let diags = crate::lint_speculation(&program, &bad, bpc);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![crate::Rule::HoistedStore, crate::Rule::HoistedUnsafeLoad]);
        assert!(diags.iter().all(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn lint_speculation_accepts_the_real_transform() {
        let (program, bpc, _) = spec_kernel(100);
        let t = apply_cfd_spec(&program, bpc, 64, 64, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert!(crate::lint_speculation(&program, &t.report.program, bpc).is_empty());
    }
}
