//! Control dependence (Ferrante–Ottenstein–Warren).
//!
//! Block `w` is control-dependent on branch edge `u → v` when `w`
//! post-dominates `v` but does not strictly post-dominate `u`. The paper's
//! branch classes hinge on the *size* of a branch's control-dependent
//! region and on whether the branch's backward slice intersects it.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use std::collections::BTreeSet;

/// Control-dependence relation over a CFG.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// `deps_of[b]` = blocks control-dependent on block `b`'s terminator.
    deps_of: Vec<BTreeSet<usize>>,
}

impl ControlDeps {
    /// Computes control dependences from a CFG and its post-dominator tree.
    pub fn compute(cfg: &Cfg, pdom: &DomTree) -> ControlDeps {
        let mut deps_of = vec![BTreeSet::new(); cfg.len()];
        for (u, block) in cfg.blocks.iter().enumerate() {
            if block.succs.len() < 2 {
                continue; // only branching terminators create control deps
            }
            for &v in &block.succs {
                // Walk the post-dominator tree from v up to (but excluding)
                // ipdom(u): everything on the way is control-dependent on u.
                // When u is a loop branch the walk passes through u itself,
                // correctly marking the header as self-dependent.
                let stop = pdom.idom(u);
                let mut w = v;
                while w != stop {
                    deps_of[u].insert(w);
                    let next = pdom.idom(w);
                    if next == w {
                        break; // defensive: unreachable subtree
                    }
                    w = next;
                }
            }
        }
        ControlDeps { deps_of }
    }

    /// Blocks control-dependent on the terminator of block `b`.
    pub fn dependents(&self, b: usize) -> &BTreeSet<usize> {
        &self.deps_of[b]
    }

    /// Total instructions control-dependent on block `b`'s terminator.
    pub fn region_size(&self, cfg: &Cfg, b: usize) -> usize {
        self.deps_of[b].iter().map(|&w| cfg.blocks[w].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::{Assembler, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn if_then_region() {
        // beqz r1 -> skip ; 3 CD instructions ; skip: halt
        let mut a = Assembler::new();
        a.beqz(r(1), "skip");
        a.addi(r(2), r(2), 1);
        a.addi(r(3), r(3), 1);
        a.addi(r(4), r(4), 1);
        a.label("skip");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let pdom = DomTree::post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        let head = cfg.block_of(0);
        let body = cfg.block_of(1);
        assert!(cd.dependents(head).contains(&body));
        assert_eq!(cd.region_size(&cfg, head), 3);
    }

    #[test]
    fn diamond_both_arms_dependent() {
        let mut a = Assembler::new();
        a.beqz(r(1), "else");
        a.addi(r(2), r(2), 1);
        a.j("join");
        a.label("else");
        a.addi(r(2), r(2), 2);
        a.label("join");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let pdom = DomTree::post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        let head = cfg.block_of(0);
        let then_b = cfg.block_of(1);
        let else_b = cfg.block_of(3);
        let join = cfg.block_of(4);
        assert!(cd.dependents(head).contains(&then_b));
        assert!(cd.dependents(head).contains(&else_b));
        assert!(!cd.dependents(head).contains(&join), "join is not control-dependent");
        // then = 2 instrs (addi + j), else = 1 instr
        assert_eq!(cd.region_size(&cfg, head), 3);
    }

    #[test]
    fn loop_body_depends_on_loop_branch() {
        let mut a = Assembler::new();
        a.li(r(2), 10);
        a.label("top");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "top");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let pdom = DomTree::post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        let body = cfg.block_of(1);
        // The loop block is control-dependent on its own back-edge branch.
        assert!(cd.dependents(body).contains(&body));
    }

    #[test]
    fn straightline_has_no_deps() {
        let mut a = Assembler::new();
        a.addi(r(1), r(1), 1);
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let pdom = DomTree::post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        for b in 0..cfg.len() {
            assert!(cd.dependents(b).is_empty());
        }
    }
}
