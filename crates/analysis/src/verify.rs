//! Static CFD queue-discipline verifier ("cfd-lint").
//!
//! [`lint_program`] runs an abstract interpretation over the [`Cfg`] and
//! proves, along every path:
//!
//! 1. **push/pop balance** — the program cannot reach its exit with
//!    entries still queued, and no pop can underflow
//!    ([`Rule::UnbalancedAtExit`], [`Rule::Underflow`]);
//! 2. **bounded occupancy** — a static per-queue occupancy bound exists
//!    and fits the configured queue sizes; a missing strip-mine chunk
//!    surfaces as [`Rule::UnboundedOccupancy`];
//! 3. **Mark/Forward well-formedness** — every `Forward_BQ` executes
//!    under an active `Mark_BQ` ([`Rule::ForwardWithoutMark`]);
//! 4. **TQ/TCR discipline** — `Branch_on_TCR` only executes after a
//!    `Pop_TQ` loaded the trip-count register, `Push_TQ` never sits
//!    inside the TCR-driven loop it feeds, and queue save/restore pairs
//!    match ([`Rule::BranchTcrWithoutTrip`], [`Rule::PushTqInTcrLoop`],
//!    [`Rule::RestoreWithoutSave`]).
//!
//! # Abstract domain
//!
//! The verifier is a *symbolic affine* interpreter: every register and
//! every queue counter is an expression `k + Σ cᵢ·vᵢ` over opaque
//! variables, closed under `min`/`max` — the strip-mining idiom
//! `min(i + CHUNK, n)` must stay exact for leading/trailing trip counts
//! to cancel. Loops are summarized in two passes (a shape pass with
//! havocked registers to find per-iteration deltas, then a checking
//! pass parameterized by an iteration index whose upper bound chains to
//! the loop's trip-count expression). A trailing loop whose bound
//! register holds the leading loop's exit index pops *structurally the
//! same* expression the leading loop pushed, so balance falls out of
//! algebra rather than interval widening.
//!
//! Data-dependent nested trip counts (`Push_TQ` of a loaded bound,
//! popped by a mirrored consumer nest) pair up via load memoization in
//! store-free programs; `cfd-lint: value<=N` annotations bound such
//! loads. Mirror pairing and annotation bounds are *trusted axioms*:
//! they are validated dynamically by the `cfd-harden` cross-check
//! property (a statically clean program must run fault-free with
//! observed occupancy within the static bound).

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, LintReport, QueueBounds, Rule, Severity};
use crate::dom::DomTree;
use crate::loops::{find_loops, is_nested, NaturalLoop};
use cfd_isa::{AluOp, BranchCond, Instr, Program, QueueConfig, QueueKind, QueueOpKind, Src2};
use std::collections::{BTreeSet, HashMap};

/// Queue sizes the lint proves occupancy against. Mirrors
/// [`QueueConfig`]; the default matches the simulator's default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Branch Queue capacity.
    pub bq_size: usize,
    /// Value Queue capacity.
    pub vq_size: usize,
    /// Trip-count Queue capacity.
    pub tq_size: usize,
    /// Architected trip-count width in bits (bounds TCR-driven trips).
    pub tq_trip_bits: u32,
}

impl From<&QueueConfig> for LintConfig {
    fn from(q: &QueueConfig) -> Self {
        LintConfig { bq_size: q.bq_size, vq_size: q.vq_size, tq_size: q.tq_size, tq_trip_bits: q.tq_trip_bits }
    }
}

impl From<QueueConfig> for LintConfig {
    fn from(q: QueueConfig) -> Self {
        (&q).into()
    }
}

impl Default for LintConfig {
    fn default() -> Self {
        (&QueueConfig::default()).into()
    }
}

impl LintConfig {
    fn size_of(&self, q: usize) -> usize {
        match q {
            QBQ => self.bq_size,
            QVQ => self.vq_size,
            _ => self.tq_size,
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic expressions
// ---------------------------------------------------------------------------

type VarId = u32;

/// Reserved variable id used to canonicalize the current loop's
/// iteration index in load-memoization keys.
const SENTINEL: VarId = 0;

/// Node-count cap beyond which expressions are havocked to a fresh
/// bounded variable (min/max distribution is exponential in principle).
const EXPR_CAP: usize = 48;

/// Substitution depth for symbolic upper-bound chains.
const CHAIN_DEPTH: u32 = 4;

/// A linear combination `k + Σ cᵢ·vᵢ` (terms sorted by variable id,
/// coefficients nonzero).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
struct Lin {
    k: i64,
    terms: Vec<(VarId, i64)>,
}

impl Lin {
    fn konst(k: i64) -> Lin {
        Lin { k, terms: Vec::new() }
    }

    fn var(v: VarId) -> Lin {
        Lin { k: 0, terms: vec![(v, 1)] }
    }

    fn add(&self, o: &Lin) -> Lin {
        let mut terms = Vec::with_capacity(self.terms.len() + o.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < o.terms.len() {
            match (self.terms.get(i), o.terms.get(j)) {
                (Some(&(va, ca)), Some(&(vb, cb))) if va == vb => {
                    let c = ca.saturating_add(cb);
                    if c != 0 {
                        terms.push((va, c));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&(va, ca)), Some(&(vb, _))) if va < vb => {
                    terms.push((va, ca));
                    i += 1;
                }
                (Some(_), Some(&(vb, cb))) => {
                    terms.push((vb, cb));
                    j += 1;
                }
                (Some(&t), None) => {
                    terms.push(t);
                    i += 1;
                }
                (None, Some(&t)) => {
                    terms.push(t);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Lin { k: self.k.saturating_add(o.k), terms }
    }

    fn scale(&self, f: i64) -> Lin {
        if f == 0 {
            return Lin::konst(0);
        }
        Lin { k: self.k.saturating_mul(f), terms: self.terms.iter().map(|&(v, c)| (v, c.saturating_mul(f))).collect() }
    }
}

/// A symbolic expression: linear combinations closed under min/max.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Expr {
    Lin(Lin),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn konst(k: i64) -> Expr {
        Expr::Lin(Lin::konst(k))
    }

    fn var(v: VarId) -> Expr {
        Expr::Lin(Lin::var(v))
    }

    fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Lin(l) if l.terms.is_empty() => Some(l.k),
            _ => None,
        }
    }

    fn as_single_var(&self) -> Option<(VarId, i64)> {
        match self {
            Expr::Lin(l) if l.k == 0 && l.terms.len() == 1 => Some(l.terms[0]),
            _ => None,
        }
    }

    fn size(&self) -> usize {
        match self {
            Expr::Lin(l) => 1 + l.terms.len(),
            Expr::Min(a, b) | Expr::Max(a, b) => 1 + a.size() + b.size(),
        }
    }

    fn add(&self, o: &Expr) -> Expr {
        match (self, o) {
            (Expr::Lin(a), Expr::Lin(b)) => Expr::Lin(a.add(b)),
            (Expr::Min(p, q), r) | (r, Expr::Min(p, q)) => Expr::Min(Box::new(p.add(r)), Box::new(q.add(r))),
            (Expr::Max(p, q), r) | (r, Expr::Max(p, q)) => Expr::Max(Box::new(p.add(r)), Box::new(q.add(r))),
        }
    }

    fn neg(&self) -> Expr {
        match self {
            Expr::Lin(l) => Expr::Lin(l.scale(-1)),
            Expr::Min(a, b) => Expr::Max(Box::new(a.neg()), Box::new(b.neg())),
            Expr::Max(a, b) => Expr::Min(Box::new(a.neg()), Box::new(b.neg())),
        }
    }

    fn sub(&self, o: &Expr) -> Expr {
        self.add(&o.neg())
    }

    fn scale(&self, f: i64) -> Expr {
        match self {
            _ if f == 0 => Expr::konst(0),
            Expr::Lin(l) => Expr::Lin(l.scale(f)),
            Expr::Min(a, b) if f > 0 => Expr::Min(Box::new(a.scale(f)), Box::new(b.scale(f))),
            Expr::Min(a, b) => Expr::Max(Box::new(a.scale(f)), Box::new(b.scale(f))),
            Expr::Max(a, b) if f > 0 => Expr::Max(Box::new(a.scale(f)), Box::new(b.scale(f))),
            Expr::Max(a, b) => Expr::Min(Box::new(a.scale(f)), Box::new(b.scale(f))),
        }
    }

    fn contains(&self, v: VarId) -> bool {
        match self {
            Expr::Lin(l) => l.terms.iter().any(|&(w, _)| w == v),
            Expr::Min(a, b) | Expr::Max(a, b) => a.contains(v) || b.contains(v),
        }
    }

    /// Replaces `v` with `r` everywhere.
    fn subst(&self, v: VarId, r: &Expr) -> Expr {
        match self {
            Expr::Lin(l) => {
                let Some(&(_, c)) = l.terms.iter().find(|&&(w, _)| w == v) else {
                    return self.clone();
                };
                let rest = Lin { k: l.k, terms: l.terms.iter().copied().filter(|&(w, _)| w != v).collect() };
                Expr::Lin(rest).add(&r.scale(c))
            }
            Expr::Min(a, b) => Expr::Min(Box::new(a.subst(v, r)), Box::new(b.subst(v, r))),
            Expr::Max(a, b) => Expr::Max(Box::new(a.subst(v, r)), Box::new(b.subst(v, r))),
        }
    }
}

/// What the verifier knows about an opaque variable.
#[derive(Clone, Default)]
struct VarInfo {
    lo: Option<i64>,
    hi: Option<i64>,
    /// Symbolic upper bound (e.g. an iteration index is `<= trips - 1`).
    ub: Option<Expr>,
    /// Memoized-load value class, for mirror pairing.
    class: Option<u32>,
}

/// A path fact: `lo <= expr <= hi` (either side optional).
#[derive(Clone, PartialEq, Eq, Debug)]
struct Fact {
    expr: Expr,
    lo: Option<i64>,
    hi: Option<i64>,
}

const MAX_FACTS: usize = 24;

// ---------------------------------------------------------------------------
// Abstract state
// ---------------------------------------------------------------------------

const QBQ: usize = 0;
const QVQ: usize = 1;
const QTQ: usize = 2;
const QKINDS: [QueueKind; 3] = [QueueKind::Bq, QueueKind::Vq, QueueKind::Tq];

fn qidx(q: QueueKind) -> usize {
    match q {
        QueueKind::Bq => QBQ,
        QueueKind::Vq => QVQ,
        QueueKind::Tq => QTQ,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tri {
    No,
    Maybe,
    Yes,
}

impl Tri {
    fn join(a: Tri, b: Tri) -> Tri {
        if a == b {
            a
        } else {
            Tri::Maybe
        }
    }
}

/// Value classes of the entries a queue may hold: the meet over every
/// push that could have fed it since the queue was last provably empty.
/// Pops never demote this — a queue drained of uniformly class-`k`
/// values is vacuously still `Uniform(k)` — so the classification does
/// not depend on occupancy and survives the havocked shape pass, where
/// emptiness is unprovable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Content {
    /// No push has fed the queue on this path.
    Empty,
    /// Every contributing push carried this value class.
    Uniform(u32),
    /// Pushes of differing or unclassified values.
    Mixed,
}

impl Content {
    /// Content after pushing a value of class `class`.
    fn push(self, class: Option<u32>) -> Content {
        match (self, class) {
            (Content::Empty, Some(k)) => Content::Uniform(k),
            (Content::Uniform(k), Some(j)) if k == j => self,
            _ => Content::Mixed,
        }
    }

    /// Join over two control-flow paths.
    fn join(a: Content, b: Content) -> Content {
        match (a, b) {
            (Content::Empty, x) | (x, Content::Empty) => x,
            (Content::Uniform(k), Content::Uniform(j)) if k == j => a,
            _ => Content::Mixed,
        }
    }

    /// The single value class of every queued entry, when known.
    fn class(self) -> Option<u32> {
        match self {
            Content::Uniform(k) => Some(k),
            _ => None,
        }
    }
}

/// Abstract state of one queue. Occupancy is `ahead + since`: `ahead`
/// counts entries at or before the active mark (all entries when
/// unmarked), `since` counts entries pushed after the mark.
#[derive(Clone, PartialEq, Eq)]
struct QState {
    ahead: Expr,
    since: Expr,
    marked: Tri,
    /// Occupancy (and content class) captured by a pending save.
    saved: Option<(Expr, Content)>,
    /// Value class of the queued entries (TQ mirror pairing).
    content: Content,
}

impl QState {
    fn empty() -> QState {
        QState { ahead: Expr::konst(0), since: Expr::konst(0), marked: Tri::No, saved: None, content: Content::Empty }
    }

    fn occupancy(&self) -> Expr {
        self.ahead.add(&self.since)
    }
}

#[derive(Clone)]
struct AbsState {
    regs: Vec<Expr>,
    q: [QState; 3],
    /// `Some(class)` when a `Pop_TQ` has loaded the trip-count register.
    tcr: Option<Option<u32>>,
    facts: Vec<Fact>,
}

impl AbsState {
    fn initial() -> AbsState {
        AbsState {
            regs: (0..cfd_isa::NUM_REGS).map(|_| Expr::konst(0)).collect(),
            q: [QState::empty(), QState::empty(), QState::empty()],
            tcr: None,
            facts: Vec::new(),
        }
    }

    fn subst_all(&mut self, v: VarId, r: &Expr) {
        for e in self.regs.iter_mut() {
            if e.contains(v) {
                *e = e.subst(v, r);
            }
        }
        for qs in self.q.iter_mut() {
            if qs.ahead.contains(v) {
                qs.ahead = qs.ahead.subst(v, r);
            }
            if qs.since.contains(v) {
                qs.since = qs.since.subst(v, r);
            }
            if let Some((s, _)) = &mut qs.saved {
                if s.contains(v) {
                    *s = s.subst(v, r);
                }
            }
        }
        for f in self.facts.iter_mut() {
            if f.expr.contains(v) {
                f.expr = f.expr.subst(v, r);
            }
        }
        self.facts.retain(|f| f.expr.as_const().is_none());
    }
}

// ---------------------------------------------------------------------------
// Loop plumbing
// ---------------------------------------------------------------------------

/// How one loop iteration changes a register (from the shape pass).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RegDelta {
    /// Value at the latch equals the entry value.
    Invariant,
    /// Constant per-iteration increment.
    Step(i64),
    Varying,
}

/// How one loop iteration changes a queue's occupancy.
#[derive(Clone, Debug)]
enum QShape {
    /// Exact constant deltas for (ahead, since).
    Const(i64, i64),
    /// Data-dependent delta with the given numeric per-iteration range.
    Fuzzy { per_lo: Option<i64>, per_hi: Option<i64> },
}

/// Loop style, from the header/latch tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Style {
    /// Bottom-tested do-while: body executes `max(1, bound - start)`.
    Bottom,
    /// Header-tested while: body executes `max(0, bound - start)`, the
    /// header test once more.
    Header,
    /// TCR-driven: trips is the popped trip count.
    Tcr,
    Unknown,
}

/// An unconsumed data-dependent producer segment on a queue, awaiting
/// its mirrored consumer.
struct ProdSeg {
    trips: Expr,
    class: u32,
    sigma: VarId,
}

/// Per-walk context.
struct WalkCtx {
    quiet: bool,
    /// Innermost checking-pass iteration variable (memo-key canon).
    iter_var: Option<VarId>,
    /// Nesting depth of enclosing TCR-driven loops.
    tcr_depth: u32,
    /// Loop-nest depth (recursion guard).
    depth: u32,
    /// Open producer segments per queue.
    segs: [Vec<ProdSeg>; 3],
}

impl WalkCtx {
    fn top() -> WalkCtx {
        WalkCtx { quiet: false, iter_var: None, tcr_depth: 0, depth: 0, segs: [Vec::new(), Vec::new(), Vec::new()] }
    }
}

type Edge = (usize, usize, AbsState);

// ---------------------------------------------------------------------------
// The verifier
// ---------------------------------------------------------------------------

struct Lint<'a> {
    program: &'a Program,
    cfg: &'a Cfg,
    rpo: Vec<usize>,
    loops: Vec<NaturalLoop>,
    parent: Vec<Option<usize>>,
    header_loop: HashMap<usize, usize>,
    config: &'a LintConfig,
    vars: Vec<VarInfo>,
    diags: Vec<Diagnostic>,
    max_occ: [i64; 3],
    unbounded: [bool; 3],
    memoize: bool,
    classes: HashMap<String, u32>,
    class_bounds: Vec<(Option<i64>, Option<i64>)>,
    hints: HashMap<u32, i64>,
    /// Buffered underflow findings awaiting a mirror match (queue, diag).
    pending: Vec<(usize, Diagnostic)>,
    pending_depth: u32,
    /// Canonical min/max trees interned as variables, memoized by
    /// structure: a leading loop's trip count and its trailing twin's
    /// build the same tree, get the same variable, and cancel exactly
    /// in linear arithmetic.
    atoms: std::collections::BTreeMap<Expr, VarId>,
}

/// Statically verifies `program`'s CFD queue discipline against the
/// configured queue sizes. See the module docs for the rule set and the
/// trust assumptions. Never panics: irreducible or otherwise
/// unanalyzable control flow is reported as a diagnostic.
pub fn lint_program(program: &Program, config: &LintConfig) -> LintReport {
    let cfg = Cfg::build(program);
    if program.instrs().is_empty() {
        return LintReport { diagnostics: Vec::new(), bounds: QueueBounds { bq: Some(0), vq: Some(0), tq: Some(0) } };
    }

    let rpo = cfg.reverse_postorder();
    let dom = DomTree::dominators(&cfg);
    let mut pos = vec![usize::MAX; cfg.len()];
    for (i, &b) in rpo.iter().enumerate() {
        pos[b] = i;
    }

    // Reducibility gate: a retreating edge whose target does not
    // dominate its source has no natural loop; give up gracefully.
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if pos[b] == usize::MAX || b == cfg.exit() {
            continue;
        }
        for &s in &blk.succs {
            if pos[s] != usize::MAX && pos[s] <= pos[b] && !dom.dominates(s, b) {
                let d = Diagnostic::new(
                    Rule::IrreducibleCfg,
                    Severity::Error,
                    None,
                    Some(blk.end - 1),
                    format!(
                        "irreducible cycle through the edge to pc {}: the verifier cannot summarize it",
                        cfg.blocks[s].start
                    ),
                    program,
                );
                return LintReport { diagnostics: vec![d], bounds: QueueBounds::default() };
            }
        }
    }

    let mut loops = find_loops(&cfg, &dom);
    loops.retain(|l| pos[l.header] != usize::MAX);
    let mut parent: Vec<Option<usize>> = vec![None; loops.len()];
    for i in 0..loops.len() {
        parent[i] = loops
            .iter()
            .enumerate()
            .filter(|&(j, o)| j != i && is_nested(&loops[i], o))
            .min_by_key(|&(_, o)| o.blocks.len())
            .map(|(j, _)| j);
    }
    let header_loop: HashMap<usize, usize> = loops.iter().enumerate().map(|(i, l)| (l.header, i)).collect();

    let memoize = !program
        .instrs()
        .iter()
        .any(|i| matches!(i, Instr::Store { .. }) || matches!(i.queue_op(), Some(q) if q.op == QueueOpKind::Save));

    let mut hints = HashMap::new();
    for pc in 0..program.len() as u32 {
        if let Some(text) = program.annotation(pc) {
            if let Some(rest) = text.split("cfd-lint:").nth(1) {
                if let Some(v) = rest.split("value<=").nth(1) {
                    let num: String = v.trim_start().chars().take_while(|c| c.is_ascii_digit()).collect();
                    if let Ok(n) = num.parse::<i64>() {
                        hints.insert(pc, n);
                    }
                }
            }
        }
    }

    let mut lint = Lint {
        program,
        cfg: &cfg,
        rpo,
        loops,
        parent,
        header_loop,
        config,
        vars: vec![VarInfo::default()], // vars[0] = SENTINEL
        diags: Vec::new(),
        max_occ: [0; 3],
        unbounded: [false; 3],
        memoize,
        classes: HashMap::new(),
        class_bounds: Vec::new(),
        hints,
        pending: Vec::new(),
        pending_depth: 0,
        atoms: std::collections::BTreeMap::new(),
    };

    // Unreachable code.
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if pos[b] == usize::MAX && b != cfg.exit() {
            lint.emit(
                Rule::UnreachableCode,
                Severity::Info,
                None,
                Some(blk.start),
                format!("block at pc {}..{} can never execute", blk.start, blk.end),
            );
        }
    }

    lint.run();
    lint.finish()
}

impl<'a> Lint<'a> {
    fn run(&mut self) {
        let region: BTreeSet<usize> = self.rpo.iter().copied().filter(|&b| b != self.cfg.exit()).collect();
        if region.is_empty() {
            return;
        }
        let mut ctx = WalkCtx::top();
        let (exits, _latches) = self.walk_region(&region, self.cfg.entry(), AbsState::initial(), None, &mut ctx);
        for (from, to, st) in exits {
            if to == self.cfg.exit() {
                self.check_balance(from, &st);
            }
        }
        // Anything still pending at the top level is a real finding.
        let leftover: Vec<_> = self.pending.drain(..).collect();
        for (_, d) in leftover {
            self.push_diag(d);
        }
    }

    fn finish(mut self) -> LintReport {
        self.diags.sort_by_key(|d| (d.pc.unwrap_or(u32::MAX), d.rule, d.queue.map(qidx)));
        let b = |i: usize| -> Option<u64> {
            if self.unbounded[i] {
                None
            } else {
                Some(self.max_occ[i].max(0) as u64)
            }
        };
        LintReport { diagnostics: self.diags, bounds: QueueBounds { bq: b(QBQ), vq: b(QVQ), tq: b(QTQ) } }
    }

    // -- diagnostics --------------------------------------------------------

    fn emit(&mut self, rule: Rule, sev: Severity, queue: Option<QueueKind>, pc: Option<u32>, msg: String) {
        let d = Diagnostic::new(rule, sev, queue, pc, msg, self.program);
        self.push_diag(d);
    }

    fn push_diag(&mut self, d: Diagnostic) {
        let dup = |x: &Diagnostic| x.rule == d.rule && x.pc == d.pc && x.queue == d.queue;
        if self.diags.iter().any(dup) || self.pending.iter().any(|(_, x)| dup(x)) {
            return;
        }
        self.diags.push(d);
    }

    // -- variables and bounds ----------------------------------------------

    fn fresh(&mut self, lo: Option<i64>, hi: Option<i64>, class: Option<u32>, ub: Option<Expr>) -> VarId {
        self.vars.push(VarInfo { lo, hi, ub, class });
        (self.vars.len() - 1) as VarId
    }

    fn havoc(&mut self, e: &Expr, facts: &[Fact]) -> Expr {
        let lo = self.lo(e, facts);
        let hi = self.ub(e, facts);
        Expr::var(self.fresh(lo, hi, None, None))
    }

    fn ub(&self, e: &Expr, facts: &[Fact]) -> Option<i64> {
        self.ub_d(e, facts, CHAIN_DEPTH)
    }

    fn lo(&self, e: &Expr, facts: &[Fact]) -> Option<i64> {
        self.lo_d(e, facts, CHAIN_DEPTH)
    }

    fn fact_bounds(&self, e: &Expr, facts: &[Fact]) -> (Option<i64>, Option<i64>) {
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for f in facts {
            if let Some(d) = e.sub(&f.expr).as_const() {
                if let Some(h) = f.hi {
                    let c = h.saturating_add(d);
                    hi = Some(hi.map_or(c, |x: i64| x.min(c)));
                }
                if let Some(l) = f.lo {
                    let c = l.saturating_add(d);
                    lo = Some(lo.map_or(c, |x: i64| x.max(c)));
                }
            } else if let Some(d) = e.add(&f.expr).as_const() {
                // e == d - f.expr
                if let Some(l) = f.lo {
                    let c = d.saturating_sub(l);
                    hi = Some(hi.map_or(c, |x: i64| x.min(c)));
                }
                if let Some(h) = f.hi {
                    let c = d.saturating_sub(h);
                    lo = Some(lo.map_or(c, |x: i64| x.max(c)));
                }
            }
        }
        (lo, hi)
    }

    fn ub_d(&self, e: &Expr, facts: &[Fact], depth: u32) -> Option<i64> {
        let mut best = self.fact_bounds(e, facts).1;
        let mut cand = |c: Option<i64>| {
            if let Some(c) = c {
                best = Some(best.map_or(c, |b: i64| b.min(c)));
            }
        };
        match e {
            Expr::Lin(l) => {
                let mut direct: Option<i128> = Some(l.k as i128);
                for &(v, c) in &l.terms {
                    let b = if c > 0 { self.vars[v as usize].hi } else { self.vars[v as usize].lo };
                    direct = match (direct, b) {
                        (Some(d), Some(b)) => Some(d + c as i128 * b as i128),
                        _ => None,
                    };
                }
                cand(direct.and_then(|d| i64::try_from(d).ok()));
                if depth > 0 {
                    for &(v, c) in &l.terms {
                        if c > 0 {
                            if let Some(u) = self.vars[v as usize].ub.clone() {
                                let e2 = e.subst(v, &u);
                                if e2.size() <= EXPR_CAP {
                                    cand(self.ub_d(&e2, facts, depth - 1));
                                }
                            }
                        }
                    }
                }
            }
            Expr::Min(a, b) => {
                cand(self.ub_d(a, facts, depth));
                cand(self.ub_d(b, facts, depth));
            }
            Expr::Max(a, b) => {
                if let (Some(x), Some(y)) = (self.ub_d(a, facts, depth), self.ub_d(b, facts, depth)) {
                    cand(Some(x.max(y)));
                }
            }
        }
        best
    }

    fn lo_d(&self, e: &Expr, facts: &[Fact], depth: u32) -> Option<i64> {
        let mut best = self.fact_bounds(e, facts).0;
        let mut cand = |c: Option<i64>| {
            if let Some(c) = c {
                best = Some(best.map_or(c, |b: i64| b.max(c)));
            }
        };
        match e {
            Expr::Lin(l) => {
                let mut direct: Option<i128> = Some(l.k as i128);
                for &(v, c) in &l.terms {
                    let b = if c > 0 { self.vars[v as usize].lo } else { self.vars[v as usize].hi };
                    direct = match (direct, b) {
                        (Some(d), Some(b)) => Some(d + c as i128 * b as i128),
                        _ => None,
                    };
                }
                cand(direct.and_then(|d| i64::try_from(d).ok()));
                if depth > 0 {
                    for &(v, c) in &l.terms {
                        if c < 0 {
                            if let Some(u) = self.vars[v as usize].ub.clone() {
                                let e2 = e.subst(v, &u);
                                if e2.size() <= EXPR_CAP {
                                    cand(self.lo_d(&e2, facts, depth - 1));
                                }
                            }
                        }
                    }
                }
            }
            Expr::Min(a, b) => {
                if let (Some(x), Some(y)) = (self.lo_d(a, facts, depth), self.lo_d(b, facts, depth)) {
                    cand(Some(x.min(y)));
                }
            }
            Expr::Max(a, b) => {
                cand(self.lo_d(a, facts, depth));
                cand(self.lo_d(b, facts, depth));
            }
        }
        best
    }

    fn narrow(&self, e: &Expr, facts: &[Fact]) -> Option<Expr> {
        if e.as_const().is_some() {
            return None;
        }
        match (self.lo(e, facts), self.ub(e, facts)) {
            (Some(a), Some(b)) if a == b => Some(Expr::konst(a)),
            _ => None,
        }
    }

    fn min_e(&mut self, a: Expr, b: Expr, facts: &[Fact]) -> Expr {
        if a == b {
            return a;
        }
        let d = a.sub(&b);
        if d.size() <= EXPR_CAP {
            if self.ub(&d, facts).is_some_and(|u| u <= 0) {
                return a;
            }
            if self.lo(&d, facts).is_some_and(|l| l >= 0) {
                return b;
            }
        }
        let (a, b) = if b < a { (b, a) } else { (a, b) };
        self.atom(Expr::Min(Box::new(a), Box::new(b)), facts)
    }

    fn max_e(&mut self, a: Expr, b: Expr, facts: &[Fact]) -> Expr {
        if a == b {
            return a;
        }
        let d = a.sub(&b);
        if d.size() <= EXPR_CAP {
            if self.ub(&d, facts).is_some_and(|u| u <= 0) {
                return b;
            }
            if self.lo(&d, facts).is_some_and(|l| l >= 0) {
                return a;
            }
        }
        let (a, b) = if b < a { (b, a) } else { (a, b) };
        self.atom(Expr::Max(Box::new(a), Box::new(b)), facts)
    }

    /// Interns a canonical min/max tree as an *atom* variable so state
    /// arithmetic stays linear. Equal trees share a variable, which
    /// makes a trailing loop's pop total structurally cancel its
    /// leading twin's push total. Interval bounds are computed
    /// fact-free (the memoized atom is reused across paths); the
    /// upper-bound chain carries the tree itself, so path-local facts
    /// still apply wherever a bound on the atom is queried.
    fn atom(&mut self, tree: Expr, facts: &[Fact]) -> Expr {
        if tree.size() > EXPR_CAP {
            return self.havoc(&tree, facts);
        }
        if let Some(&v) = self.atoms.get(&tree) {
            return Expr::var(v);
        }
        let lo = self.lo(&tree, &[]);
        let hi = self.ub(&tree, &[]);
        let v = self.fresh(lo, hi, None, Some(tree.clone()));
        self.atoms.insert(tree, v);
        Expr::var(v)
    }

    fn capped(&mut self, e: Expr, facts: &[Fact]) -> Expr {
        if e.size() > EXPR_CAP {
            self.havoc(&e, facts)
        } else {
            e
        }
    }

    // -- joins --------------------------------------------------------------

    fn join_exprs(&mut self, a: &Expr, fa: &[Fact], b: &Expr, fb: &[Fact], clamp0: bool) -> Expr {
        if a == b {
            return a.clone();
        }
        let mut lo = match (self.lo(a, fa), self.lo(b, fb)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            _ => None,
        };
        let hi = match (self.ub(a, fa), self.ub(b, fb)) {
            (Some(x), Some(y)) => Some(x.max(y)),
            _ => None,
        };
        if clamp0 {
            lo = Some(lo.unwrap_or(0).max(0));
        }
        Expr::var(self.fresh(lo, hi, None, None))
    }

    fn join2(&mut self, a: &AbsState, b: &AbsState) -> AbsState {
        let regs =
            (0..a.regs.len()).map(|r| self.join_exprs(&a.regs[r], &a.facts, &b.regs[r], &b.facts, false)).collect();
        let mut q = [QState::empty(), QState::empty(), QState::empty()];
        for (i, slot) in q.iter_mut().enumerate() {
            let (qa, qb) = (&a.q[i], &b.q[i]);
            let saved = match (&qa.saved, &qb.saved) {
                (Some((ea, ca)), Some((eb, cb))) => {
                    let e = self.join_exprs(ea, &a.facts, eb, &b.facts, true);
                    Some((e, Content::join(*ca, *cb)))
                }
                _ => None,
            };
            *slot = QState {
                ahead: self.join_exprs(&qa.ahead, &a.facts, &qb.ahead, &b.facts, true),
                since: self.join_exprs(&qa.since, &a.facts, &qb.since, &b.facts, true),
                marked: Tri::join(qa.marked, qb.marked),
                saved,
                content: Content::join(qa.content, qb.content),
            };
        }
        let tcr = match (a.tcr, b.tcr) {
            (Some(ca), Some(cb)) => Some(if ca == cb { ca } else { None }),
            _ => None,
        };
        let mut facts = Vec::new();
        for fa in &a.facts {
            if let Some(fb) = b.facts.iter().find(|f| f.expr == fa.expr) {
                let lo = match (fa.lo, fb.lo) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    _ => None,
                };
                let hi = match (fa.hi, fb.hi) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    _ => None,
                };
                if lo.is_some() || hi.is_some() {
                    facts.push(Fact { expr: fa.expr.clone(), lo, hi });
                }
            }
        }
        AbsState { regs, q, tcr, facts }
    }

    fn join_all(&mut self, mut states: Vec<AbsState>) -> AbsState {
        let mut acc = states.pop().expect("non-empty join");
        for s in states {
            acc = self.join2(&acc, &s);
        }
        acc
    }

    // -- region walking -----------------------------------------------------

    fn boe(&self, pc: u32) -> usize {
        if (pc as usize) < self.program.len() {
            self.cfg.block_of(pc)
        } else {
            self.cfg.exit()
        }
    }

    fn child_loop(&self, cur: Option<usize>, block: usize) -> Option<usize> {
        let &li = self.header_loop.get(&block)?;
        (self.parent[li] == cur && cur != Some(li)).then_some(li)
    }

    #[allow(clippy::type_complexity)]
    fn walk_region(
        &mut self,
        region: &BTreeSet<usize>,
        entry_block: usize,
        entry: AbsState,
        cur_loop: Option<usize>,
        ctx: &mut WalkCtx,
    ) -> (Vec<Edge>, Vec<AbsState>) {
        let mut pending_in: HashMap<usize, Vec<AbsState>> = HashMap::new();
        pending_in.insert(entry_block, vec![entry]);
        let mut exits = Vec::new();
        let mut latches = Vec::new();
        let mut processed: BTreeSet<usize> = BTreeSet::new();
        for i in 0..self.rpo.len() {
            let b = self.rpo[i];
            if !region.contains(&b) {
                continue;
            }
            let Some(states) = pending_in.remove(&b) else {
                continue;
            };
            processed.insert(b);
            let st = self.join_all(states);
            let out = match self.child_loop(cur_loop, b) {
                Some(cl) if b != entry_block || cur_loop.is_none() => self.process_loop(cl, st, ctx),
                _ => self.walk_block(b, st, ctx),
            };
            for (from, to, s) in out {
                if to == entry_block && region.contains(&to) && cur_loop.is_some() {
                    latches.push(s);
                } else if region.contains(&to) && to != entry_block {
                    if processed.contains(&to) {
                        // Should be unreachable after the reducibility
                        // gate; drop the edge rather than looping.
                        self.emit(
                            Rule::AnalysisDegraded,
                            Severity::Warning,
                            None,
                            Some(self.cfg.blocks[from].end.saturating_sub(1)),
                            "edge into an already-summarized block; analysis is incomplete here".into(),
                        );
                    } else {
                        pending_in.entry(to).or_default().push(s);
                    }
                } else if to == entry_block {
                    // Top-level self edge to the entry (entry not a loop
                    // header only when unreachable in practice).
                    latches.push(s);
                } else {
                    exits.push((from, to, s));
                }
            }
        }
        (exits, latches)
    }

    fn walk_block(&mut self, b: usize, mut st: AbsState, ctx: &mut WalkCtx) -> Vec<Edge> {
        let (start, end) = (self.cfg.blocks[b].start, self.cfg.blocks[b].end);
        let succs = self.cfg.blocks[b].succs.clone();
        for pc in start..end.saturating_sub(1) {
            let instr = self.program.instrs()[pc as usize];
            self.transfer(&mut st, pc, &instr, ctx);
        }
        let last = end - 1;
        let instr = self.program.instrs()[last as usize];
        self.terminator(b, last, &instr, st, ctx, &succs)
    }

    fn terminator(
        &mut self,
        b: usize,
        pc: u32,
        instr: &Instr,
        mut st: AbsState,
        ctx: &mut WalkCtx,
        succs: &[usize],
    ) -> Vec<Edge> {
        match *instr {
            Instr::Branch { cond, rs1, rs2, target } => {
                let taken_block = self.boe(target);
                let fall = self.boe(pc + 1);
                let d = st.regs[rs1.index()].sub(&st.regs[rs2.index()]);
                let d = self.capped(d, &st.facts);
                // Resolve statically decidable branches.
                if let Some(c) = d.as_const() {
                    let taken = match cond {
                        BranchCond::Eq => c == 0,
                        BranchCond::Ne => c != 0,
                        BranchCond::Lt => c < 0,
                        BranchCond::Ge => c >= 0,
                        // Unsigned compares are not tracked; fall through
                        // to the two-edge case below.
                        BranchCond::Ltu | BranchCond::Geu => {
                            return self.two_edges(b, taken_block, fall, st);
                        }
                    };
                    let to = if taken { taken_block } else { fall };
                    return vec![(b, to, st)];
                }
                let (mut t_st, mut f_st) = (st.clone(), st);
                match cond {
                    BranchCond::Lt => {
                        self.add_fact(&mut t_st, d.clone(), None, Some(-1));
                        self.add_fact(&mut f_st, d, Some(0), None);
                    }
                    BranchCond::Ge => {
                        self.add_fact(&mut t_st, d.clone(), Some(0), None);
                        self.add_fact(&mut f_st, d, None, Some(-1));
                    }
                    BranchCond::Eq => self.add_fact(&mut t_st, d, Some(0), Some(0)),
                    BranchCond::Ne => self.add_fact(&mut f_st, d, Some(0), Some(0)),
                    BranchCond::Ltu | BranchCond::Geu => {}
                }
                let mut out = vec![(b, taken_block, t_st)];
                if fall != taken_block {
                    out.push((b, fall, f_st));
                }
                out
            }
            Instr::BranchOnBq { target } => {
                self.pop(&mut st, QBQ, pc, ctx);
                let taken = self.boe(target);
                let fall = self.boe(pc + 1);
                self.two_edges(b, taken, fall, st)
            }
            Instr::BranchOnTcr { target } => {
                if st.tcr.is_none() {
                    self.check_tcr_loaded(pc, ctx);
                }
                let taken = self.boe(target);
                let fall = self.boe(pc + 1);
                self.two_edges(b, taken, fall, st)
            }
            Instr::PopTqBrOvf { target } => {
                self.pop(&mut st, QTQ, pc, ctx);
                st.tcr = Some(st.q[QTQ].content.class());
                let taken = self.boe(target);
                let fall = self.boe(pc + 1);
                self.two_edges(b, taken, fall, st)
            }
            Instr::Jump { target } => vec![(b, self.boe(target), st)],
            Instr::Jal { rd, target } => {
                if !rd.is_zero() {
                    st.regs[rd.index()] = Expr::var(self.fresh(None, None, None, None));
                }
                vec![(b, self.boe(target), st)]
            }
            Instr::Jr { .. } | Instr::Halt => vec![(b, self.cfg.exit(), st)],
            _ => {
                // Fallthrough block: the last instruction is ordinary.
                self.transfer(&mut st, pc, instr, ctx);
                succs.iter().map(|&s| (b, s, st.clone())).collect()
            }
        }
    }

    fn two_edges(&mut self, b: usize, taken: usize, fall: usize, st: AbsState) -> Vec<Edge> {
        if taken == fall {
            vec![(b, taken, st)]
        } else {
            vec![(b, taken, st.clone()), (b, fall, st)]
        }
    }

    fn check_tcr_loaded(&mut self, pc: u32, ctx: &WalkCtx) {
        if !ctx.quiet {
            self.emit(
                Rule::BranchTcrWithoutTrip,
                Severity::Error,
                Some(QueueKind::Tq),
                Some(pc),
                "Branch_on_TCR executes before any Pop_TQ loaded the trip-count register".into(),
            );
        }
    }

    fn add_fact(&mut self, st: &mut AbsState, expr: Expr, lo: Option<i64>, hi: Option<i64>) {
        if expr.as_const().is_some() || expr.size() > EXPR_CAP / 2 {
            return;
        }
        if let Some(f) = st.facts.iter_mut().find(|f| f.expr == expr) {
            f.lo = match (f.lo, lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            f.hi = match (f.hi, hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        } else {
            if st.facts.len() >= MAX_FACTS {
                st.facts.remove(0);
            }
            st.facts.push(Fact { expr, lo, hi });
        }
        // Narrow queue counters the new fact may have pinned.
        for i in 0..3 {
            if let Some(n) = self.narrow(&st.q[i].ahead, &st.facts) {
                st.q[i].ahead = n;
            }
            if let Some(n) = self.narrow(&st.q[i].since, &st.facts) {
                st.q[i].since = n;
            }
        }
    }

    // -- instruction transfer ----------------------------------------------

    fn transfer(&mut self, st: &mut AbsState, pc: u32, instr: &Instr, ctx: &mut WalkCtx) {
        if let Some(qop) = instr.queue_op() {
            return self.queue_transfer(st, pc, instr, qop.queue, qop.op, ctx);
        }
        match *instr {
            Instr::Alu { op, rd, rs1, src2 } => {
                if rd.is_zero() {
                    return;
                }
                let a = st.regs[rs1.index()].clone();
                let b = match src2 {
                    Src2::Reg(r) => st.regs[r.index()].clone(),
                    Src2::Imm(i) => Expr::konst(i),
                };
                let v = match op {
                    AluOp::Add => self.capped(a.add(&b), &st.facts),
                    AluOp::Sub => self.capped(a.sub(&b), &st.facts),
                    AluOp::Min => self.min_e(a, b, &st.facts.clone()),
                    AluOp::Max => self.max_e(a, b, &st.facts.clone()),
                    AluOp::Mul => match (a.as_const(), b.as_const()) {
                        (_, Some(k)) => self.capped(a.scale(k), &st.facts),
                        (Some(k), _) => self.capped(b.scale(k), &st.facts),
                        _ => Expr::var(self.fresh(None, None, None, None)),
                    },
                    AluOp::Sll => match b.as_const() {
                        Some(s) if (0..=31).contains(&s) => self.capped(a.scale(1i64 << s), &st.facts),
                        _ => Expr::var(self.fresh(None, None, None, None)),
                    },
                    AluOp::Slt | AluOp::Sltu | AluOp::Seq | AluOp::Sne | AluOp::Sge => {
                        Expr::var(self.fresh(Some(0), Some(1), None, None))
                    }
                    AluOp::Srl => Expr::var(self.fresh(Some(0), None, None, None)),
                    _ => Expr::var(self.fresh(None, None, None, None)),
                };
                st.regs[rd.index()] = v;
            }
            Instr::Li { rd, imm } if !rd.is_zero() => {
                st.regs[rd.index()] = Expr::konst(imm);
            }
            Instr::Load { rd, base, offset, width, signed } => {
                if rd.is_zero() {
                    return;
                }
                let hint = self.hints.get(&pc).copied();
                let v = if self.memoize {
                    let base_e = match ctx.iter_var {
                        Some(iv) => st.regs[base.index()].subst(iv, &Expr::var(SENTINEL)),
                        None => st.regs[base.index()].clone(),
                    };
                    let key = format!("{base_e:?}|{offset}|{width:?}|{signed}");
                    let cid = match self.classes.get(&key) {
                        Some(&c) => c,
                        None => {
                            let c = self.class_bounds.len() as u32;
                            self.classes.insert(key, c);
                            self.class_bounds.push((None, None));
                            c
                        }
                    };
                    if let Some(h) = hint {
                        let b = &mut self.class_bounds[cid as usize];
                        b.0 = Some(b.0.unwrap_or(0).max(0));
                        b.1 = Some(b.1.map_or(h, |x| x.min(h)));
                    }
                    let (clo, chi) = self.class_bounds[cid as usize];
                    Expr::var(self.fresh(clo, chi, Some(cid), None))
                } else {
                    let (lo, hi) = hint.map_or((None, None), |h| (Some(0), Some(h)));
                    Expr::var(self.fresh(lo, hi, None, None))
                };
                st.regs[rd.index()] = v;
            }
            _ => {}
        }
    }

    fn queue_transfer(
        &mut self,
        st: &mut AbsState,
        pc: u32,
        instr: &Instr,
        queue: QueueKind,
        op: QueueOpKind,
        ctx: &mut WalkCtx,
    ) {
        let qi = qidx(queue);
        match op {
            QueueOpKind::Push => {
                if queue == QueueKind::Tq && ctx.tcr_depth > 0 && !ctx.quiet {
                    self.emit(
                        Rule::PushTqInTcrLoop,
                        Severity::Error,
                        Some(queue),
                        Some(pc),
                        "Push_TQ inside a TCR-driven loop: trip counts must be generated outside the decoupled inner loop".into(),
                    );
                }
                let class = instr
                    .sources()
                    .0
                    .and_then(|rs| st.regs[rs.index()].as_single_var())
                    .filter(|&(_, c)| c == 1)
                    .and_then(|(v, _)| self.vars[v as usize].class);
                self.push(st, qi, class, pc, ctx);
            }
            QueueOpKind::Pop => {
                self.pop(st, qi, pc, ctx);
                match *instr {
                    Instr::PopVq { rd } if !rd.is_zero() => {
                        st.regs[rd.index()] = Expr::var(self.fresh(None, None, None, None));
                    }
                    Instr::PopTq => st.tcr = Some(st.q[QTQ].content.class()),
                    _ => {}
                }
            }
            QueueOpKind::Mark => {
                let qs = &mut st.q[qi];
                qs.ahead = qs.ahead.add(&qs.since);
                qs.since = Expr::konst(0);
                qs.marked = Tri::Yes;
            }
            QueueOpKind::Forward => {
                match st.q[qi].marked {
                    Tri::Yes => {}
                    Tri::No => {
                        if !ctx.quiet {
                            self.emit(
                                Rule::ForwardWithoutMark,
                                Severity::Error,
                                Some(queue),
                                Some(pc),
                                "Forward_BQ executes with no Mark_BQ active".into(),
                            );
                        }
                    }
                    Tri::Maybe => {
                        if !ctx.quiet {
                            self.emit(
                                Rule::ForwardWithoutMark,
                                Severity::Error,
                                Some(queue),
                                Some(pc),
                                "Forward_BQ executes with no Mark_BQ active on some path".into(),
                            );
                        }
                    }
                }
                // All entries before the mark are bulk-popped.
                st.q[qi].ahead = Expr::konst(0);
            }
            QueueOpKind::Save => {
                st.q[qi].saved = Some((st.q[qi].occupancy(), st.q[qi].content));
            }
            QueueOpKind::Restore => {
                match st.q[qi].saved.take() {
                    Some((occ, content)) => {
                        st.q[qi].ahead = occ.clone();
                        st.q[qi].since = Expr::konst(0);
                        st.q[qi].marked = Tri::No;
                        st.q[qi].content = content;
                        self.record_occ(st, qi, pc, ctx);
                    }
                    None => {
                        if !ctx.quiet {
                            self.emit(
                                Rule::RestoreWithoutSave,
                                Severity::Error,
                                Some(queue),
                                Some(pc),
                                "queue restore executes with no matching save on some path".into(),
                            );
                        }
                        st.q[qi].ahead = Expr::var(self.fresh(Some(0), Some(0), None, None));
                        st.q[qi].since = Expr::konst(0);
                        st.q[qi].marked = Tri::No;
                    }
                }
                if queue == QueueKind::Tq {
                    st.tcr = None;
                }
            }
            QueueOpKind::BranchTcr => {
                // Non-terminator Branch_on_TCR does not occur (it is a
                // control instruction); the terminator path checks it.
            }
        }
    }

    fn push(&mut self, st: &mut AbsState, qi: usize, class: Option<u32>, pc: u32, ctx: &WalkCtx) {
        if qi == QTQ {
            // A provably empty queue forgets earlier pushes: a new fill
            // starts a fresh uniform run.
            let base =
                if self.ub(&st.q[qi].occupancy(), &st.facts) == Some(0) { Content::Empty } else { st.q[qi].content };
            st.q[qi].content = base.push(class);
        }
        let one = Expr::konst(1);
        if st.q[qi].marked == Tri::Yes {
            st.q[qi].since = st.q[qi].since.add(&one);
        } else {
            st.q[qi].ahead = st.q[qi].ahead.add(&one);
        }
        self.record_occ(st, qi, pc, ctx);
    }

    fn record_occ(&mut self, st: &AbsState, qi: usize, pc: u32, ctx: &WalkCtx) {
        if ctx.quiet {
            return;
        }
        let occ = st.q[qi].occupancy();
        match self.ub(&occ, &st.facts) {
            None => {
                self.unbounded[qi] = true;
                self.emit(
                    Rule::UnboundedOccupancy,
                    Severity::Error,
                    Some(QKINDS[qi]),
                    Some(pc),
                    "queue occupancy has no static bound: the leading loop is not strip-mined".into(),
                );
            }
            Some(u) => {
                self.max_occ[qi] = self.max_occ[qi].max(u);
                let size = self.config.size_of(qi) as i64;
                if u > size {
                    self.emit(
                        Rule::Overflow,
                        Severity::Error,
                        Some(QKINDS[qi]),
                        Some(pc),
                        format!("occupancy can reach {u}, exceeding the configured size {size}: strip-mine with a smaller chunk"),
                    );
                }
            }
        }
    }

    fn pop(&mut self, st: &mut AbsState, qi: usize, pc: u32, ctx: &WalkCtx) {
        let occ = st.q[qi].occupancy();
        if !ctx.quiet {
            let lo = self.lo(&occ, &st.facts);
            if lo.is_none() || lo.is_some_and(|l| l < 1) {
                let definite = self.ub(&occ, &st.facts).is_some_and(|u| u < 1);
                let msg = if definite {
                    "pop executes on a provably empty queue".to_string()
                } else {
                    "cannot prove the queue is non-empty at this pop".to_string()
                };
                let d =
                    Diagnostic::new(Rule::Underflow, Severity::Error, Some(QKINDS[qi]), Some(pc), msg, self.program);
                if self.pending_depth > 0 {
                    let dup = |x: &Diagnostic| x.rule == d.rule && x.pc == d.pc && x.queue == d.queue;
                    if !self.pending.iter().any(|(_, x)| dup(x)) && !self.diags.iter().any(dup) {
                        self.pending.push((qi, d));
                    }
                } else {
                    self.push_diag(d);
                }
            }
        }
        // Symbolic decrement. A possibly-negative lower bound is a harmless
        // over-approximation: `lo` is only ever consulted to prove occupancy
        // >= 1, and joins clamp queue lower bounds back at zero.
        let one = Expr::konst(1);
        let ahead_empty = self.ub(&st.q[qi].ahead, &st.facts) == Some(0);
        if ahead_empty {
            st.q[qi].since = st.q[qi].since.sub(&one);
        } else {
            st.q[qi].ahead = st.q[qi].ahead.sub(&one);
        }
    }

    fn check_balance(&mut self, from: usize, st: &AbsState) {
        let pc = self.cfg.blocks[from].end.saturating_sub(1);
        for (qi, &qkind) in QKINDS.iter().enumerate() {
            let occ = st.q[qi].occupancy();
            let lo = self.lo(&occ, &st.facts);
            let hi = self.ub(&occ, &st.facts);
            if lo.is_some_and(|l| l > 0) {
                self.emit(
                    Rule::UnbalancedAtExit,
                    Severity::Error,
                    Some(qkind),
                    Some(pc),
                    format!(
                        "program exits with at least {} queued entr{} never popped",
                        lo.unwrap(),
                        if lo == Some(1) { "y" } else { "ies" }
                    ),
                );
            } else if hi.is_none() || hi.is_some_and(|h| h > 0) {
                self.emit(
                    Rule::UnbalancedAtExit,
                    Severity::Warning,
                    Some(qkind),
                    Some(pc),
                    "cannot prove the queue is empty at program exit".into(),
                );
            }
        }
    }
}

/// Translation validation of the speculation contract for a CFD-spec
/// rewrite of the branch at `branch_pc` of `original`.
///
/// The leading loop of `transformed` (the region between its
/// `cfd_loop1` and `cfd_loop2` labels) runs every iteration's predicate
/// slice before any trailing-loop store executes, so it must contain
///
/// * **no store** (or store-like queue save/restore) —
///   [`Rule::HoistedStore`];
/// * **no load without a speculation-safety proof** on the original
///   program ([`crate::speculation_safety`]): every hoisted load must
///   be byte-identical to a `ProvenSafe` load of the original loop —
///   [`Rule::HoistedUnsafeLoad`].
///
/// Non-binding prefetches are exempt. BQ discipline is covered by the
/// ordinary [`lint_program`] pass the transform already runs; callers
/// append these diagnostics to that report.
pub fn lint_speculation(original: &Program, transformed: &Program, branch_pc: u32) -> Vec<Diagnostic> {
    let degraded = |msg: &str| {
        vec![Diagnostic::new(
            Rule::AnalysisDegraded,
            Severity::Error,
            None,
            None,
            format!("speculation contract unverifiable: {msg}"),
            transformed,
        )]
    };
    let cfg = Cfg::build(original);
    let dom = crate::DomTree::dominators(&cfg);
    let loops = crate::find_loops(&cfg, &dom);
    let Some(lp) = loops.iter().filter(|l| l.contains(cfg.block_of(branch_pc))).min_by_key(|l| l.blocks.len()) else {
        return degraded("branch not in a loop of the original program");
    };
    let loop_start = lp.blocks.iter().map(|&b| cfg.blocks[b].start).min().expect("non-empty loop");
    // Every load of the to-be-hoisted header region is a candidate.
    let candidates: std::collections::BTreeSet<u32> =
        (loop_start..branch_pc).filter(|&pc| matches!(original.fetch(pc), Some(Instr::Load { .. }))).collect();
    let spec = crate::speculation_safety(original, &cfg, lp, branch_pc, &candidates);
    let safe: Vec<Instr> = spec
        .loads
        .iter()
        .filter(|l| l.safety == crate::LoadSafety::ProvenSafe)
        .filter_map(|l| original.fetch(l.pc))
        .collect();

    let (Some(l1), Some(l2)) = (transformed.label("cfd_loop1"), transformed.label("cfd_loop2")) else {
        return degraded("cfd_loop1/cfd_loop2 labels missing from the transformed program");
    };
    let mut out = Vec::new();
    for pc in l1..l2 {
        let Some(instr) = transformed.fetch(pc) else { continue };
        match instr {
            Instr::Load { .. } if !safe.contains(&instr) => {
                out.push(Diagnostic::new(
                    Rule::HoistedUnsafeLoad,
                    Severity::Error,
                    None,
                    Some(pc),
                    "load hoisted into the leading loop without a speculation-safety proof".into(),
                    transformed,
                ));
            }
            Instr::Store { .. } => {
                out.push(Diagnostic::new(
                    Rule::HoistedStore,
                    Severity::Error,
                    None,
                    Some(pc),
                    "store hoisted into the leading loop; stores must never speculate".into(),
                    transformed,
                ));
            }
            _ if instr.is_mem() && !matches!(instr, Instr::Load { .. } | Instr::Prefetch { .. }) => {
                out.push(Diagnostic::new(
                    Rule::HoistedStore,
                    Severity::Error,
                    None,
                    Some(pc),
                    "queue save/restore hoisted into the leading loop".into(),
                    transformed,
                ));
            }
            _ => {}
        }
    }
    out
}

// Loop processing lives in a separate impl block for readability.
mod loop_pass;

#[cfg(test)]
mod tests;
