//! Branch classification (paper §II-B).
//!
//! Every conditional branch inside a loop is placed into one of the paper's
//! classes by comparing the size of its control-dependent region with the
//! overlap between that region and the branch's backward slice:
//!
//! * **Hammock** — small control-dependent region; if-conversion territory.
//! * **SeparableTotal** — large region, slice disjoint from it: CFD applies
//!   directly.
//! * **SeparablePartial** — large region, slice contains a *few* of its
//!   control-dependent instructions: CFD + if-converted first loop.
//! * **Inseparable** — slice entangled with the region; CFD does not apply.
//! * **SeparableLoopBranch** — the controlling branch of an inner loop whose
//!   trip-count computation is separable from the loop body: CFD(TQ).
//! * **NotAnalyzed** — not inside a loop.

use crate::cfg::Cfg;
use crate::control_dep::ControlDeps;
use crate::dom::DomTree;
use crate::loops::{find_loops, is_nested, NaturalLoop};
use crate::slice::{backward_slice, backward_slice_with, AliasMode};
use crate::spec::{speculation_safety, LoadSafety};
use cfd_isa::{Instr, Program};
use std::collections::BTreeSet;
use std::fmt;

/// The paper's control-flow classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BranchClass {
    /// Small control-dependent region: if-convert.
    Hammock,
    /// Totally separable: CFD(BQ).
    SeparableTotal,
    /// Partially separable: CFD(BQ) with an if-converted first loop.
    SeparablePartial,
    /// Backward slice entangled with the control-dependent region.
    Inseparable,
    /// Heuristically inseparable, but the precise alias tier proved the
    /// entangling stores disjoint and every slice load safe to hoist:
    /// speculative CFD applies ([`crate::apply_cfd_spec`]).
    SpeculativelySeparable,
    /// Separable loop-branch: CFD(TQ).
    SeparableLoopBranch,
    /// Inseparable loop-branch (trip count depends on the loop body).
    InseparableLoopBranch,
    /// Not inside any loop.
    NotAnalyzed,
}

impl fmt::Display for BranchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchClass::Hammock => "hammock",
            BranchClass::SeparableTotal => "separable (total)",
            BranchClass::SeparablePartial => "separable (partial)",
            BranchClass::Inseparable => "inseparable",
            BranchClass::SpeculativelySeparable => "speculatively separable",
            BranchClass::SeparableLoopBranch => "separable loop-branch",
            BranchClass::InseparableLoopBranch => "inseparable loop-branch",
            BranchClass::NotAnalyzed => "not analyzed",
        };
        f.write_str(s)
    }
}

/// Classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifyConfig {
    /// Control-dependent regions of at most this many instructions are
    /// hammocks (profitable to if-convert).
    pub hammock_max_instrs: usize,
    /// Slice∩region overlaps of at most this many instructions keep a
    /// branch *partially* separable (if-convertible first loop).
    pub partial_max_overlap: usize,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig { hammock_max_instrs: 4, partial_max_overlap: 3 }
    }
}

/// Classification result for one static branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchReport {
    /// The branch PC.
    pub pc: u32,
    /// Assigned class.
    pub class: BranchClass,
    /// Instructions control-dependent on the branch (within its loop).
    pub cd_region_instrs: usize,
    /// Instructions in the branch's backward slice (within its loop).
    pub slice_instrs: usize,
    /// Slice instructions that are control-dependent on the branch.
    pub overlap_instrs: usize,
    /// The class the same-base-register heuristic alone assigns. Differs
    /// from `class` only when the precise alias tier upgraded the branch
    /// to [`BranchClass::SpeculativelySeparable`].
    pub heuristic_class: BranchClass,
    /// Loads in the governing backward slice.
    pub slice_loads: usize,
    /// Slice loads the speculation contract proves safe to hoist
    /// (computed only on the precise tier; 0 elsewhere).
    pub proven_safe_loads: usize,
    /// Slice loads that failed the speculation contract (precise tier).
    pub unsafe_loads: usize,
    /// (load pc, store pc) disjointness proofs backing the upgrade; the
    /// dynamic cross-check in `cfd-harden` can attempt to refute them.
    pub disjoint_claims: Vec<(u32, u32)>,
}

/// Classifies every conditional branch of `program`.
pub fn classify_program(program: &Program, cfg_opt: Option<&Cfg>, config: ClassifyConfig) -> Vec<BranchReport> {
    let built;
    let cfg = match cfg_opt {
        Some(c) => c,
        None => {
            built = Cfg::build(program);
            &built
        }
    };
    let dom = DomTree::dominators(cfg);
    let pdom = DomTree::post_dominators(cfg);
    let cd = ControlDeps::compute(cfg, &pdom);
    let loops = find_loops(cfg, &dom);

    let mut reports = Vec::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        if !instr.is_plain_conditional() {
            continue;
        }
        let pc = pc as u32;
        reports.push(classify_branch(program, cfg, &cd, &loops, pc, config));
    }
    reports
}

fn innermost_loop(loops: &[NaturalLoop], block: usize) -> Option<&NaturalLoop> {
    loops.iter().filter(|l| l.contains(block)).min_by_key(|l| l.blocks.len())
}

fn classify_branch(
    program: &Program,
    cfg: &Cfg,
    cd: &ControlDeps,
    loops: &[NaturalLoop],
    pc: u32,
    config: ClassifyConfig,
) -> BranchReport {
    let not_analyzed = || BranchReport {
        pc,
        class: BranchClass::NotAnalyzed,
        cd_region_instrs: 0,
        slice_instrs: 0,
        overlap_instrs: 0,
        heuristic_class: BranchClass::NotAnalyzed,
        slice_loads: 0,
        proven_safe_loads: 0,
        unsafe_loads: 0,
        disjoint_claims: Vec::new(),
    };
    let count_loads =
        |pcs: &BTreeSet<u32>| pcs.iter().filter(|&&p| matches!(program.fetch(p), Some(Instr::Load { .. }))).count();
    let block = cfg.block_of(pc);
    let Some(lp) = innermost_loop(loops, block) else {
        return not_analyzed();
    };

    // Is this the controlling branch of `lp` (one successor continues the
    // loop, the other exits it)? Then it is a loop-branch candidate when
    // `lp` nests in an outer loop (paper Fig. 5: for-in-for with a
    // data-dependent trip count).
    let succs = &cfg.blocks[block].succs;
    let is_loop_controlling = pc == cfg.blocks[block].end - 1
        && succs.iter().any(|s| lp.contains(*s))
        && succs.iter().any(|s| !lp.contains(*s));
    if is_loop_controlling {
        if let Some(outer) = loops.iter().find(|o| is_nested(lp, o)) {
            // Trip-count separability: slice the branch within the *inner*
            // loop; induction self-recurrences are allowed, anything else
            // defined inside the inner loop entangles the trip count.
            let slice = backward_slice(program, cfg, lp, pc);
            let body_pcs: BTreeSet<u32> =
                lp.blocks.iter().filter(|&&b| b < cfg.len() - 1).flat_map(|&b| cfg.blocks[b].pcs()).collect();
            let entangled = slice
                .pcs
                .iter()
                .filter(|p| body_pcs.contains(p))
                .filter(|&&p| {
                    let i = program.fetch(p).expect("in range");
                    !is_induction(&i)
                })
                .count();
            let _ = outer;
            let class =
                if entangled == 0 { BranchClass::SeparableLoopBranch } else { BranchClass::InseparableLoopBranch };
            return BranchReport {
                pc,
                class,
                cd_region_instrs: lp.instr_count(cfg),
                slice_instrs: slice.pcs.len(),
                overlap_instrs: entangled,
                heuristic_class: class,
                slice_loads: count_loads(&slice.pcs),
                proven_safe_loads: 0,
                unsafe_loads: 0,
                disjoint_claims: Vec::new(),
            };
        }
    }

    if is_loop_controlling {
        // The exit branch of a non-nested loop: a trip-count predictor /
        // plain predictor concern, outside the paper's taxonomy.
        return not_analyzed();
    }

    // Regular branch: measure the CD region within the loop and the
    // slice/region overlap. The same-base-register heuristic tier is the
    // primary classifier; the precise alias tier only ever *upgrades* a
    // heuristically inseparable branch, so existing classes never churn.
    let region_blocks: Vec<usize> =
        cd.dependents(block).iter().copied().filter(|b| lp.contains(*b) && *b != block).collect();
    let cd_region_instrs: usize = region_blocks.iter().map(|&b| cfg.blocks[b].len()).sum();
    let region_pcs: BTreeSet<u32> = region_blocks.iter().flat_map(|&b| cfg.blocks[b].pcs()).collect();
    let classify = |overlap: usize| {
        if cd_region_instrs == 0 {
            // An exit/latch branch of this loop without inner-loop nesting.
            BranchClass::NotAnalyzed
        } else if cd_region_instrs <= config.hammock_max_instrs {
            BranchClass::Hammock
        } else if overlap == 0 {
            BranchClass::SeparableTotal
        } else if overlap <= config.partial_max_overlap {
            BranchClass::SeparablePartial
        } else {
            BranchClass::Inseparable
        }
    };

    let slice = backward_slice_with(program, cfg, lp, pc, AliasMode::Heuristic);
    let overlap_instrs = slice.pcs.intersection(&region_pcs).count();
    let heuristic_class = classify(overlap_instrs);
    let mut report = BranchReport {
        pc,
        class: heuristic_class,
        cd_region_instrs,
        slice_instrs: slice.pcs.len(),
        overlap_instrs,
        heuristic_class,
        slice_loads: count_loads(&slice.pcs),
        proven_safe_loads: 0,
        unsafe_loads: 0,
        disjoint_claims: Vec::new(),
    };
    if heuristic_class != BranchClass::Inseparable {
        return report;
    }

    // Precise tier: re-slice with the value-range alias oracle, then check
    // the speculation contract on every load the slice would hoist.
    let precise = backward_slice_with(program, cfg, lp, pc, AliasMode::Precise);
    let precise_overlap = precise.pcs.intersection(&region_pcs).count();
    let precise_class = classify(precise_overlap);
    let has_store = precise
        .pcs
        .iter()
        .any(|&p| matches!(program.fetch(p), Some(i) if i.is_mem() && !matches!(i, Instr::Load { .. })));
    // Candidate loads are what the transform would actually hoist: every
    // loop load ahead of the branch outside the CD region (the leading
    // loop re-runs the whole header, not just the slice pcs).
    let load_pcs: BTreeSet<u32> = lp
        .blocks
        .iter()
        .filter(|&&b| b < cfg.len() - 1)
        .flat_map(|&b| cfg.blocks[b].pcs())
        .filter(|&p| p < pc && !region_pcs.contains(&p))
        .filter(|&p| matches!(program.fetch(p), Some(Instr::Load { .. })))
        .collect();
    if !matches!(precise_class, BranchClass::SeparableTotal | BranchClass::SeparablePartial) || has_store {
        return report;
    }
    let spec = speculation_safety(program, cfg, lp, pc, &load_pcs);
    report.proven_safe_loads = spec.loads.iter().filter(|l| l.safety == LoadSafety::ProvenSafe).count();
    report.unsafe_loads = spec.loads.len() - report.proven_safe_loads;
    if !load_pcs.is_empty() && spec.all_safe() && !spec.claims.is_empty() {
        report.class = BranchClass::SpeculativelySeparable;
        report.slice_instrs = precise.pcs.len();
        report.overlap_instrs = precise_overlap;
        report.slice_loads = load_pcs.len();
        report.disjoint_claims = spec.claims.iter().map(|c| (c.load_pc, c.store_pc)).collect();
    }
    report
}

fn is_induction(instr: &Instr) -> bool {
    match instr {
        Instr::Alu { rd, rs1, src2, .. } => rd == rs1 && matches!(src2, cfd_isa::Src2::Imm(_)),
        Instr::Li { .. } => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::{Assembler, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    fn classify_one(program: &Program, pc: u32) -> BranchReport {
        classify_program(program, None, ClassifyConfig::default())
            .into_iter()
            .find(|r| r.pc == pc)
            .expect("branch classified")
    }

    /// Builds a loop with a guarded region of `cd_len` filler instructions;
    /// `entangle` makes the predicate depend on a CD-updated register.
    fn guarded_loop(cd_len: usize, entangle: bool) -> (Program, u32) {
        let (i, n, p, acc) = (r(1), r(2), r(3), r(4));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.label("top");
        if entangle {
            a.slt(p, acc, n);
        } else {
            a.xor(p, i, 3i64);
            a.and(p, p, 1i64);
        }
        let bpc = a.here();
        a.beqz(p, "skip");
        for k in 0..cd_len {
            if entangle && k == 0 {
                a.addi(acc, acc, 1);
            } else {
                a.addi(r(5 + (k % 3)), r(5 + (k % 3)), 1);
            }
        }
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        (a.finish().unwrap(), bpc)
    }

    #[test]
    fn small_region_is_hammock() {
        let (p, bpc) = guarded_loop(3, false);
        let rep = classify_one(&p, bpc);
        assert_eq!(rep.class, BranchClass::Hammock);
        assert_eq!(rep.cd_region_instrs, 3);
    }

    #[test]
    fn large_disjoint_region_is_totally_separable() {
        let (p, bpc) = guarded_loop(12, false);
        let rep = classify_one(&p, bpc);
        assert_eq!(rep.class, BranchClass::SeparableTotal);
        assert_eq!(rep.overlap_instrs, 0);
    }

    #[test]
    fn small_feedback_is_partially_separable() {
        let (p, bpc) = guarded_loop(12, true);
        let rep = classify_one(&p, bpc);
        assert_eq!(rep.class, BranchClass::SeparablePartial);
        assert_eq!(rep.overlap_instrs, 1);
    }

    #[test]
    fn heavy_feedback_is_inseparable() {
        // Predicate folds in many CD-updated registers.
        let (i, n, p, a1, a2, a3, a4) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.label("top");
        a.add(p, a1, a2);
        a.add(p, p, a3);
        a.add(p, p, a4);
        a.and(p, p, 1i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.addi(a1, a1, 1);
        a.addi(a2, a2, 3);
        a.addi(a3, a3, 5);
        a.addi(a4, a4, 7);
        a.addi(r(8), r(8), 1);
        a.addi(r(9), r(9), 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let rep = classify_one(&a.finish().unwrap(), bpc);
        assert_eq!(rep.class, BranchClass::Inseparable);
        assert!(rep.overlap_instrs >= 4);
    }

    #[test]
    fn branch_outside_loop_not_analyzed() {
        let mut a = Assembler::new();
        a.beqz(r(1), "end");
        a.addi(r(2), r(2), 1);
        a.label("end");
        a.halt();
        let rep = classify_one(&a.finish().unwrap(), 0);
        assert_eq!(rep.class, BranchClass::NotAnalyzed);
    }

    #[test]
    fn nested_loop_branch_with_invariant_trip_is_separable() {
        // for i { m = a[i]; for j in 0..m { body } } — astar Fig. 14 shape.
        let (i, n, j, m, base, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.label("outer");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(m, 0, tmp); // trip count a[i], inner-loop invariant
        a.li(j, 0);
        a.j("inner_test");
        a.label("inner_body");
        a.addi(r(7), r(7), 1);
        a.addi(j, j, 1);
        a.label("inner_test");
        let bpc = a.here();
        a.blt(j, m, "inner_body");
        a.addi(i, i, 1);
        a.blt(i, n, "outer");
        a.halt();
        let rep = classify_one(&a.finish().unwrap(), bpc);
        assert_eq!(rep.class, BranchClass::SeparableLoopBranch);
    }

    #[test]
    fn hammock_cutoff_is_inclusive() {
        // Region of exactly `hammock_max_instrs` is still a hammock; one
        // more instruction tips it over.
        let cutoff = ClassifyConfig::default().hammock_max_instrs;
        let (p, bpc) = guarded_loop(cutoff, false);
        assert_eq!(classify_one(&p, bpc).class, BranchClass::Hammock);
        let (p, bpc) = guarded_loop(cutoff + 1, false);
        assert_eq!(classify_one(&p, bpc).class, BranchClass::SeparableTotal);
    }

    /// A strided scan whose predicate folds in `feedbacks` CD-updated
    /// registers, with a CD store through the same base register the
    /// slice load uses (heuristically entangling, precisely disjoint).
    fn mem_entangled_loop(feedbacks: usize) -> (Program, u32) {
        let (i, n, base, x, p, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.mv(p, x);
        for k in 0..feedbacks {
            a.add(p, p, r(10 + k));
        }
        a.slt(p, p, 500i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        for k in 0..feedbacks {
            a.addi(r(10 + k), r(10 + k), 1);
        }
        a.sd(x, 800, tmp);
        for k in 0..6 {
            a.addi(r(20 + k % 3), r(20 + k % 3), 1);
        }
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        (a.finish().unwrap(), bpc)
    }

    #[test]
    fn partial_overlap_edge_is_inclusive() {
        // 2 feedback registers + the heuristically-aliasing store land the
        // overlap exactly on `partial_max_overlap`: still partial.
        let (p, bpc) = mem_entangled_loop(2);
        let rep = classify_one(&p, bpc);
        assert_eq!(rep.overlap_instrs, ClassifyConfig::default().partial_max_overlap);
        assert_eq!(rep.class, BranchClass::SeparablePartial);
        assert_eq!(rep.heuristic_class, BranchClass::SeparablePartial);
    }

    #[test]
    fn one_past_the_partial_edge_upgrades_via_precise_alias() {
        // 3 feedbacks + the store = overlap 4: heuristically inseparable.
        // The precise tier proves the store disjoint, dropping the overlap
        // back to the feedback registers (3, partial) and proving the one
        // slice load safe: the branch upgrades.
        let (p, bpc) = mem_entangled_loop(3);
        let rep = classify_one(&p, bpc);
        assert_eq!(rep.heuristic_class, BranchClass::Inseparable);
        assert_eq!(rep.class, BranchClass::SpeculativelySeparable);
        assert_eq!(rep.overlap_instrs, 3, "precise slice drops only the store");
        assert_eq!((rep.slice_loads, rep.proven_safe_loads, rep.unsafe_loads), (1, 1, 0));
        assert_eq!(rep.disjoint_claims.len(), 1);
    }

    #[test]
    fn register_only_entanglement_never_upgrades() {
        // Four pure-register feedbacks: the precise alias tier has nothing
        // to refute, so the branch stays inseparable with zero claims.
        let (i, n, p) = (r(1), r(2), r(3));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(i, 0);
        a.label("top");
        a.mv(p, i);
        for k in 0..4 {
            a.add(p, p, r(10 + k));
        }
        a.and(p, p, 1i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        for k in 0..4 {
            a.addi(r(10 + k), r(10 + k), 1);
        }
        a.addi(r(20), r(20), 1);
        a.addi(r(21), r(21), 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let rep = classify_one(&a.finish().unwrap(), bpc);
        assert_eq!(rep.class, BranchClass::Inseparable);
        assert_eq!(rep.heuristic_class, BranchClass::Inseparable);
        assert!(rep.disjoint_claims.is_empty());
    }

    #[test]
    fn irreducible_inner_region_is_tolerated() {
        // The outer loop carries a store-entangled branch; after it, an
        // irreducible two-entry cycle (L1 <-> L2). The precise tier must
        // poison the cycle's registers, not the induction, so the upgrade
        // still goes through — and nothing panics.
        let (i, n, base, x, p, tmp, s, u, v) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.slt(p, x, 500i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.sd(x, 800, tmp);
        a.sd(x, 1600, tmp);
        a.sd(x, 2400, tmp);
        a.sd(x, 3200, tmp);
        a.add(s, s, x);
        a.xor(r(12), r(12), x);
        a.label("skip");
        a.beqz(s, "L2"); // second entry into the cycle: irreducible
        a.label("L1");
        a.addi(u, u, 1);
        a.j("L2");
        a.label("L2");
        a.addi(v, v, 1);
        a.beqz(v, "L1");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let rep = classify_one(&program, bpc);
        assert_eq!(rep.heuristic_class, BranchClass::Inseparable);
        assert_eq!(rep.class, BranchClass::SpeculativelySeparable);
        assert_eq!(rep.disjoint_claims.len(), 4);
    }

    #[test]
    fn unreachable_block_inside_the_loop_is_tolerated() {
        // Dead code between the CD region and the skip label feeds the
        // CFG an unreachable block; classification must not panic and the
        // reachable structure still upgrades.
        let (i, n, base, x, p, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.slt(p, x, 500i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.sd(x, 800, tmp);
        a.sd(x, 1600, tmp);
        a.sd(x, 2400, tmp);
        a.sd(x, 3200, tmp);
        a.add(r(7), r(7), x);
        a.j("skip");
        a.addi(r(8), r(8), 1); // unreachable
        a.addi(r(9), r(9), 1); // unreachable
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let rep = classify_one(&program, bpc);
        assert_eq!(rep.heuristic_class, BranchClass::Inseparable);
        assert_eq!(rep.class, BranchClass::SpeculativelySeparable);
    }

    #[test]
    fn trip_count_updated_in_body_is_inseparable_loop_branch() {
        // The inner loop's bound m is recomputed from body state each
        // iteration: the trip count is NOT separable.
        let (i, n, j, m, acc) = (r(1), r(2), r(3), r(4), r(7));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.label("outer");
        a.li(j, 0);
        a.li(m, 5);
        a.j("inner_test");
        a.label("inner_body");
        a.addi(acc, acc, 1);
        a.srl(m, acc, 2i64); // bound depends on the body
        a.addi(j, j, 1);
        a.label("inner_test");
        let bpc = a.here();
        a.blt(j, m, "inner_body");
        a.addi(i, i, 1);
        a.blt(i, n, "outer");
        a.halt();
        let rep = classify_one(&a.finish().unwrap(), bpc);
        assert_eq!(rep.class, BranchClass::InseparableLoopBranch);
    }
}
