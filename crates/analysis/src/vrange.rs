//! Per-register symbolic value-range and address-expression analysis.
//!
//! For one natural loop, every register is classified as a *constant*
//! (resolved through a unique dominating `li`), an *invariant symbol*
//! (an interned atom: fixed for the whole loop execution but statically
//! unknown, like the Min/Max trip-count symbols the queue verifier
//! interns), an *induction variable* (a single unconditional
//! `r = r + stride` per iteration, with a header-value range derived
//! from its `li` init and the `blt r, n, top` latch guard), or
//! *unknown*. A single abstract pass over the loop body in reverse
//! postorder then resolves the address of every load and store to an
//! affine expression
//!
//! ```text
//!     addr = k  +  Σ coeff·atom  +  Σ coeff·ind,     ind ∈ [lo, hi]
//! ```
//!
//! collapsed into an iteration-invariant symbolic displacement plus a
//! numeric first-byte interval covering **all** iterations of the loop.
//! The [`mdep`](crate::mdep) oracle compares two such summaries to prove
//! load/store disjointness; anything the pass cannot bound degrades to
//! [`AddrRange::Unknown`], which downstream consumers treat as
//! may-alias-anything (sound by construction).
//!
//! Soundness notes:
//! * Atoms stand for values fixed across the loop, so they may cancel
//!   between two references compared *cross-iteration*. Registers
//!   written inside the loop never become atoms; their unknown values
//!   poison expressions to `Unknown` instead.
//! * All arithmetic is checked; any overflow degrades to `Unknown`
//!   rather than wrapping (the machine wraps, the analysis gives up).
//! * Blocks reached through a retreating edge (inner loops, irreducible
//!   regions) restart from a poisoned state in which every register
//!   defined anywhere in the loop is `Unknown`.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::loops::{find_loops, is_nested, NaturalLoop};
use cfd_isa::{AluOp, BranchCond, Instr, Program, Reg, Src2};
use std::collections::{BTreeMap, BTreeSet};

/// An affine value: `k + Σ coeff·atom + Σ coeff·induction`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Expr {
    /// Constant term.
    pub k: i64,
    /// Interned invariant atoms (id → coefficient, zero coeffs dropped).
    pub syms: BTreeMap<u32, i64>,
    /// Induction variables (register → coefficient, zero coeffs dropped).
    pub inds: BTreeMap<Reg, i64>,
}

impl Expr {
    fn constant(k: i64) -> Expr {
        Expr { k, ..Expr::default() }
    }

    fn is_const(&self) -> bool {
        self.syms.is_empty() && self.inds.is_empty()
    }

    fn add_signed(&self, other: &Expr, sign: i64) -> Option<Expr> {
        let mut out = self.clone();
        out.k = out.k.checked_add(other.k.checked_mul(sign)?)?;
        for (&a, &c) in &other.syms {
            let e = out.syms.entry(a).or_insert(0);
            *e = e.checked_add(c.checked_mul(sign)?)?;
        }
        for (&r, &c) in &other.inds {
            let e = out.inds.entry(r).or_insert(0);
            *e = e.checked_add(c.checked_mul(sign)?)?;
        }
        out.syms.retain(|_, c| *c != 0);
        out.inds.retain(|_, c| *c != 0);
        Some(out)
    }

    fn scale(&self, factor: i64) -> Option<Expr> {
        let mut out = Expr::constant(self.k.checked_mul(factor)?);
        for (&a, &c) in &self.syms {
            out.syms.insert(a, c.checked_mul(factor)?);
        }
        for (&r, &c) in &self.inds {
            out.inds.insert(r, c.checked_mul(factor)?);
        }
        out.syms.retain(|_, c| *c != 0);
        out.inds.retain(|_, c| *c != 0);
        Some(out)
    }
}

/// Abstract value of a register at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    Expr(Expr),
    Unknown,
}

/// An induction variable's per-iteration behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndInfo {
    /// Per-iteration stride (always positive; other shapes are not
    /// recognized as inductions).
    pub stride: i64,
    /// Header value on the first iteration, when resolvable.
    pub init: Option<i64>,
    /// Inclusive header-value range over all iterations, when both the
    /// init and every latch bound are resolvable constants.
    pub range: Option<(i64, i64)>,
}

/// Address summary of one load or store, over all loop iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrRange {
    /// First-byte interval `[lo, hi]` (inclusive) displaced by an
    /// iteration-invariant symbolic part. Two summaries are only
    /// comparable when their symbolic parts are identical.
    Known {
        /// Invariant atoms (id → coefficient).
        syms: BTreeMap<u32, i64>,
        /// Smallest first byte over all iterations.
        lo: i64,
        /// Largest first byte over all iterations.
        hi: i64,
    },
    /// The pass could not bound the address.
    Unknown,
}

/// One load or store of the analyzed loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRef {
    /// The instruction's PC.
    pub pc: u32,
    /// Whether it writes memory.
    pub is_store: bool,
    /// Access width in bytes.
    pub width: u8,
    /// Address summary over all iterations.
    pub addr: AddrRange,
}

/// Result of the analysis over one loop.
#[derive(Debug, Clone)]
pub struct LoopValues {
    atoms: Vec<Reg>,
    inds: BTreeMap<Reg, IndInfo>,
    mem: BTreeMap<u32, MemRef>,
}

impl LoopValues {
    /// Analyzes `lp` of `program`.
    pub fn analyze(program: &Program, cfg: &Cfg, lp: &NaturalLoop) -> LoopValues {
        Analyzer::new(program, cfg, lp).run()
    }

    /// The address summary of the load/store at `pc`, if `pc` is a
    /// memory instruction of the analyzed loop.
    pub fn mem_ref(&self, pc: u32) -> Option<&MemRef> {
        self.mem.get(&pc)
    }

    /// All loads and stores of the loop, in PC order.
    pub fn mem_refs(&self) -> impl Iterator<Item = &MemRef> {
        self.mem.values()
    }

    /// The invariant register an interned atom id stands for.
    pub fn atom_reg(&self, id: u32) -> Reg {
        self.atoms[id as usize]
    }

    /// Induction info for `reg`, when it was recognized as an induction
    /// variable of the loop.
    pub fn induction(&self, reg: Reg) -> Option<&IndInfo> {
        self.inds.get(&reg)
    }
}

struct Analyzer<'a> {
    program: &'a Program,
    cfg: &'a Cfg,
    lp: &'a NaturalLoop,
    /// Registers with at least one definition inside the loop.
    loop_defined: BTreeSet<Reg>,
    /// Defs per register over the whole program.
    defs: BTreeMap<Reg, Vec<u32>>,
    atoms: Vec<Reg>,
    atom_ids: BTreeMap<Reg, u32>,
    inds: BTreeMap<Reg, IndInfo>,
    mem: BTreeMap<u32, MemRef>,
}

impl<'a> Analyzer<'a> {
    fn new(program: &'a Program, cfg: &'a Cfg, lp: &'a NaturalLoop) -> Analyzer<'a> {
        let mut defs: BTreeMap<Reg, Vec<u32>> = BTreeMap::new();
        for (pc, instr) in program.instrs().iter().enumerate() {
            if let Some(d) = instr.dest() {
                defs.entry(d).or_default().push(pc as u32);
            }
        }
        let loop_pcs: BTreeSet<u32> =
            lp.blocks.iter().filter(|&&b| b < cfg.len() - 1).flat_map(|&b| cfg.blocks[b].pcs()).collect();
        let loop_defined =
            defs.iter().filter(|(_, pcs)| pcs.iter().any(|p| loop_pcs.contains(p))).map(|(&r, _)| r).collect();
        Analyzer {
            program,
            cfg,
            lp,
            loop_defined,
            defs,
            atoms: Vec::new(),
            atom_ids: BTreeMap::new(),
            inds: BTreeMap::new(),
            mem: BTreeMap::new(),
        }
    }

    fn in_loop(&self, pc: u32) -> bool {
        let b = self.cfg.block_of(pc);
        self.lp.contains(b)
    }

    /// The register's value at loop entry, when it resolves to a
    /// constant: a unique out-of-loop `li` whose block dominates the
    /// loop header (so it executed, with no competing definition).
    fn entry_const(&self, dom: &DomTree, reg: Reg) -> Option<i64> {
        if reg.is_zero() {
            return Some(0);
        }
        let out: Vec<u32> = self.defs.get(&reg)?.iter().copied().filter(|&p| !self.in_loop(p)).collect();
        let [dpc] = out[..] else { return None };
        let Some(Instr::Li { imm, .. }) = self.program.fetch(dpc) else { return None };
        let db = self.cfg.block_of(dpc);
        dom.dominates(db, self.lp.header).then_some(imm)
    }

    fn intern(&mut self, reg: Reg) -> u32 {
        if let Some(&id) = self.atom_ids.get(&reg) {
            return id;
        }
        let id = self.atoms.len() as u32;
        self.atoms.push(reg);
        self.atom_ids.insert(reg, id);
        id
    }

    /// Detects induction variables: a single in-loop definition
    /// `add r, r, imm` (imm > 0) whose block executes every iteration
    /// (dominates every latch) and sits outside any inner cycle.
    fn find_inductions(&mut self, dom: &DomTree, inner: &BTreeSet<usize>) {
        let header_start = self.cfg.blocks[self.lp.header].start;
        let candidates: Vec<(Reg, u32)> = self
            .defs
            .iter()
            .filter_map(|(&reg, pcs)| {
                let in_lp: Vec<u32> = pcs.iter().copied().filter(|&p| self.in_loop(p)).collect();
                let [dpc] = in_lp[..] else { return None };
                Some((reg, dpc))
            })
            .collect();
        for (reg, dpc) in candidates {
            let Some(Instr::Alu { op: AluOp::Add, rd, rs1, src2: Src2::Imm(stride) }) = self.program.fetch(dpc) else {
                continue;
            };
            if rd != reg || rs1 != reg || stride <= 0 {
                continue;
            }
            let db = self.cfg.block_of(dpc);
            if inner.contains(&db) || !self.lp.latches.iter().all(|&l| dom.dominates(db, l)) {
                continue;
            }
            let init = self.entry_const(dom, reg);
            // Every latch must be a `blt reg, bound, header` whose bound
            // is an entry-resolvable constant; the guard caps the header
            // value of every continued iteration at bound - 1.
            let mut hi_bound: Option<i64> = Some(i64::MIN);
            for &l in &self.lp.latches {
                let lpc = self.cfg.blocks[l].end - 1;
                let guard = match self.program.fetch(lpc) {
                    Some(Instr::Branch { cond: BranchCond::Lt, rs1, rs2, target })
                        if target == header_start && rs1 == reg && !self.loop_defined.contains(&rs2) =>
                    {
                        self.entry_const(dom, rs2)
                    }
                    _ => None,
                };
                hi_bound = match (hi_bound, guard) {
                    (Some(h), Some(b)) => Some(h.max(b)),
                    _ => None,
                };
            }
            let range = match (init, hi_bound) {
                // Bottom-tested loop: the first iteration always sees
                // `init`; every later header value passed a `< bound`
                // guard after the increment.
                (Some(s0), Some(b)) => Some((s0, s0.max(b - 1))),
                _ => None,
            };
            self.inds.insert(reg, IndInfo { stride, init, range });
        }
    }

    fn seed(&mut self, dom: &DomTree, reg: Reg) -> Val {
        if reg.is_zero() {
            return Val::Expr(Expr::constant(0));
        }
        if self.inds.contains_key(&reg) {
            let mut e = Expr::default();
            e.inds.insert(reg, 1);
            return Val::Expr(e);
        }
        if self.loop_defined.contains(&reg) {
            return Val::Unknown;
        }
        if let Some(k) = self.entry_const(dom, reg) {
            return Val::Expr(Expr::constant(k));
        }
        let id = self.intern(reg);
        let mut e = Expr::default();
        e.syms.insert(id, 1);
        Val::Expr(e)
    }

    /// Collapses an expression into an address summary: induction terms
    /// fold their whole-loop ranges into the numeric interval; invariant
    /// atoms stay symbolic.
    fn summarize(&self, e: &Expr) -> AddrRange {
        let (mut lo, mut hi) = (e.k, e.k);
        for (reg, &coeff) in &e.inds {
            let Some(IndInfo { range: Some((rlo, rhi)), .. }) = self.inds.get(reg).copied() else {
                return AddrRange::Unknown;
            };
            let (Some(a), Some(b)) = (coeff.checked_mul(rlo), coeff.checked_mul(rhi)) else {
                return AddrRange::Unknown;
            };
            let (Some(nlo), Some(nhi)) = (lo.checked_add(a.min(b)), hi.checked_add(a.max(b))) else {
                return AddrRange::Unknown;
            };
            (lo, hi) = (nlo, nhi);
        }
        AddrRange::Known { syms: e.syms.clone(), lo, hi }
    }

    fn run(mut self) -> LoopValues {
        let dom = DomTree::dominators(self.cfg);
        let all_loops = find_loops(self.cfg, &dom);
        let inner: BTreeSet<usize> =
            all_loops.iter().filter(|o| is_nested(o, self.lp)).flat_map(|o| o.blocks.iter().copied()).collect();
        self.find_inductions(&dom, &inner);

        type State = BTreeMap<Reg, Val>;
        let poisoned: State = self.loop_defined.iter().map(|&r| (r, Val::Unknown)).collect();
        // Registers an inner cycle can rewrite: a back edge of a *nested*
        // natural loop only perturbs these, so blocks reached through it
        // keep every other register's value (the nested header dominates
        // its cycle, so non-rewritten values flow in unchanged).
        let inner_defined: BTreeSet<Reg> = inner
            .iter()
            .filter(|&&b| b < self.cfg.len() - 1)
            .flat_map(|&b| self.cfg.blocks[b].pcs())
            .filter_map(|pc| self.program.fetch(pc).and_then(|i| i.dest()))
            .collect();
        let mut out_states: BTreeMap<usize, State> = BTreeMap::new();

        let order: Vec<usize> = self
            .cfg
            .reverse_postorder()
            .into_iter()
            .filter(|b| self.lp.contains(*b) && *b < self.cfg.len() - 1)
            .collect();
        let mut done: BTreeSet<usize> = BTreeSet::new();
        for &b in &order {
            let mut state: State = if b == self.lp.header {
                // The seeds summarize the loop-carried merge, so the
                // back edges into the header are intentionally ignored.
                State::new()
            } else {
                let preds: Vec<usize> =
                    self.cfg.blocks[b].preds.iter().copied().filter(|p| self.lp.contains(*p)).collect();
                let pending: Vec<usize> = preds.iter().copied().filter(|p| !done.contains(p)).collect();
                if preds.is_empty() || pending.iter().any(|p| !inner.contains(p)) {
                    // Irreducible retreating edge: give up on the block.
                    poisoned.clone()
                } else if !pending.is_empty() {
                    // Nested-loop back edge: merge the processed entry
                    // edges, then drop whatever the nested cycle rewrites.
                    let processed: Vec<usize> = preds.iter().copied().filter(|p| done.contains(p)).collect();
                    let mut merged = processed.first().and_then(|p| out_states.get(p).cloned()).unwrap_or_default();
                    for p in processed.iter().skip(1) {
                        let other = &out_states[p];
                        let keys: BTreeSet<Reg> = merged.keys().chain(other.keys()).copied().collect();
                        for r in keys {
                            let a = merged.get(&r).cloned().unwrap_or_else(|| self.seed(&dom, r));
                            let bside = other.get(&r).cloned().unwrap_or_else(|| self.seed(&dom, r));
                            merged.insert(r, if a == bside { a } else { Val::Unknown });
                        }
                    }
                    for &r in &inner_defined {
                        merged.insert(r, Val::Unknown);
                    }
                    merged
                } else {
                    let mut merged = out_states.get(&preds[0]).cloned().unwrap_or_default();
                    for p in &preds[1..] {
                        let other = &out_states[p];
                        let keys: BTreeSet<Reg> = merged.keys().chain(other.keys()).copied().collect();
                        for r in keys {
                            // Absent keys fall back to the same seed on
                            // both sides, so only present keys can differ.
                            let a = merged.get(&r).cloned().unwrap_or_else(|| self.seed(&dom, r));
                            let bside = other.get(&r).cloned().unwrap_or_else(|| self.seed(&dom, r));
                            merged.insert(r, if a == bside { a } else { Val::Unknown });
                        }
                    }
                    merged
                }
            };
            for pc in self.cfg.blocks[b].pcs() {
                let instr = self.program.fetch(pc).expect("in range");
                let get = |state: &State, r: Reg, this: &mut Self| -> Val {
                    state.get(&r).cloned().unwrap_or_else(|| this.seed(&dom, r))
                };
                match instr {
                    Instr::Load { base, offset, width, .. } | Instr::Store { base, offset, width, .. } => {
                        let addr = match get(&state, base, &mut self) {
                            Val::Expr(e) => match e.add_signed(&Expr::constant(offset), 1) {
                                Some(a) => self.summarize(&a),
                                None => AddrRange::Unknown,
                            },
                            Val::Unknown => AddrRange::Unknown,
                        };
                        let is_store = matches!(instr, Instr::Store { .. });
                        self.mem.insert(pc, MemRef { pc, is_store, width: width.bytes() as u8, addr });
                    }
                    _ => {}
                }
                if let Some(rd) = instr.dest() {
                    let v = match instr {
                        Instr::Li { imm, .. } => Val::Expr(Expr::constant(imm)),
                        Instr::Alu { op, rs1, src2, .. } => {
                            let a = get(&state, rs1, &mut self);
                            let b = match src2 {
                                Src2::Imm(v) => Val::Expr(Expr::constant(v)),
                                Src2::Reg(r) => get(&state, r, &mut self),
                            };
                            match (op, a, b) {
                                (AluOp::Add, Val::Expr(x), Val::Expr(y)) => {
                                    x.add_signed(&y, 1).map_or(Val::Unknown, Val::Expr)
                                }
                                (AluOp::Sub, Val::Expr(x), Val::Expr(y)) => {
                                    x.add_signed(&y, -1).map_or(Val::Unknown, Val::Expr)
                                }
                                (AluOp::Mul, Val::Expr(x), Val::Expr(y)) if y.is_const() => {
                                    x.scale(y.k).map_or(Val::Unknown, Val::Expr)
                                }
                                (AluOp::Mul, Val::Expr(x), Val::Expr(y)) if x.is_const() => {
                                    y.scale(x.k).map_or(Val::Unknown, Val::Expr)
                                }
                                (AluOp::Sll, Val::Expr(x), Val::Expr(y)) if y.is_const() && (0..=32).contains(&y.k) => {
                                    x.scale(1i64 << y.k).map_or(Val::Unknown, Val::Expr)
                                }
                                _ => Val::Unknown,
                            }
                        }
                        _ => Val::Unknown,
                    };
                    state.insert(rd, v);
                }
            }
            out_states.insert(b, state);
            done.insert(b);
        }
        LoopValues { atoms: self.atoms, inds: self.inds, mem: self.mem }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::Assembler;

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    fn analyze(program: &Program) -> (Cfg, Vec<NaturalLoop>) {
        let cfg = Cfg::build(program);
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        (cfg, loops)
    }

    /// Canonical scan: load data[i] for i in 0..100, store above it.
    fn scan() -> (Program, u32, u32) {
        let (i, n, base, x, tmp) = (r(1), r(2), r(3), r(4), r(5));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        let load_pc = a.here();
        a.ld(x, 0, tmp);
        let store_pc = a.here();
        a.sd(x, 0x800, tmp);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        (a.finish().unwrap(), load_pc, store_pc)
    }

    #[test]
    fn induction_range_from_init_and_latch_guard() {
        let (program, _, _) = scan();
        let (cfg, loops) = analyze(&program);
        let v = LoopValues::analyze(&program, &cfg, &loops[0]);
        let ind = v.induction(r(1)).expect("i is an induction variable");
        assert_eq!(ind.stride, 1);
        assert_eq!(ind.range, Some((0, 99)));
    }

    #[test]
    fn strided_addresses_resolve_to_intervals() {
        let (program, load_pc, store_pc) = scan();
        let (cfg, loops) = analyze(&program);
        let v = LoopValues::analyze(&program, &cfg, &loops[0]);
        let ld = v.mem_ref(load_pc).unwrap();
        assert_eq!(ld.addr, AddrRange::Known { syms: BTreeMap::new(), lo: 0x1000, hi: 0x1000 + 8 * 99 });
        let sd = v.mem_ref(store_pc).unwrap();
        assert!(sd.is_store);
        assert_eq!(sd.addr, AddrRange::Known { syms: BTreeMap::new(), lo: 0x1800, hi: 0x1800 + 8 * 99 });
    }

    #[test]
    fn unresolved_base_stays_symbolic_and_comparable() {
        // base comes from outside (not a li): both refs share its atom.
        let (i, n, base, x, tmp) = (r(1), r(2), r(3), r(4), r(5));
        let mut a = Assembler::new();
        a.li(n, 10);
        a.li(i, 0);
        a.add(base, base, r(6)); // unresolvable, but loop-invariant
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        let load_pc = a.here();
        a.ld(x, 0, tmp);
        let store_pc = a.here();
        a.sd(x, 100, tmp);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, loops) = analyze(&program);
        let v = LoopValues::analyze(&program, &cfg, &loops[0]);
        let (la, sa) = (&v.mem_ref(load_pc).unwrap().addr, &v.mem_ref(store_pc).unwrap().addr);
        let AddrRange::Known { syms: ls, lo: 0, hi: 72 } = la else { panic!("load addr {la:?}") };
        let AddrRange::Known { syms: ss, lo: 100, hi: 172 } = sa else { panic!("store addr {sa:?}") };
        assert_eq!(ls, ss, "both share the invariant base atom");
        assert_eq!(v.atom_reg(*ls.keys().next().unwrap()), base);
    }

    #[test]
    fn loaded_base_is_unknown() {
        // Indirect access: the base is loaded inside the loop.
        let (i, n, base, ptr, x) = (r(1), r(2), r(3), r(4), r(5));
        let mut a = Assembler::new();
        a.li(n, 10);
        a.li(i, 0);
        a.li(base, 0x1000);
        a.label("top");
        a.ld(ptr, 0, base);
        let load_pc = a.here();
        a.ld(x, 0, ptr);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, loops) = analyze(&program);
        let v = LoopValues::analyze(&program, &cfg, &loops[0]);
        assert_eq!(v.mem_ref(load_pc).unwrap().addr, AddrRange::Unknown);
    }

    #[test]
    fn conditionally_updated_register_is_not_an_induction() {
        // cnt += 1 under a guard: its range must not be trusted.
        let (i, n, cnt, p, base) = (r(1), r(2), r(3), r(4), r(5));
        let mut a = Assembler::new();
        a.li(n, 10);
        a.li(i, 0);
        a.li(base, 0x1000);
        a.label("top");
        a.and(p, i, 1i64);
        a.beqz(p, "skip");
        a.addi(cnt, cnt, 1);
        a.label("skip");
        let store_pc = a.here();
        a.sd(i, 0, cnt);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, loops) = analyze(&program);
        let v = LoopValues::analyze(&program, &cfg, &loops[0]);
        assert!(v.induction(cnt).is_none());
        assert_eq!(v.mem_ref(store_pc).unwrap().addr, AddrRange::Unknown);
    }

    #[test]
    fn inner_loop_poisons_its_blocks() {
        // tmp is advanced by an inner loop; an address through it after
        // the inner loop must be Unknown, while data[i] stays known.
        let (i, n, j, m, tmp, base, x) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut a = Assembler::new();
        a.li(n, 10);
        a.li(m, 4);
        a.li(i, 0);
        a.li(base, 0x1000);
        a.label("top");
        a.li(j, 0);
        a.mv(tmp, base);
        a.label("inner");
        a.addi(tmp, tmp, 8);
        a.addi(j, j, 1);
        a.blt(j, m, "inner");
        let unknown_pc = a.here();
        a.sd(j, 0, tmp);
        a.sll(x, i, 3i64);
        a.add(x, x, base);
        let known_pc = a.here();
        a.ld(x, 0, x);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, loops) = analyze(&program);
        let outer = loops.iter().find(|l| l.blocks.len() > 2).unwrap();
        let v = LoopValues::analyze(&program, &cfg, outer);
        assert_eq!(v.mem_ref(unknown_pc).unwrap().addr, AddrRange::Unknown);
        match &v.mem_ref(known_pc).unwrap().addr {
            AddrRange::Known { syms, lo, hi } => {
                assert!(syms.is_empty());
                assert_eq!((*lo, *hi), (0x1000, 0x1000 + 8 * 9));
            }
            other => panic!("data[i] should stay known, got {other:?}"),
        }
    }
}
