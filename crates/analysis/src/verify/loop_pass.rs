//! Loop summarization for the CFD queue-discipline verifier.
//!
//! A loop is summarized in two walks: a **shape pass** with fully
//! havocked registers finds per-iteration deltas (which registers are
//! invariant / stride by a constant, which queues move by an exact
//! constant), then a **checking pass** re-walks the body parameterized
//! by an iteration index `ι` bounded by the loop's trip-count
//! expression, so every in-body push/pop check sees the precise
//! occupancy at iteration `ι`. Exit states substitute `ι` with the trip
//! count, which keeps a trailing loop's pops structurally equal to the
//! leading loop's pushes.
//!
//! Data-dependent queue traffic (a nested producer pushing `max(0, m)`
//! entries per outer iteration for a loaded `m`) cannot be an exact
//! per-iteration constant; such loops get a *mirror segment*: the
//! producer's total is an opaque `σ`, and a consumer loop with the same
//! value class and the same trip-count expression consumes exactly `σ`.
//! This pairing is the verifier's one trusted axiom and is validated
//! dynamically by the `cfd-harden` cross-check.
//!
//! Loops whose body contains Mark/Forward or queue save/restore get the
//! conservative steady-state treatment instead: check the first
//! iteration from the real entry state and all later iterations from a
//! verified steady state, so mark flags stay definite on each walk.

use super::*;
use cfd_isa::NUM_REGS;

/// Loop-nest recursion guard.
const MAX_DEPTH: u32 = 16;

impl<'a> Lint<'a> {
    pub(super) fn process_loop(&mut self, li: usize, entry: AbsState, ctx: &mut WalkCtx) -> Vec<Edge> {
        let blocks = self.loops[li].blocks.clone();
        let header = self.loops[li].header;
        let latch_blocks = self.loops[li].latches.clone();
        if ctx.depth >= MAX_DEPTH {
            if !ctx.quiet {
                self.emit(
                    Rule::AnalysisDegraded,
                    Severity::Warning,
                    None,
                    Some(self.cfg.blocks[header].start),
                    "loop nest exceeds the analysis depth limit; queue state is unknown past it".into(),
                );
            }
            return self.havoc_exits(&blocks, &entry);
        }
        let complex = blocks.iter().any(|&b| {
            self.cfg.blocks[b].pcs().any(|pc| {
                matches!(
                    self.program.instrs()[pc as usize].queue_op(),
                    Some(q) if matches!(
                        q.op,
                        QueueOpKind::Mark | QueueOpKind::Forward | QueueOpKind::Save | QueueOpKind::Restore
                    )
                )
            })
        });
        if complex {
            return self.complex_loop(&blocks, header, entry, ctx);
        }

        // ---- Shape pass: havocked entry, find per-iteration deltas. ----
        let mut reg_vars = [SENTINEL; NUM_REGS];
        let mut a_entry = AbsState::initial();
        for (r, rv) in reg_vars.iter_mut().enumerate().skip(1) {
            let v = self.fresh(None, None, None, None);
            *rv = v;
            a_entry.regs[r] = Expr::var(v);
        }
        let mut q_vars = [SENTINEL; 3];
        for (qi, qv) in q_vars.iter_mut().enumerate() {
            let v = self.fresh(Some(0), None, None, None);
            *qv = v;
            let marked = entry.q[qi].marked;
            a_entry.q[qi] = QState {
                ahead: Expr::var(v),
                since: if marked == Tri::No {
                    Expr::konst(0)
                } else {
                    Expr::var(self.fresh(Some(0), None, None, None))
                },
                marked,
                saved: entry.q[qi].saved.clone(),
                content: entry.q[qi].content,
            };
        }
        a_entry.tcr = entry.tcr;
        let mut actx = WalkCtx {
            quiet: true,
            iter_var: None,
            tcr_depth: ctx.tcr_depth,
            depth: ctx.depth + 1,
            segs: [Vec::new(), Vec::new(), Vec::new()],
        };
        let (_, a_latches) = self.walk_region(&blocks, header, a_entry.clone(), Some(li), &mut actx);
        if a_latches.is_empty() {
            // The body can never reach a latch: it runs at most once.
            let mut cctx = WalkCtx {
                quiet: ctx.quiet,
                iter_var: ctx.iter_var,
                tcr_depth: ctx.tcr_depth,
                depth: ctx.depth + 1,
                segs: [Vec::new(), Vec::new(), Vec::new()],
            };
            let (exits, _) = self.walk_region(&blocks, header, entry, Some(li), &mut cctx);
            return exits;
        }
        let latch_a = self.join_all(a_latches);

        let deltas: Vec<RegDelta> = (0..NUM_REGS)
            .map(|r| {
                if r == 0 || latch_a.regs[r] == Expr::var(reg_vars[r]) {
                    RegDelta::Invariant
                } else {
                    match latch_a.regs[r].sub(&Expr::var(reg_vars[r])).as_const() {
                        Some(c) => RegDelta::Step(c),
                        None => RegDelta::Varying,
                    }
                }
            })
            .collect();
        let shapes: Vec<QShape> = (0..3)
            .map(|qi| {
                let da = latch_a.q[qi].ahead.sub(&a_entry.q[qi].ahead);
                let ds = latch_a.q[qi].since.sub(&a_entry.q[qi].since);
                match (da.as_const(), ds.as_const()) {
                    (Some(a), Some(s)) => QShape::Const(a, s),
                    _ => {
                        let docc = da.add(&ds);
                        QShape::Fuzzy { per_lo: self.lo(&docc, &latch_a.facts), per_hi: self.ub(&docc, &latch_a.facts) }
                    }
                }
            })
            .collect();

        // ---- Style and trip count, from the real entry state. ----
        let (style, trips, canon) = self.style_and_trips(header, &latch_blocks, &blocks, &entry, &deltas, ctx.quiet);

        // ---- Checking pass: entry parameterized by iteration ι. ----
        let ub_t = self.ub(&trips, &entry.facts);
        let iota = self.fresh(Some(0), ub_t.map(|t| (t - 1).max(0)), None, Some(trips.sub(&Expr::konst(1))));
        let iv = Expr::var(iota);
        let mut b_entry = AbsState::initial();
        for (r, delta) in deltas.iter().enumerate().skip(1) {
            b_entry.regs[r] = match *delta {
                RegDelta::Invariant => entry.regs[r].clone(),
                RegDelta::Step(c) => self.capped(entry.regs[r].add(&iv.scale(c)), &entry.facts),
                RegDelta::Varying => {
                    let lo = match (self.lo(&entry.regs[r], &entry.facts), self.lo(&latch_a.regs[r], &latch_a.facts)) {
                        (Some(x), Some(y)) => Some(x.min(y)),
                        _ => None,
                    };
                    let hi = match (self.ub(&entry.regs[r], &entry.facts), self.ub(&latch_a.regs[r], &latch_a.facts)) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        _ => None,
                    };
                    Expr::var(self.fresh(lo, hi, None, None))
                }
            };
        }
        // Content seed for the ι-parameterized entry. Class ids from the
        // havocked shape pass are not comparable with this pass's (memo
        // keys embed pass-local variables), so the seed comes from the
        // real entry alone: sound when the body only pushes (every
        // iteration re-pushes the same classes, pops never read stale
        // content) or only pops (pops don't change content). A body
        // doing both could pop values pushed by earlier iterations under
        // classes this pass hasn't seen, so it degrades to `Mixed`.
        let mut body_push = [false; 3];
        let mut body_pop = [false; 3];
        for &b in &blocks {
            for pc in self.cfg.blocks[b].pcs() {
                if let Some(q) = self.program.instrs()[pc as usize].queue_op() {
                    match q.op {
                        QueueOpKind::Push => body_push[qidx(q.queue)] = true,
                        QueueOpKind::Pop => body_pop[qidx(q.queue)] = true,
                        _ => {}
                    }
                }
            }
        }
        let mut phi_on_since = [false; 3];
        for qi in 0..3 {
            let marked = entry.q[qi].marked;
            let (ahead, since) = match shapes[qi] {
                QShape::Const(da, ds) => (
                    self.capped(entry.q[qi].ahead.add(&iv.scale(da)), &entry.facts),
                    self.capped(entry.q[qi].since.add(&iv.scale(ds)), &entry.facts),
                ),
                QShape::Fuzzy { per_lo, per_hi } => {
                    let span = ub_t.map(|t| (t - 1).max(0));
                    let lo = per_lo.and_then(|l| if l >= 0 { Some(0) } else { span.map(|s| l.saturating_mul(s)) });
                    let hi = per_hi.and_then(|h| if h <= 0 { Some(0) } else { span.map(|s| h.saturating_mul(s)) });
                    let phi = Expr::var(self.fresh(lo, hi, None, None));
                    phi_on_since[qi] = marked == Tri::Yes;
                    if phi_on_since[qi] {
                        (entry.q[qi].ahead.clone(), entry.q[qi].since.add(&phi))
                    } else {
                        (entry.q[qi].ahead.add(&phi), entry.q[qi].since.clone())
                    }
                }
            };
            b_entry.q[qi] = QState {
                ahead,
                since,
                marked,
                saved: entry.q[qi].saved.clone(),
                content: if body_push[qi] && body_pop[qi] {
                    Content::Mixed
                } else if body_push[qi] && self.ub(&entry.q[qi].occupancy(), &entry.facts) == Some(0) {
                    // Provably empty at entry: the queue holds only this
                    // loop's own pushes, whose classes this pass sees.
                    Content::Empty
                } else {
                    entry.q[qi].content
                },
            };
        }
        b_entry.tcr = match (entry.tcr, latch_a.tcr) {
            (Some(a), Some(b)) => Some(if a == b { a } else { None }),
            _ => None,
        };
        if style == Style::Tcr {
            // The checked header needs a loaded TCR; the style detection
            // already diagnosed a missing one.
            b_entry.tcr = Some(trips.as_single_var().and_then(|(v, _)| self.vars[v as usize].class));
        }
        b_entry.facts = entry.facts.clone();

        let fuzzy_any = shapes.iter().any(|s| matches!(s, QShape::Fuzzy { .. }));
        let pend_start = self.pending.len();
        if fuzzy_any {
            self.pending_depth += 1;
        }
        let mut bctx = WalkCtx {
            quiet: ctx.quiet,
            iter_var: Some(iota),
            tcr_depth: ctx.tcr_depth + u32::from(style == Style::Tcr),
            depth: ctx.depth + 1,
            segs: [Vec::new(), Vec::new(), Vec::new()],
        };
        let (bexits, b_latches) = self.walk_region(&blocks, header, b_entry.clone(), Some(li), &mut bctx);
        let latch_b = if b_latches.is_empty() { None } else { Some(self.join_all(b_latches)) };

        // ---- Mirror segments and data-dependent exit effects. ----
        let all_canon = canon.is_some_and(|c| bexits.iter().all(|&(f, t, _)| (f, t) == c));
        let mut effects: [Option<Expr>; 3] = [None, None, None];
        let mut matched = [false; 3];
        for qi in 0..3 {
            let QShape::Fuzzy { per_lo, per_hi } = shapes[qi] else { continue };
            let span = ub_t;
            let tot_lo = per_lo.and_then(|l| if l >= 0 { Some(0) } else { span.map(|s| l.saturating_mul(s)) });
            let tot_hi = per_hi.and_then(|h| if h <= 0 { Some(0) } else { span.map(|s| h.saturating_mul(s)) });
            let delta_b = latch_b.as_ref().map(|lb| lb.q[qi].occupancy().sub(&b_entry.q[qi].occupancy()));
            let cls = delta_b.as_ref().and_then(|d| self.delta_class(d));
            effects[qi] = Some(match cls {
                Some((k, 1)) if all_canon => {
                    let sigma = self.fresh(Some(0), tot_hi, None, None);
                    ctx.segs[qi].push(ProdSeg { trips: trips.clone(), class: k, sigma });
                    Expr::var(sigma)
                }
                Some((k, -1)) if all_canon && ctx.segs[qi].last().is_some_and(|s| s.class == k && s.trips == trips) => {
                    let seg = ctx.segs[qi].pop().expect("checked above");
                    matched[qi] = true;
                    Expr::var(seg.sigma).neg()
                }
                _ => Expr::var(self.fresh(tot_lo, tot_hi, None, None)),
            });
        }
        if fuzzy_any {
            self.pending_depth -= 1;
            let buffered: Vec<(usize, Diagnostic)> = self.pending.split_off(pend_start);
            for (qi, d) in buffered {
                if matched[qi] {
                    continue;
                }
                if self.pending_depth > 0 {
                    self.pending.push((qi, d));
                } else {
                    self.push_diag(d);
                }
            }
        }

        // ---- Exit states: substitute ι with the iterations completed. ----
        let min_iters: i64 = if style == Style::Bottom { 1 } else { 0 };
        let shared_tau = if style != Style::Unknown && !all_canon {
            Some(Expr::var(self.fresh(Some(min_iters), ub_t, None, Some(trips.clone()))))
        } else {
            None
        };
        let mut out = Vec::with_capacity(bexits.len());
        for (from, to, mut st) in bexits {
            match style {
                Style::Unknown => {}
                _ => {
                    let is_canon = canon == Some((from, to));
                    let repl = match &shared_tau {
                        Some(tau) => {
                            if is_canon && style != Style::Bottom {
                                tau.clone()
                            } else {
                                tau.sub(&Expr::konst(1))
                            }
                        }
                        None => {
                            if style == Style::Bottom {
                                trips.sub(&Expr::konst(1))
                            } else {
                                trips.clone()
                            }
                        }
                    };
                    st.subst_all(iota, &repl);
                }
            }
            for qi in 0..3 {
                if let Some(eff) = &effects[qi] {
                    if phi_on_since[qi] {
                        st.q[qi].ahead = entry.q[qi].ahead.clone();
                        st.q[qi].since = self.capped(entry.q[qi].since.add(eff), &entry.facts);
                    } else {
                        st.q[qi].ahead = self.capped(entry.q[qi].ahead.add(eff), &entry.facts);
                        st.q[qi].since = entry.q[qi].since.clone();
                    }
                    st.q[qi].marked = entry.q[qi].marked;
                }
            }
            if style == Style::Tcr {
                st.tcr = None;
            }
            out.push((from, to, st));
        }
        out
    }

    /// Classifies a loop by its header/latch test and derives a trip
    /// count from the real entry state.
    fn style_and_trips(
        &mut self,
        header: usize,
        latch_blocks: &[usize],
        blocks: &BTreeSet<usize>,
        entry: &AbsState,
        deltas: &[RegDelta],
        quiet: bool,
    ) -> (Style, Expr, Option<(usize, usize)>) {
        let hpc = self.cfg.blocks[header].end - 1;
        let hterm = self.program.instrs()[hpc as usize];
        if let Instr::BranchOnTcr { target } = hterm {
            let taken = self.boe(target);
            let fall = self.boe(hpc + 1);
            if blocks.contains(&taken) && !blocks.contains(&fall) {
                let trip_max = (1i64 << self.config.tq_trip_bits.min(62)) - 1;
                let (class, hi) = match entry.tcr {
                    None => {
                        if !quiet {
                            self.check_tcr_loaded(hpc, &WalkCtx::top());
                        }
                        (None, trip_max)
                    }
                    Some(cls) => {
                        let ch = cls.and_then(|c| self.class_bounds[c as usize].1);
                        (cls, ch.map_or(trip_max, |h| h.min(trip_max).max(0)))
                    }
                };
                let v = self.fresh(Some(0), Some(hi), class, None);
                return (Style::Tcr, Expr::var(v), Some((header, fall)));
            }
        }
        if let [latch] = latch_blocks {
            let lpc = self.cfg.blocks[*latch].end - 1;
            if let Instr::Branch { cond: BranchCond::Lt, rs1, rs2, target } = self.program.instrs()[lpc as usize] {
                let fall = self.boe(lpc + 1);
                if self.boe(target) == header && !blocks.contains(&fall) {
                    if let (RegDelta::Step(s), RegDelta::Invariant) = (deltas[rs1.index()], deltas[rs2.index()]) {
                        if s >= 1 {
                            let trips = self.trip_count(entry, rs1.index(), rs2.index(), s, 1);
                            return (Style::Bottom, trips, Some((*latch, fall)));
                        }
                    }
                }
            }
        }
        if let Instr::Branch { cond, rs1, rs2, target } = hterm {
            let taken = self.boe(target);
            let fall = self.boe(hpc + 1);
            let out_succ = match cond {
                BranchCond::Lt if blocks.contains(&taken) && !blocks.contains(&fall) => Some(fall),
                BranchCond::Ge if !blocks.contains(&taken) && blocks.contains(&fall) => Some(taken),
                _ => None,
            };
            if let Some(out) = out_succ {
                if let (RegDelta::Step(s), RegDelta::Invariant) = (deltas[rs1.index()], deltas[rs2.index()]) {
                    if s >= 1 {
                        let trips = self.trip_count(entry, rs1.index(), rs2.index(), s, 0);
                        return (Style::Header, trips, Some((header, out)));
                    }
                }
            }
        }
        (Style::Unknown, Expr::var(self.fresh(Some(0), None, None, None)), None)
    }

    /// `max(min_iters, ceil((bound - start) / step))` over the entry state.
    fn trip_count(&mut self, entry: &AbsState, rs1: usize, rs2: usize, step: i64, min_iters: i64) -> Expr {
        let d = entry.regs[rs2].sub(&entry.regs[rs1]);
        let d = self.capped(d, &entry.facts);
        if step == 1 {
            let facts = entry.facts.clone();
            self.max_e(Expr::konst(min_iters), d, &facts)
        } else {
            let hi = self.ub(&d, &entry.facts).map(|u| ((u.max(0)).saturating_add(step - 1) / step).max(min_iters));
            Expr::var(self.fresh(Some(min_iters), hi, None, None))
        }
    }

    /// `±v` or `max(0, v)` / `min(0, -v)` for a class-tagged `v`.
    fn delta_class(&self, e: &Expr) -> Option<(u32, i64)> {
        if let Some((v, c)) = e.as_single_var() {
            if c == 1 || c == -1 {
                if let Some(k) = self.vars[v as usize].class {
                    return Some((k, c));
                }
                // Look through an interned atom: `±max(0, m)` keeps the
                // value class of `m`.
                if let Some(Expr::Max(a, b)) = &self.vars[v as usize].ub {
                    if a.as_const() == Some(0) {
                        if let Some((m, 1)) = b.as_single_var() {
                            return self.vars[m as usize].class.map(|k| (k, c));
                        }
                    }
                }
            }
        }
        match e {
            Expr::Max(a, b) if a.as_const() == Some(0) => b
                .as_single_var()
                .filter(|&(_, c)| c == 1)
                .and_then(|(v, _)| self.vars[v as usize].class)
                .map(|k| (k, 1)),
            Expr::Min(a, b) if a.as_const() == Some(0) => b
                .as_single_var()
                .filter(|&(_, c)| c == -1)
                .and_then(|(v, _)| self.vars[v as usize].class)
                .map(|k| (k, -1)),
            _ => None,
        }
    }

    /// Loops with Mark/Forward or save/restore in the body: check the
    /// first iteration from the real entry and later iterations from a
    /// verified steady state, so mark flags stay definite on each walk.
    fn complex_loop(
        &mut self,
        blocks: &BTreeSet<usize>,
        header: usize,
        entry: AbsState,
        ctx: &mut WalkCtx,
    ) -> Vec<Edge> {
        let li = self.header_loop[&header];
        let quiet_ctx = |c: &WalkCtx| WalkCtx {
            quiet: true,
            iter_var: None,
            tcr_depth: c.tcr_depth,
            depth: c.depth + 1,
            segs: [Vec::new(), Vec::new(), Vec::new()],
        };
        let mut q1 = quiet_ctx(ctx);
        let (_, lat1) = self.walk_region(blocks, header, entry.clone(), Some(li), &mut q1);
        let mut cctx = WalkCtx {
            quiet: ctx.quiet,
            iter_var: None,
            tcr_depth: ctx.tcr_depth,
            depth: ctx.depth + 1,
            segs: [Vec::new(), Vec::new(), Vec::new()],
        };
        if lat1.is_empty() {
            // The body runs at most once.
            let (exits, _) = self.walk_region(blocks, header, entry, Some(li), &mut cctx);
            return exits;
        }
        let lat1 = self.join_all(lat1);

        let mut steady = self.make_steady(&entry, &lat1, &[]);
        let mut stable = false;
        for _ in 0..2 {
            let mut q2 = quiet_ctx(ctx);
            let (_, lat2) = self.walk_region(blocks, header, steady.clone(), Some(li), &mut q2);
            if lat2.is_empty() {
                stable = true;
                break;
            }
            let lat2 = self.join_all(lat2);
            let widen = self.unstable_parts(&steady, &lat2);
            if widen.is_empty() {
                stable = true;
                break;
            }
            steady = self.make_steady(&entry, &lat1, &widen);
        }
        if !stable {
            if !ctx.quiet {
                self.emit(
                    Rule::AnalysisDegraded,
                    Severity::Warning,
                    None,
                    Some(self.cfg.blocks[header].start),
                    "loop with queue marks/saves did not reach a steady state; queue state is unknown past it".into(),
                );
            }
            return self.havoc_exits(blocks, &entry);
        }

        let (ex1, _) = self.walk_region(blocks, header, entry, Some(li), &mut cctx);
        let mut cctx2 = WalkCtx {
            quiet: ctx.quiet,
            iter_var: None,
            tcr_depth: ctx.tcr_depth,
            depth: ctx.depth + 1,
            segs: [Vec::new(), Vec::new(), Vec::new()],
        };
        let (ex2, _) = self.walk_region(blocks, header, steady, Some(li), &mut cctx2);

        let mut grouped: Vec<(usize, usize, Vec<AbsState>)> = Vec::new();
        for (f, t, s) in ex1.into_iter().chain(ex2) {
            match grouped.iter_mut().find(|(gf, gt, _)| *gf == f && *gt == t) {
                Some((_, _, v)) => v.push(s),
                None => grouped.push((f, t, vec![s])),
            }
        }
        grouped.into_iter().map(|(f, t, v)| (f, t, self.join_all(v))).collect()
    }

    /// Builds the steady (iterations ≥ 2) entry state: components the
    /// body provably leaves alone keep their entry expression, the rest
    /// are havocked; anything listed in `widen` is havocked unbounded.
    fn make_steady(&mut self, entry: &AbsState, lat1: &AbsState, widen: &[(usize, usize)]) -> AbsState {
        let widened = |kind: usize, idx: usize| widen.contains(&(kind, idx));
        let mut s = AbsState::initial();
        for r in 1..NUM_REGS {
            s.regs[r] = if lat1.regs[r] == entry.regs[r] && !widened(0, r) {
                entry.regs[r].clone()
            } else if widened(0, r) {
                Expr::var(self.fresh(None, None, None, None))
            } else {
                let lo = match (self.lo(&entry.regs[r], &entry.facts), self.lo(&lat1.regs[r], &lat1.facts)) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    _ => None,
                };
                let hi = match (self.ub(&entry.regs[r], &entry.facts), self.ub(&lat1.regs[r], &lat1.facts)) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    _ => None,
                };
                Expr::var(self.fresh(lo, hi, None, None))
            };
        }
        for qi in 0..3 {
            let comp = |lint: &mut Self, a: &Expr, b: &Expr, w: bool| {
                if a == b && !w {
                    a.clone()
                } else if w {
                    Expr::var(lint.fresh(Some(0), None, None, None))
                } else {
                    let lo = match (lint.lo(a, &entry.facts), lint.lo(b, &lat1.facts)) {
                        (Some(x), Some(y)) => Some(x.min(y).max(0)),
                        _ => Some(0),
                    };
                    let hi = match (lint.ub(a, &entry.facts), lint.ub(b, &lat1.facts)) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        _ => None,
                    };
                    Expr::var(lint.fresh(lo, hi, None, None))
                }
            };
            let ahead = comp(self, &entry.q[qi].ahead, &lat1.q[qi].ahead, widened(1, qi));
            let since = comp(self, &entry.q[qi].since, &lat1.q[qi].since, widened(2, qi));
            let saved = match (&entry.q[qi].saved, &lat1.q[qi].saved) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                (_, Some((b, cb))) => {
                    let hi = self.ub(b, &lat1.facts);
                    Some((Expr::var(self.fresh(Some(0), hi, None, None)), *cb))
                }
                (_, None) => None,
            };
            s.q[qi] = QState { ahead, since, marked: lat1.q[qi].marked, saved, content: lat1.q[qi].content };
        }
        s.tcr = lat1.tcr;
        s.facts = entry
            .facts
            .iter()
            .filter(|f| lat1.facts.iter().any(|g| g.expr == f.expr && g.lo == f.lo && g.hi == f.hi))
            .cloned()
            .collect();
        s
    }

    /// Components of `steady` the re-walk escaped from. Encoded as
    /// `(kind, index)`: kind 0 = register, 1 = queue ahead, 2 = queue
    /// since.
    fn unstable_parts(&self, steady: &AbsState, lat2: &AbsState) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let within = |lint: &Self, kept: &Expr, new: &Expr| -> bool {
            if kept == new {
                return true;
            }
            let Some((v, 1)) = kept.as_single_var() else { return false };
            let info = &lint.vars[v as usize];
            let lo_ok = match info.lo {
                None => true,
                Some(l) => lint.lo(new, &lat2.facts).is_some_and(|x| x >= l),
            };
            let hi_ok = match info.hi {
                None => true,
                Some(h) => lint.ub(new, &lat2.facts).is_some_and(|x| x <= h),
            };
            lo_ok && hi_ok
        };
        for r in 1..NUM_REGS {
            if !within(self, &steady.regs[r], &lat2.regs[r]) {
                out.push((0, r));
            }
        }
        for qi in 0..3 {
            if !within(self, &steady.q[qi].ahead, &lat2.q[qi].ahead) {
                out.push((1, qi));
            }
            if !within(self, &steady.q[qi].since, &lat2.q[qi].since) {
                out.push((2, qi));
            }
            if steady.q[qi].marked != lat2.q[qi].marked
                || steady.q[qi].saved.is_some() != lat2.q[qi].saved.is_some()
                || steady.q[qi].content != lat2.q[qi].content
            {
                // Flag the queue itself; make_steady joins these parts
                // from lat1 again, so a second pass can only settle if
                // the walk converges on its own.
                out.push((1, qi));
            }
        }
        if steady.tcr != lat2.tcr {
            out.push((0, 0));
        }
        out
    }

    /// When analysis gives up on a loop: conservative unknown state on
    /// every edge leaving it. The reported bounds become unknown too —
    /// occupancy inside the abandoned loop was never fully checked, so
    /// any number would be a false claim.
    fn havoc_exits(&mut self, blocks: &BTreeSet<usize>, entry: &AbsState) -> Vec<Edge> {
        self.unbounded = [true; 3];
        let mut out = Vec::new();
        for &b in blocks {
            let succs = self.cfg.blocks[b].succs.clone();
            for s in succs {
                if blocks.contains(&s) {
                    continue;
                }
                let mut st = AbsState::initial();
                for r in 1..NUM_REGS {
                    st.regs[r] = Expr::var(self.fresh(None, None, None, None));
                }
                for qi in 0..3 {
                    st.q[qi] = QState {
                        ahead: Expr::var(self.fresh(Some(0), None, None, None)),
                        since: Expr::var(self.fresh(Some(0), None, None, None)),
                        marked: Tri::Maybe,
                        saved: entry.q[qi]
                            .saved
                            .as_ref()
                            .map(|(_, c)| (Expr::var(self.fresh(Some(0), None, None, None)), *c)),
                        content: Content::Mixed,
                    };
                }
                st.tcr = None;
                out.push((b, s, st));
            }
        }
        out
    }
}
