use super::*;
use cfd_isa::{Assembler, Reg};

fn r(i: usize) -> Reg {
    Reg::new(i)
}

fn lint(p: &Program) -> LintReport {
    lint_program(p, &LintConfig::default())
}

fn has(rep: &LintReport, rule: Rule, pc: u32) -> bool {
    rep.diagnostics.iter().any(|d| d.rule == rule && d.pc == Some(pc))
}

#[test]
fn empty_program_is_clean() {
    let p = Assembler::new().finish().unwrap();
    let rep = lint(&p);
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(0));
}

#[test]
fn balanced_gen_use_loops_are_clean_with_exact_bound() {
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 4);
    a.li(i, 0);
    a.label("gen");
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, n, "gen");
    a.li(i, 0);
    a.label("use");
    a.branch_on_bq("skip");
    a.addi(r(4), r(4), 1);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "use");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(4));
    assert_eq!(rep.bounds.vq, Some(0));
}

#[test]
fn hoisted_push_pop_in_one_loop_has_bound_one() {
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 100);
    a.li(i, 0);
    a.label("top");
    a.push_bq(p);
    a.branch_on_bq("skip");
    a.addi(r(4), r(4), 1);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(1));
}

#[test]
fn strip_mined_chunk_loop_is_clean_with_chunk_bound() {
    let (i, n, p, lim, cs) = (r(1), r(2), r(3), r(5), r(6));
    let mut a = Assembler::new();
    a.li(n, 1000);
    a.li(i, 0);
    a.label("chunk");
    a.addi(lim, i, 8);
    a.min(lim, lim, n);
    a.mv(cs, i);
    a.label("gen");
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, lim, "gen");
    a.mv(i, cs);
    a.label("use");
    a.branch_on_bq("skip");
    a.addi(r(4), r(4), 1);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, lim, "use");
    a.blt(i, n, "chunk");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(8));
}

#[test]
fn unbalanced_push_reports_at_exit() {
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 4);
    a.li(i, 0);
    a.label("gen");
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, n, "gen");
    let halt_pc = a.here();
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(!rep.clean());
    assert!(has(&rep, Rule::UnbalancedAtExit, halt_pc), "{}", rep.table());
}

#[test]
fn unstripped_loop_with_loaded_bound_is_unbounded() {
    let (i, n, p, base) = (r(1), r(2), r(3), r(4));
    let mut a = Assembler::new();
    a.li(base, 0x1000);
    a.ld(n, 0, base);
    a.li(i, 0);
    a.label("gen");
    let push_pc = a.here();
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, n, "gen");
    a.label("use");
    a.branch_on_bq("skip");
    a.label("skip");
    a.addi(n, n, -1);
    a.bnez(n, "use");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(!rep.clean());
    assert!(has(&rep, Rule::UnboundedOccupancy, push_pc), "{}", rep.table());
    assert_eq!(rep.bounds.bq, None);
}

#[test]
fn overflow_when_static_trip_exceeds_queue_size() {
    let (i, n, p) = (r(1), r(2), r(3));
    let mut a = Assembler::new();
    a.li(n, 200); // > default bq_size of 128
    a.li(i, 0);
    a.label("gen");
    let push_pc = a.here();
    a.push_bq(p);
    a.addi(i, i, 1);
    a.blt(i, n, "gen");
    a.li(i, 0);
    a.label("use");
    a.branch_on_bq("skip");
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "use");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(!rep.clean());
    assert!(has(&rep, Rule::Overflow, push_pc), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(200));
}

#[test]
fn orphan_forward_is_reported() {
    let mut a = Assembler::new();
    let fwd_pc = a.here();
    a.forward_bq();
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(has(&rep, Rule::ForwardWithoutMark, fwd_pc), "{}", rep.table());
}

#[test]
fn mark_then_forward_is_clean() {
    let p = r(3);
    let mut a = Assembler::new();
    a.push_bq(p);
    a.push_bq(p);
    a.mark_bq();
    a.forward_bq();
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(2));
}

#[test]
fn restore_without_save_is_reported() {
    let base = r(4);
    let mut a = Assembler::new();
    a.li(base, 0x2000);
    let rst_pc = a.here();
    a.restore_bq(0, base);
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(has(&rep, Rule::RestoreWithoutSave, rst_pc), "{}", rep.table());
}

#[test]
fn branch_on_tcr_without_pop_tq_is_reported() {
    let (i, n) = (r(1), r(2));
    let mut a = Assembler::new();
    a.li(n, 4);
    a.li(i, 0);
    a.j("test");
    a.label("body");
    a.addi(i, i, 1);
    a.label("test");
    let br_pc = a.here();
    a.branch_on_tcr("body");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(has(&rep, Rule::BranchTcrWithoutTrip, br_pc), "{}", rep.table());
}

#[test]
fn push_tq_inside_tcr_loop_is_reported() {
    let (n, acc) = (r(2), r(4));
    let mut a = Assembler::new();
    a.li(n, 3);
    a.push_tq(n);
    a.pop_tq();
    a.j("test");
    a.label("body");
    let push_pc = a.here();
    a.push_tq(n);
    a.addi(acc, acc, 1);
    a.label("test");
    a.branch_on_tcr("body");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(has(&rep, Rule::PushTqInTcrLoop, push_pc), "{}", rep.table());
}

#[test]
fn tq_gen_use_nest_is_clean() {
    let (i, n, m, j, acc) = (r(1), r(2), r(3), r(4), r(5));
    let mut a = Assembler::new();
    a.li(n, 6);
    a.li(m, 3);
    a.li(i, 0);
    a.label("gen");
    a.push_tq(m);
    a.addi(i, i, 1);
    a.blt(i, n, "gen");
    a.li(i, 0);
    a.label("outer");
    a.pop_tq();
    a.li(j, 0);
    a.j("test");
    a.label("body");
    a.addi(acc, acc, 1);
    a.addi(j, j, 1);
    a.label("test");
    a.branch_on_tcr("body");
    a.addi(i, i, 1);
    a.blt(i, n, "outer");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.tq, Some(6));
}

#[test]
fn tq_driven_consumer_balances_nested_bq_mirror() {
    // Miniature of the astar bq+tq pattern: the leading nest pushes one
    // trip count to the TQ and `m` predicates to the BQ per outer
    // iteration; the trailing nest pops the TQ and lets Branch_on_TCR
    // drive the BQ pops, so the BQ balance proof must ride the TQ
    // content class across both the shape and checking passes.
    let (i, n, m, j, p, base, lim, cs, acc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
    let mut a = Assembler::new();
    a.li(n, 64);
    a.li(base, 0x1000);
    a.li(i, 0);
    a.label("chunk");
    a.addi(lim, i, 4);
    a.min(lim, lim, n);
    a.mv(cs, i);
    a.label("gen");
    a.sll(m, i, 3i64);
    a.add(m, m, base);
    a.annotate("trip load (cfd-lint: value<=5)");
    a.ld(m, 0, m);
    a.push_tq(m);
    a.li(j, 0);
    a.j("gen_test");
    a.label("gen_body");
    a.push_bq(p);
    a.addi(j, j, 1);
    a.label("gen_test");
    a.blt(j, m, "gen_body");
    a.addi(i, i, 1);
    a.blt(i, lim, "gen");
    a.mv(i, cs);
    a.label("use");
    a.pop_tq();
    a.j("use_test");
    a.label("use_body");
    a.branch_on_bq("skip");
    a.addi(acc, acc, 1);
    a.label("skip");
    a.addi(r(10), r(10), 1);
    a.label("use_test");
    a.branch_on_tcr("use_body");
    a.addi(i, i, 1);
    a.blt(i, lim, "use");
    a.blt(i, n, "chunk");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
    assert_eq!(rep.bounds.bq, Some(20)); // 4 outer iterations x 5 max trips
    assert_eq!(rep.bounds.tq, Some(4));
}

#[test]
fn irreducible_cycle_is_rejected_not_panicked() {
    let (x, y) = (r(1), r(2));
    let mut a = Assembler::new();
    a.blt(x, y, "c");
    a.label("b");
    a.addi(x, x, 1);
    a.j("c");
    a.label("c");
    a.addi(x, x, 1);
    a.j("b");
    let rep = lint(&a.finish().unwrap());
    assert!(rep.diagnostics.iter().any(|d| d.rule == Rule::IrreducibleCfg), "{}", rep.table());
    assert!(!rep.clean());
}

#[test]
fn unreachable_code_is_informational_only() {
    let mut a = Assembler::new();
    a.j("end");
    a.addi(r(1), r(1), 1); // dead
    a.label("end");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
    assert!(rep.diagnostics.iter().any(|d| d.rule == Rule::UnreachableCode && d.severity == Severity::Info));
}

#[test]
fn fallthrough_into_exit_is_handled() {
    let mut a = Assembler::new();
    a.li(r(1), 1); // no halt: falls off the end
    let rep = lint(&a.finish().unwrap());
    assert!(rep.clean(), "{}", rep.table());
}

#[test]
fn underflow_on_provably_empty_queue() {
    let mut a = Assembler::new();
    let pop_pc = a.here();
    a.branch_on_bq("skip");
    a.label("skip");
    a.halt();
    let rep = lint(&a.finish().unwrap());
    assert!(has(&rep, Rule::Underflow, pop_pc), "{}", rep.table());
}

#[test]
fn expr_algebra_cancels_and_distributes() {
    let a = Expr::var(1).add(&Expr::konst(3));
    let b = Expr::var(1).add(&Expr::konst(3));
    assert_eq!(a.sub(&b).as_const(), Some(0));
    // min distributes over addition
    let m = Expr::Min(Box::new(Expr::var(1)), Box::new(Expr::var(2)));
    let s = m.add(&Expr::konst(5));
    match s {
        Expr::Min(x, y) => {
            assert_eq!(x.sub(&Expr::var(1)).as_const(), Some(5));
            assert_eq!(y.sub(&Expr::var(2)).as_const(), Some(5));
        }
        other => panic!("expected Min, got {other:?}"),
    }
    // negation swaps min and max
    assert!(matches!(m.neg(), Expr::Max(..)));
}
