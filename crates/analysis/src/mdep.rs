//! Sound memory-dependence oracle over address-range summaries.
//!
//! Built on [`vrange`](crate::vrange): two memory references of a loop
//! are **proven disjoint** when their symbolic displacements are
//! identical and their width-extended numeric byte intervals — which
//! already fold every iteration of the loop's induction variables —
//! do not intersect. Everything else is `MayAlias` (both bounded,
//! intervals touch) or `Unknown` (at least one side unresolvable),
//! and `Unknown` is what lets the register-name heuristic in
//! [`backward_slice`](crate::backward_slice) remain as a fallback.

use crate::cfg::Cfg;
use crate::loops::NaturalLoop;
use crate::vrange::{AddrRange, LoopValues, MemRef};
use cfd_isa::Program;

/// Outcome of an alias query between two memory references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasVerdict {
    /// The byte footprints cannot overlap on any pair of iterations.
    ProvenDisjoint,
    /// Both footprints are bounded and they intersect.
    MayAlias,
    /// At least one address could not be bounded; no claim either way.
    Unknown,
}

/// May-alias oracle for the loads and stores of one loop.
#[derive(Debug, Clone)]
pub struct MemDep {
    values: LoopValues,
}

impl MemDep {
    /// Analyzes `lp` of `program`.
    pub fn analyze(program: &Program, cfg: &Cfg, lp: &NaturalLoop) -> MemDep {
        MemDep { values: LoopValues::analyze(program, cfg, lp) }
    }

    /// The underlying value-range results.
    pub fn values(&self) -> &LoopValues {
        &self.values
    }

    /// Alias verdict for the memory instructions at `a_pc` and `b_pc`.
    pub fn verdict(&self, a_pc: u32, b_pc: u32) -> AliasVerdict {
        let (Some(a), Some(b)) = (self.values.mem_ref(a_pc), self.values.mem_ref(b_pc)) else {
            return AliasVerdict::Unknown;
        };
        Self::compare(a, b)
    }

    /// Whether the references at `a_pc` and `b_pc` are proven disjoint.
    pub fn proven_disjoint(&self, a_pc: u32, b_pc: u32) -> bool {
        self.verdict(a_pc, b_pc) == AliasVerdict::ProvenDisjoint
    }

    fn compare(a: &MemRef, b: &MemRef) -> AliasVerdict {
        let (AddrRange::Known { syms: sa, lo: la, hi: ha }, AddrRange::Known { syms: sb, lo: lb, hi: hb }) =
            (&a.addr, &b.addr)
        else {
            return AliasVerdict::Unknown;
        };
        if sa != sb {
            // Distinct symbolic bases: their relative placement is
            // statically unconstrained.
            return AliasVerdict::Unknown;
        }
        // Last-byte extension; overflow degrades to Unknown.
        let (Some(ea), Some(eb)) = (ha.checked_add(a.width as i64 - 1), hb.checked_add(b.width as i64 - 1)) else {
            return AliasVerdict::Unknown;
        };
        if ea < *lb || eb < *la {
            AliasVerdict::ProvenDisjoint
        } else {
            AliasVerdict::MayAlias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use crate::loops::find_loops;
    use cfd_isa::{Assembler, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// A scan with one load and two stores: one provably above the
    /// scanned range, one interleaved with it.
    fn kernel() -> (Program, u32, u32, u32) {
        let (i, n, base, x, tmp) = (r(1), r(2), r(3), r(4), r(5));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        let load_pc = a.here();
        a.ld(x, 0, tmp); // [0x1000, 0x1318+7]
        let disjoint_pc = a.here();
        a.sd(x, 8 * 100, tmp); // [0x1320, 0x1638+7]: one array above
        let overlap_pc = a.here();
        a.sd(x, 8, tmp); // [0x1008, 0x1320+7]: interleaves with the load
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        (a.finish().unwrap(), load_pc, disjoint_pc, overlap_pc)
    }

    fn oracle(program: &Program) -> MemDep {
        let cfg = Cfg::build(program);
        let dom = DomTree::dominators(&cfg);
        let lp = find_loops(&cfg, &dom).into_iter().next().unwrap();
        MemDep::analyze(program, &cfg, &lp)
    }

    #[test]
    fn whole_loop_intervals_decide_disjointness() {
        let (program, load_pc, disjoint_pc, overlap_pc) = kernel();
        let m = oracle(&program);
        assert_eq!(m.verdict(load_pc, disjoint_pc), AliasVerdict::ProvenDisjoint);
        // Same-iteration delta of +8 is NOT cross-iteration disjointness:
        // iteration k's store hits iteration k+1's load address.
        assert_eq!(m.verdict(load_pc, overlap_pc), AliasVerdict::MayAlias);
    }

    #[test]
    fn width_extension_catches_edge_overlap() {
        // Store exactly at the last byte boundary: [hi, hi+7] of the load
        // footprint vs a store starting at hi+1 bytes is disjoint, at
        // hi+7 it is not. Scalar (non-induction) addresses make the
        // arithmetic exact.
        let (n, base, x) = (r(2), r(3), r(4));
        let mut a = Assembler::new();
        a.li(n, 10);
        a.li(base, 0x1000);
        a.li(r(1), 0);
        a.label("top");
        let load_pc = a.here();
        a.ld(x, 0, base); // bytes [0x1000, 0x1007]
        let touching_pc = a.here();
        a.sd(x, 7, base); // bytes [0x1007, 0x100e]: overlaps the last byte
        let clear_pc = a.here();
        a.sd(x, 8, base); // bytes [0x1008, 0x100f]: disjoint
        a.addi(r(1), r(1), 1);
        a.blt(r(1), n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let m = oracle(&program);
        assert_eq!(m.verdict(load_pc, touching_pc), AliasVerdict::MayAlias);
        assert_eq!(m.verdict(load_pc, clear_pc), AliasVerdict::ProvenDisjoint);
    }

    #[test]
    fn distinct_symbolic_bases_are_unknown() {
        // Two unresolvable invariant bases: no claim possible.
        let (i, n, b1, b2, x) = (r(1), r(2), r(3), r(4), r(5));
        let mut a = Assembler::new();
        a.li(n, 10);
        a.li(i, 0);
        a.add(b1, b1, r(6));
        a.add(b2, b2, r(7));
        a.label("top");
        let load_pc = a.here();
        a.ld(x, 0, b1);
        let store_pc = a.here();
        a.sd(x, 0x1000, b2);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let m = oracle(&program);
        assert_eq!(m.verdict(load_pc, store_pc), AliasVerdict::Unknown);
    }

    #[test]
    fn non_memory_pcs_are_unknown() {
        let (program, load_pc, ..) = kernel();
        let m = oracle(&program);
        assert_eq!(m.verdict(load_pc, 0), AliasVerdict::Unknown);
    }
}
