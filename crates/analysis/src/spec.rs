//! Speculation-safety analysis for hoisted loads.
//!
//! Speculative CFD moves a branch's predicate slice — including its
//! loads — into a leading loop that runs *all* iterations before any
//! store of the trailing loop executes. That reordering is safe for a
//! load only when the static analysis can prove both halves of the
//! speculation contract:
//!
//! 1. **Proven-dereferenceable range** — the load's address resolves to
//!    a statically bounded interval ([`AddrRange::Known`]); an
//!    unknown-address load is the analysis' "may fault" case and must
//!    never be hoisted. (This ISA's functional core never traps on a
//!    load, so boundedness is the honest analog of dereferenceability:
//!    what the contract really rules out is reading a location the
//!    analysis knows nothing about.)
//! 2. **Disjoint from every loop store** — the oracle proves the load's
//!    footprint disjoint from each store of the loop
//!    ([`AliasVerdict::ProvenDisjoint`]), so running the load before
//!    the stores of *earlier* original iterations cannot change the
//!    value it observes.
//!
//! Each (load, store) proof is recorded as a [`DisjointClaim`] so the
//! dynamic cross-check in `cfd-harden` can attempt to refute it against
//! observed addresses.

use crate::cfg::Cfg;
use crate::loops::NaturalLoop;
use crate::mdep::{AliasVerdict, MemDep};
use crate::vrange::AddrRange;
use cfd_isa::{Instr, Program};
use std::collections::BTreeSet;

/// Whether a candidate load satisfies the speculation contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSafety {
    /// Bounded address, proven disjoint from every loop store.
    ProvenSafe,
    /// Unresolvable address or a store it may alias: must not be hoisted.
    Unsafe,
}

/// Per-load verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// The load's PC in the original program.
    pub pc: u32,
    /// Its safety classification.
    pub safety: LoadSafety,
}

/// A (load, store) pair the analysis proved disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DisjointClaim {
    /// PC of the hoisted load.
    pub load_pc: u32,
    /// PC of the loop store it is proven disjoint from.
    pub store_pc: u32,
}

/// Result of the speculation-safety analysis for one branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecReport {
    /// The branch whose slice the candidate loads belong to.
    pub branch_pc: u32,
    /// Verdict per candidate load, in PC order.
    pub loads: Vec<LoadReport>,
    /// Every disjointness proof backing the `ProvenSafe` verdicts.
    pub claims: Vec<DisjointClaim>,
}

impl SpecReport {
    /// Number of loads proven safe to hoist.
    pub fn proven(&self) -> usize {
        self.loads.iter().filter(|l| l.safety == LoadSafety::ProvenSafe).count()
    }

    /// Number of loads that failed the contract.
    pub fn unsafe_count(&self) -> usize {
        self.loads.len() - self.proven()
    }

    /// Whether every candidate load is proven safe.
    pub fn all_safe(&self) -> bool {
        self.unsafe_count() == 0
    }
}

/// Classifies each candidate load (a PC set within `lp`) against the
/// speculation contract for the branch at `branch_pc`.
pub fn speculation_safety(
    program: &Program,
    cfg: &Cfg,
    lp: &NaturalLoop,
    branch_pc: u32,
    candidate_loads: &BTreeSet<u32>,
) -> SpecReport {
    let oracle = MemDep::analyze(program, cfg, lp);
    let store_pcs: Vec<u32> = lp
        .blocks
        .iter()
        .filter(|&&b| b < cfg.len() - 1)
        .flat_map(|&b| cfg.blocks[b].pcs())
        .filter(|&pc| matches!(program.fetch(pc), Some(Instr::Store { .. })))
        .collect();

    let mut loads = Vec::new();
    let mut claims = Vec::new();
    for &pc in candidate_loads {
        if !matches!(program.fetch(pc), Some(Instr::Load { .. })) {
            continue;
        }
        let bounded = matches!(
            oracle.values().mem_ref(pc),
            Some(r) if matches!(r.addr, AddrRange::Known { .. })
        );
        let mut proofs: Vec<DisjointClaim> = Vec::new();
        let safe = bounded
            && store_pcs.iter().all(|&spc| match oracle.verdict(pc, spc) {
                AliasVerdict::ProvenDisjoint => {
                    proofs.push(DisjointClaim { load_pc: pc, store_pc: spc });
                    true
                }
                _ => false,
            });
        loads.push(LoadReport { pc, safety: if safe { LoadSafety::ProvenSafe } else { LoadSafety::Unsafe } });
        if safe {
            claims.extend(proofs);
        }
    }
    SpecReport { branch_pc, loads, claims }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use crate::loops::find_loops;
    use cfd_isa::{Assembler, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    fn analyze(program: &Program, branch_pc: u32, loads: &[u32]) -> SpecReport {
        let cfg = Cfg::build(program);
        let dom = DomTree::dominators(&cfg);
        let lp = find_loops(&cfg, &dom).into_iter().next().unwrap();
        speculation_safety(program, &cfg, &lp, branch_pc, &loads.iter().copied().collect())
    }

    #[test]
    fn disjoint_stores_prove_the_load_safe() {
        let (i, n, base, x, p, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        let load_pc = a.here();
        a.ld(x, 0, tmp);
        a.slt(p, x, n);
        let bpc = a.here();
        a.beqz(p, "skip");
        let s1 = a.here();
        a.sd(x, 800, tmp);
        let s2 = a.here();
        a.sd(x, 1600, tmp);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let rep = analyze(&program, bpc, &[load_pc]);
        assert_eq!(rep.loads, vec![LoadReport { pc: load_pc, safety: LoadSafety::ProvenSafe }]);
        assert_eq!(rep.claims, vec![DisjointClaim { load_pc, store_pc: s1 }, DisjointClaim { load_pc, store_pc: s2 }]);
    }

    #[test]
    fn unknown_address_load_is_unsafe_even_without_stores() {
        // Pointer chase: the load address is unresolvable; hoisting it
        // would read a location the analysis knows nothing about.
        let (i, n, head, base, x, p) = (r(1), r(2), r(3), r(4), r(5), r(6));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(head, 0x1000);
        a.label("top");
        a.ld(base, 0, head);
        let load_pc = a.here();
        a.ld(x, 0, base);
        a.slt(p, x, n);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.addi(r(8), r(8), 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let rep = analyze(&program, bpc, &[load_pc]);
        assert_eq!(rep.loads[0].safety, LoadSafety::Unsafe);
        assert!(rep.claims.is_empty());
    }

    #[test]
    fn unprovable_store_makes_the_load_unsafe() {
        // The store's address goes through a conditionally-updated
        // counter: no disjointness proof, no hoisting.
        let (i, n, base, x, p, tmp, cnt, t0) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        let load_pc = a.here();
        a.ld(x, 0, tmp);
        a.slt(p, x, n);
        let bpc = a.here();
        a.beqz(p, "skip");
        a.sll(t0, cnt, 3i64);
        a.sd(x, 0x4000, t0);
        a.addi(cnt, cnt, 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let rep = analyze(&program, bpc, &[load_pc]);
        assert_eq!(rep.loads[0].safety, LoadSafety::Unsafe);
    }
}
