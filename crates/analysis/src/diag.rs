//! Diagnostics for the static CFD queue-discipline verifier.
//!
//! [`lint_program`](crate::lint_program) reports its findings as a
//! [`LintReport`]: a list of [`Diagnostic`]s (each carrying the violated
//! [`Rule`], a [`Severity`], the program counter, the nearest enclosing
//! label and any source annotation at that pc) plus the proved static
//! occupancy bounds per queue. The report renders both as a fixed-width
//! table for humans and as deterministic JSON for tooling.

use cfd_isa::{Program, QueueKind};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing wrong, but worth knowing (e.g. dead code).
    Info,
    /// Suspicious but not provably unsafe.
    Warning,
    /// A proven or unprovable-safe queue-discipline violation.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The queue-discipline rules the verifier checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A push can exceed the configured queue size (strip mining with a
    /// chunk that fits would remove this).
    Overflow,
    /// Queue occupancy grows without any static bound at all — the
    /// leading loop is not strip-mined.
    UnboundedOccupancy,
    /// A pop can execute on an empty queue.
    Underflow,
    /// The program can reach its exit with entries still queued: the
    /// leading and trailing loops do not push/pop in balance.
    UnbalancedAtExit,
    /// A `Forward_BQ` executes with no `Mark_BQ` active on some path.
    ForwardWithoutMark,
    /// A `Branch_on_TCR` executes before any `Pop_TQ` loaded the
    /// trip-count register on some path.
    BranchTcrWithoutTrip,
    /// A `Push_TQ` sits inside the TCR-driven decoupled inner loop it
    /// feeds — trip counts must be generated outside that loop.
    PushTqInTcrLoop,
    /// A queue restore executes with no matching save on some path.
    RestoreWithoutSave,
    /// The control-flow graph has an irreducible cycle; the verifier
    /// cannot reason about it and gives up on the whole program.
    IrreducibleCfg,
    /// Code that can never execute (analysis skips it).
    UnreachableCode,
    /// The analysis hit an internal complexity limit and degraded; any
    /// check that then fails is reported by its own rule, so this alone
    /// is informational.
    AnalysisDegraded,
    /// A store sits in the leading (speculative) loop of a CFD-spec
    /// output — stores must never be hoisted past later iterations.
    HoistedStore,
    /// A load sits in the leading loop of a CFD-spec output without a
    /// speculation-safety proof (unknown or store-conflicting address).
    HoistedUnsafeLoad,
}

impl Rule {
    /// Stable kebab-case name used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Overflow => "overflow",
            Rule::UnboundedOccupancy => "unbounded-occupancy",
            Rule::Underflow => "underflow",
            Rule::UnbalancedAtExit => "unbalanced-at-exit",
            Rule::ForwardWithoutMark => "forward-without-mark",
            Rule::BranchTcrWithoutTrip => "branch-tcr-without-trip",
            Rule::PushTqInTcrLoop => "push-tq-in-tcr-loop",
            Rule::RestoreWithoutSave => "restore-without-save",
            Rule::IrreducibleCfg => "irreducible-cfg",
            Rule::UnreachableCode => "unreachable-code",
            Rule::AnalysisDegraded => "analysis-degraded",
            Rule::HoistedStore => "hoisted-store",
            Rule::HoistedUnsafeLoad => "hoisted-unsafe-load",
        }
    }
}

/// One finding, anchored to a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Severity of this instance.
    pub severity: Severity,
    /// The queue involved, when the rule concerns one.
    pub queue: Option<QueueKind>,
    /// The instruction the finding anchors to, when it has one.
    pub pc: Option<u32>,
    /// The nearest label at or before `pc`.
    pub label: Option<String>,
    /// The source annotation attached at `pc`, if any.
    pub annotation: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic and resolves its label/annotation spans
    /// against `program`.
    pub fn new(
        rule: Rule,
        severity: Severity,
        queue: Option<QueueKind>,
        pc: Option<u32>,
        message: String,
        program: &Program,
    ) -> Diagnostic {
        let label = pc.and_then(|pc| {
            program
                .labels()
                .filter(|&(_, at)| at <= pc)
                .max_by_key(|&(name, at)| (at, std::cmp::Reverse(name.to_string())))
                .map(|(name, _)| name.to_string())
        });
        let annotation = pc.and_then(|pc| program.annotation(pc).map(str::to_string));
        Diagnostic { rule, severity, queue, pc, label, annotation, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity.name(), self.rule.name())?;
        if let Some(q) = self.queue {
            write!(f, " [{}]", q.name())?;
        }
        match (self.pc, &self.label) {
            (Some(pc), Some(l)) => write!(f, " at pc {pc} ({l})")?,
            (Some(pc), None) => write!(f, " at pc {pc}")?,
            _ => {}
        }
        write!(f, ": {}", self.message)
    }
}

/// The proved static occupancy bound per queue: `Some(n)` means the
/// verifier proved occupancy never exceeds `n`; `None` means it found no
/// finite bound (an [`Rule::UnboundedOccupancy`] error accompanies it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueBounds {
    /// Branch-queue bound.
    pub bq: Option<u64>,
    /// Value-queue bound.
    pub vq: Option<u64>,
    /// Trip-count-queue bound.
    pub tq: Option<u64>,
}

impl QueueBounds {
    /// The bound for a queue.
    pub fn get(&self, q: QueueKind) -> Option<u64> {
        match q {
            QueueKind::Bq => self.bq,
            QueueKind::Vq => self.vq,
            QueueKind::Tq => self.tq,
        }
    }
}

/// Everything [`lint_program`](crate::lint_program) found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in program order (pc-less findings first).
    pub diagnostics: Vec<Diagnostic>,
    /// Proved per-queue static occupancy bounds.
    pub bounds: QueueBounds,
}

impl LintReport {
    /// `true` when no error-severity finding exists — the program's
    /// queue discipline is proved safe under the lint configuration.
    pub fn clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Renders the findings as a human-readable listing.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let b = |x: Option<u64>| x.map_or("unbounded".to_string(), |v| v.to_string());
        out.push_str(&format!(
            "verdict: {}  (static bounds: bq<={}, vq<={}, tq<={})\n",
            if self.clean() { "clean" } else { "VIOLATIONS" },
            b(self.bounds.bq),
            b(self.bounds.vq),
            b(self.bounds.tq)
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }

    /// Deterministic JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"clean\":");
        s.push_str(if self.clean() { "true" } else { "false" });
        s.push_str(",\"bounds\":{");
        let b = |x: Option<u64>| x.map_or("null".to_string(), |v| v.to_string());
        s.push_str(&format!("\"bq\":{},\"vq\":{},\"tq\":{}", b(self.bounds.bq), b(self.bounds.vq), b(self.bounds.tq)));
        s.push_str("},\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"severity\":{},\"queue\":{},\"pc\":{},\"label\":{},\"annotation\":{},\"message\":{}}}",
                json_str(d.rule.name()),
                json_str(d.severity.name()),
                d.queue.map_or("null".to_string(), |q| json_str(q.name())),
                d.pc.map_or("null".to_string(), |pc| pc.to_string()),
                d.label.as_deref().map_or("null".to_string(), json_str),
                d.annotation.as_deref().map_or("null".to_string(), json_str),
                json_str(&d.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::Assembler;

    fn program_with_labels() -> Program {
        let mut a = Assembler::new();
        let r = cfd_isa::Reg::new(1);
        a.label("start");
        a.li(r, 1);
        a.label("body");
        a.annotate("the annotated op");
        a.addi(r, r, 1);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn spans_resolve_to_nearest_label_and_annotation() {
        let p = program_with_labels();
        let d = Diagnostic::new(Rule::Underflow, Severity::Error, Some(QueueKind::Bq), Some(1), "m".into(), &p);
        assert_eq!(d.label.as_deref(), Some("body"));
        assert_eq!(d.annotation.as_deref(), Some("the annotated op"));
        let d0 = Diagnostic::new(Rule::Underflow, Severity::Error, None, Some(0), "m".into(), &p);
        assert_eq!(d0.label.as_deref(), Some("start"));
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let p = program_with_labels();
        let d = Diagnostic::new(
            Rule::Overflow,
            Severity::Error,
            Some(QueueKind::Tq),
            Some(1),
            "needs \"quotes\"\nand newline".into(),
            &p,
        );
        let r = LintReport { diagnostics: vec![d], bounds: QueueBounds { bq: Some(64), vq: Some(0), tq: None } };
        let j = r.to_json();
        assert_eq!(j, r.to_json());
        assert!(j.contains("\"bq\":64"));
        assert!(j.contains("\"tq\":null"));
        assert!(j.contains("\\\"quotes\\\"\\nand"));
        assert!(j.starts_with("{\"clean\":false"));
        assert!(!r.clean());
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn clean_report_renders() {
        let r = LintReport { diagnostics: vec![], bounds: QueueBounds { bq: Some(1), vq: Some(0), tq: Some(0) } };
        assert!(r.clean());
        assert!(r.table().contains("clean"));
        assert!(r.to_json().starts_with("{\"clean\":true"));
    }
}
