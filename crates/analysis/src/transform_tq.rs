//! Automatic CFD(TQ) transformation for separable loop-branches (§IV-C).
//!
//! Recognizes the canonical nested-loop shape of paper Fig. 13b/14 —
//!
//! ```text
//! outer:  <trip slice>          ; computes m = trip count
//!         li j, 0
//!         j inner_test
//! body:   <inner body>          ; straight-line
//!         addi j, j, 1
//! inner_test:
//!         blt j, m, body        ; the separable loop-branch
//!         <outer latch>
//!         blt i, n, outer
//! ```
//!
//! — and rewrites it into two outer loops: the first computes trip counts
//! and pushes them onto the TQ; the second pops them and drives the inner
//! loop with `Branch_on_TCR`, strip-mined to the TQ size.

use crate::cfg::Cfg;
use crate::classify::{classify_program, BranchClass, ClassifyConfig};
use crate::dom::DomTree;
use crate::loops::{find_loops, is_nested};
use crate::transform::{TransformError, TransformReport};
use cfd_isa::{Assembler, BranchCond, Instr, Program, Reg};

/// Applies the CFD(TQ) transform to the separable loop-branch at
/// `branch_pc`, strip-mining outer iterations in chunks of `tq_size`.
///
/// `scratch` must name at least 4 registers dead across the outer loop.
///
/// # Errors
///
/// Returns a [`TransformError`] when the branch is not a separable
/// loop-branch or the nest does not match the canonical shape.
pub fn apply_cfd_tq(
    program: &Program,
    branch_pc: u32,
    tq_size: usize,
    scratch: &[Reg],
) -> Result<TransformReport, TransformError> {
    if scratch.len() < 4 {
        return Err(TransformError::NeedScratchRegisters);
    }
    let (s_end, s_save, s_lim, s_n) = (scratch[0], scratch[1], scratch[2], scratch[3]);

    // Classification gate.
    let report = classify_program(program, None, ClassifyConfig::default())
        .into_iter()
        .find(|r| r.pc == branch_pc)
        .ok_or(TransformError::NotABranch(branch_pc))?;
    if report.class != BranchClass::SeparableLoopBranch {
        return Err(TransformError::NotTotallySeparable(report.class));
    }

    // The inner loop-branch: `blt j, m, body`.
    let Some(Instr::Branch { cond: BranchCond::Lt, rs1: j_reg, rs2: m_reg, target: body_target }) =
        program.fetch(branch_pc)
    else {
        return Err(TransformError::NonCanonicalLoop("loop-branch must be `blt j, m, body`"));
    };

    let cfg = Cfg::build(program);
    let dom = DomTree::dominators(&cfg);
    let loops = find_loops(&cfg, &dom);
    let inner = loops
        .iter()
        .filter(|l| l.contains(cfg.block_of(branch_pc)))
        .min_by_key(|l| l.blocks.len())
        .ok_or(TransformError::NonCanonicalLoop("branch not in a loop"))?;
    let outer = loops
        .iter()
        .find(|o| is_nested(inner, o))
        .ok_or(TransformError::NonCanonicalLoop("loop-branch needs an enclosing outer loop"))?;

    let outer_start = outer.blocks.iter().map(|&b| cfg.blocks[b].start).min().expect("non-empty");
    let outer_end = outer.blocks.iter().map(|&b| cfg.blocks[b].end).max().expect("non-empty");
    let inner_start = inner.blocks.iter().map(|&b| cfg.blocks[b].start).min().expect("non-empty");
    let inner_end = inner.blocks.iter().map(|&b| cfg.blocks[b].end).max().expect("non-empty");

    // Outer latch: `blt i, n, outer_start` at the end of the outer loop.
    let outer_back_pc = outer_end - 1;
    let Some(Instr::Branch { cond: BranchCond::Lt, rs1: ind, rs2: bound, target: outer_target }) =
        program.fetch(outer_back_pc)
    else {
        return Err(TransformError::NonCanonicalLoop("outer latch must end in `blt i, n, top`"));
    };
    if outer_target != outer_start {
        return Err(TransformError::NonCanonicalLoop("outer latch must branch to the outer start"));
    }
    // Canonical inner preheader: `li j, 0` then `j inner_test` just before
    // the inner loop's body.
    if body_target != inner_start {
        return Err(TransformError::NonCanonicalLoop("inner branch must target the inner start"));
    }
    // Regions: trip slice [outer_start .. preheader), preheader = the
    // `li j,0; j inner_test` pair, inner body [inner_start .. branch region),
    // outer latch (inner_end .. outer_back_pc).
    let preheader_start = inner_start
        .checked_sub(2)
        .filter(|&p| p >= outer_start)
        .ok_or(TransformError::NonCanonicalLoop("expected `li j, 0; j inner_test` before the inner body"))?;
    match (program.fetch(preheader_start), program.fetch(preheader_start + 1)) {
        (Some(Instr::Li { rd, imm: 0 }), Some(Instr::Jump { .. })) if rd == j_reg => {}
        _ => return Err(TransformError::NonCanonicalLoop("expected `li j, 0; j inner_test` before the inner body")),
    }
    // Straight-line checks.
    for pc in outer_start..preheader_start {
        let i = program.fetch(pc).expect("in range");
        if i.is_control() || matches!(i, Instr::Halt) {
            return Err(TransformError::NonCanonicalLoop("trip slice must be straight-line"));
        }
    }
    for pc in inner_start..branch_pc {
        let i = program.fetch(pc).expect("in range");
        if i.is_control() || matches!(i, Instr::Halt) {
            return Err(TransformError::NonCanonicalLoop("inner body must be straight-line"));
        }
    }
    for pc in branch_pc + 1..outer_back_pc {
        let i = program.fetch(pc).expect("in range");
        if i.is_control() || matches!(i, Instr::Halt) {
            return Err(TransformError::NonCanonicalLoop("outer latch must be straight-line"));
        }
    }

    let trip_slice: Vec<Instr> =
        (outer_start..preheader_start).map(|pc| program.fetch(pc).expect("in range")).collect();
    // The outer latch is re-emitted in both outer loops; only `ind` is
    // saved/restored around the second, so nothing else may change in it.
    for pc in inner_end..outer_back_pc {
        let i = program.fetch(pc).expect("in range");
        if i.dest() != Some(ind) || i.is_mem() {
            return Err(TransformError::NonCanonicalLoop(
                "outer latch may only update the induction register (it runs in both loops)",
            ));
        }
    }
    // The second loop never re-runs the trip slice: the inner body must not
    // read a register the slice defines (the trip count itself flows through
    // the TCR). A body-local redefinition before the read is fine.
    {
        let mut live_slice_defs: std::collections::BTreeSet<Reg> = trip_slice.iter().filter_map(|i| i.dest()).collect();
        live_slice_defs.insert(m_reg);
        live_slice_defs.remove(&j_reg); // reset by the re-emitted `li j, 0`
        for pc in inner_start..branch_pc {
            let i = program.fetch(pc).expect("in range");
            let (a1, a2) = i.sources();
            if [a1, a2].into_iter().flatten().any(|r| live_slice_defs.contains(&r)) {
                return Err(TransformError::NonCanonicalLoop(
                    "inner body reads trip-slice results; they are not recomputed in the pop loop",
                ));
            }
            if let Some(d) = i.dest() {
                live_slice_defs.remove(&d);
            }
        }
    }
    // The inner body, including its trailing `j` induction update: the TCR
    // drives the loop-branch, but `j` may still feed addressing inside the
    // body, so its update is preserved.
    let inner_body: Vec<Instr> = (inner_start..branch_pc).map(|pc| program.fetch(pc).expect("in range")).collect();
    let outer_latch: Vec<Instr> = (inner_end..outer_back_pc).map(|pc| program.fetch(pc).expect("in range")).collect();
    let _ = inner_end;

    // Rebuild.
    let mut a = Assembler::new();
    let n_instrs = program.len() as u32;
    let mut is_target = vec![false; n_instrs as usize + 1];
    for instr in program.instrs() {
        if let Some(t) = instr.direct_target() {
            is_target[t as usize] = true;
        }
    }
    let emit_translated = |a: &mut Assembler, instr: Instr| match instr {
        Instr::Branch { cond, rs1, rs2, target } => {
            a.branch(cond, rs1, rs2, &label_for(target, outer_start));
        }
        Instr::Jump { target } => {
            a.j(&label_for(target, outer_start));
        }
        Instr::Jal { rd, target } => {
            a.jal(rd, &label_for(target, outer_start));
        }
        other => {
            a.raw(other);
        }
    };
    for pc in 0..outer_start {
        if is_target[pc as usize] {
            a.label(&format!("L{pc}"));
        }
        emit_translated(&mut a, program.fetch(pc).expect("in range"));
    }

    a.label("tq_entry");
    a.mv(s_n, bound);
    a.label("tq_chunk");
    a.mv(s_save, ind);
    a.addi(s_lim, ind, tq_size as i64);
    a.min(s_lim, s_lim, s_n);
    // Loop 1: trip counts onto the TQ.
    a.label("tq_gen");
    for i in &trip_slice {
        a.raw(*i);
    }
    a.push_tq(m_reg);
    for i in &outer_latch {
        a.raw(*i);
    }
    a.branch(BranchCond::Lt, ind, s_lim, "tq_gen");
    a.mv(s_end, ind);
    a.mv(ind, s_save);
    // Loop 2: pop trip counts; the TCR drives the inner loop.
    a.label("tq_use");
    a.pop_tq();
    a.li(j_reg, 0);
    a.j("tq_inner_test");
    a.label("tq_inner_body");
    // The captured body already ends with the `j` induction update.
    for i in &inner_body {
        a.raw(*i);
    }
    a.label("tq_inner_test");
    a.branch_on_tcr("tq_inner_body");
    for i in &outer_latch {
        a.raw(*i);
    }
    a.branch(BranchCond::Lt, ind, s_end, "tq_use");
    a.branch(BranchCond::Lt, ind, s_n, "tq_chunk");

    for pc in outer_end..n_instrs {
        if is_target[pc as usize] {
            a.label(&format!("L{pc}"));
        }
        emit_translated(&mut a, program.fetch(pc).expect("in range"));
    }
    let new_program = a.finish()?;
    let static_instrs = (program.len(), new_program.len());
    let lint = crate::lint_program(&new_program, &crate::LintConfig { tq_size, ..crate::LintConfig::default() });
    Ok(TransformReport { program: new_program, chunk: tq_size, static_instrs, lint })
}

fn label_for(target: u32, outer_start: u32) -> String {
    if target == outer_start {
        "tq_entry".to_string()
    } else {
        format!("L{target}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::{Machine, MemImage};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// The astar Fig. 14 shape: `for i { m = a[i]; for j in 0..m { acc += f(i,j) } }`.
    fn kernel(n: i64) -> (Program, u32, MemImage) {
        let (i, nn, j, m, base, tmp, acc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut a = Assembler::new();
        a.li(nn, n);
        a.li(base, 0x30000);
        a.label("outer");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(m, 0, tmp);
        a.li(j, 0);
        a.j("inner_test");
        a.label("inner_body");
        a.add(acc, acc, j);
        a.xor(acc, acc, i);
        a.addi(j, j, 1);
        a.label("inner_test");
        let bpc = a.here();
        a.blt(j, m, "inner_body");
        a.addi(i, i, 1);
        a.blt(i, nn, "outer");
        a.halt();
        let program = a.finish().unwrap();
        let mut mem = MemImage::new();
        let mut s = 0x2545f4914f6cdd1du64;
        for k in 0..n as u64 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            mem.write_u64(0x30000 + 8 * k, s % 10);
        }
        (program, bpc, mem)
    }

    fn observe(program: Program, mem: MemImage) -> i64 {
        let mut m = Machine::new(program, mem);
        m.run_to_halt().unwrap();
        m.regs.read(r(7))
    }

    #[test]
    fn transformed_program_is_equivalent() {
        let (program, bpc, mem) = kernel(800);
        let t = apply_cfd_tq(&program, bpc, 256, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert_eq!(observe(t.program, mem.clone()), observe(program, mem));
    }

    #[test]
    fn transformed_program_passes_translation_validation() {
        let (program, bpc, _) = kernel(800);
        let t = apply_cfd_tq(&program, bpc, 256, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert!(t.lint.clean(), "{}", t.lint.table());
        assert_eq!(t.lint.bounds.tq, Some(256));
    }

    #[test]
    fn equivalence_with_tiny_tq() {
        let (program, bpc, mem) = kernel(300);
        let t = apply_cfd_tq(&program, bpc, 8, &[r(20), r(21), r(22), r(23)]).unwrap();
        assert!(t.lint.clean(), "{}", t.lint.table());
        assert_eq!(t.lint.bounds.tq, Some(8));
        // Run on a machine with a matching TQ size: strip mining must fit.
        let mut m =
            Machine::with_queues(t.program, mem.clone(), cfd_isa::QueueConfig { tq_size: 8, ..Default::default() });
        m.run_to_halt().unwrap();
        assert_eq!(m.regs.read(r(7)), observe(program, mem));
    }

    #[test]
    fn emits_tq_instructions() {
        let (program, bpc, _) = kernel(100);
        let t = apply_cfd_tq(&program, bpc, 256, &[r(20), r(21), r(22), r(23)]).unwrap();
        let instrs = t.program.instrs();
        assert!(instrs.iter().any(|i| matches!(i, Instr::PushTq { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::PopTq)));
        assert!(instrs.iter().any(|i| matches!(i, Instr::BranchOnTcr { .. })));
    }

    #[test]
    fn rejects_plain_separable_branch() {
        // A regular guarded loop is not a loop-branch.
        let (i, nn, p) = (r(1), r(2), r(3));
        let mut a = Assembler::new();
        a.li(nn, 10);
        a.label("top");
        a.xor(p, i, 1i64);
        a.and(p, p, 1i64);
        let bpc = a.here();
        a.beqz(p, "skip");
        for k in 0..8 {
            a.addi(r(4 + k), r(4 + k), 1);
        }
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, nn, "top");
        a.halt();
        let err = apply_cfd_tq(&a.finish().unwrap(), bpc, 256, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert!(matches!(err, TransformError::NotTotallySeparable(_)));
    }

    #[test]
    fn rejects_without_scratch() {
        let (program, bpc, _) = kernel(10);
        assert_eq!(apply_cfd_tq(&program, bpc, 256, &[r(20)]).unwrap_err(), TransformError::NeedScratchRegisters);
    }

    #[test]
    fn rejects_body_reading_trip_slice_results() {
        // The body reads `tmp` (the trip slice's address temp), which the
        // pop loop never recomputes: must bail.
        let (i, nn, j, m, base, tmp, acc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut a = Assembler::new();
        a.li(nn, 50);
        a.li(base, 0x30000);
        a.label("outer");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(m, 0, tmp);
        a.li(j, 0);
        a.j("inner_test");
        a.label("inner_body");
        a.add(acc, acc, tmp); // reads a slice-defined register
        a.addi(j, j, 1);
        a.label("inner_test");
        let bpc = a.here();
        a.blt(j, m, "inner_body");
        a.addi(i, i, 1);
        a.blt(i, nn, "outer");
        a.halt();
        let mut mem = MemImage::new();
        for k in 0..50u64 {
            mem.write_u64(0x30000 + 8 * k, k % 5);
        }
        let err = apply_cfd_tq(&a.finish().unwrap(), bpc, 256, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert_eq!(
            err,
            TransformError::NonCanonicalLoop(
                "inner body reads trip-slice results; they are not recomputed in the pop loop"
            )
        );
    }

    #[test]
    fn rejects_outer_latch_with_non_induction_update() {
        let (i, nn, j, m, base, tmp, acc, ptr) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(9));
        let mut a = Assembler::new();
        a.li(nn, 50);
        a.li(base, 0x30000);
        a.label("outer");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(m, 0, tmp);
        a.li(j, 0);
        a.j("inner_test");
        a.label("inner_body");
        a.add(acc, acc, j);
        a.addi(j, j, 1);
        a.label("inner_test");
        let bpc = a.here();
        a.blt(j, m, "inner_body");
        a.addi(ptr, ptr, 8); // non-induction latch update
        a.addi(i, i, 1);
        a.blt(i, nn, "outer");
        a.halt();
        let mut mem = MemImage::new();
        for k in 0..50u64 {
            mem.write_u64(0x30000 + 8 * k, k % 5);
        }
        let err = apply_cfd_tq(&a.finish().unwrap(), bpc, 256, &[r(20), r(21), r(22), r(23)]).unwrap_err();
        assert_eq!(
            err,
            TransformError::NonCanonicalLoop(
                "outer latch may only update the induction register (it runs in both loops)"
            )
        );
    }
}
