//! Natural-loop detection via dominator back edges.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use std::collections::BTreeSet;

/// A natural loop: header plus body blocks (header included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header block.
    pub header: usize,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<usize>,
    /// Back-edge sources (latches).
    pub latches: Vec<usize>,
}

impl NaturalLoop {
    /// Whether `block` belongs to the loop.
    pub fn contains(&self, block: usize) -> bool {
        self.blocks.contains(&block)
    }

    /// Total instruction count of the loop body.
    pub fn instr_count(&self, cfg: &Cfg) -> usize {
        self.blocks.iter().map(|&b| cfg.blocks[b].len()).sum()
    }
}

/// Finds all natural loops; loops sharing a header are merged.
pub fn find_loops(cfg: &Cfg, dom: &DomTree) -> Vec<NaturalLoop> {
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for (u, block) in cfg.blocks.iter().enumerate() {
        for &h in &block.succs {
            if dom.dominates(h, u) {
                // Back edge u -> h: the loop body is everything that can
                // reach u without passing through h.
                let mut body: BTreeSet<usize> = BTreeSet::new();
                body.insert(h);
                let mut stack = vec![u];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for &p in &cfg.blocks[x].preds {
                            stack.push(p);
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == h) {
                    existing.blocks.extend(body);
                    existing.latches.push(u);
                } else {
                    loops.push(NaturalLoop { header: h, blocks: body, latches: vec![u] });
                }
            }
        }
    }
    loops
}

/// Whether loop `inner` is strictly nested inside loop `outer`.
pub fn is_nested(inner: &NaturalLoop, outer: &NaturalLoop) -> bool {
    inner.header != outer.header && inner.blocks.iter().all(|b| outer.blocks.contains(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::{Assembler, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn single_loop_found() {
        let mut a = Assembler::new();
        a.li(r(2), 10);
        a.label("top");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "top");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, cfg.block_of(1));
        assert_eq!(loops[0].blocks.len(), 1);
    }

    #[test]
    fn nested_loops_detected() {
        let mut a = Assembler::new();
        a.li(r(2), 10);
        a.li(r(4), 3);
        a.label("outer");
        a.li(r(3), 0);
        a.label("inner");
        a.addi(r(3), r(3), 1);
        a.blt(r(3), r(4), "inner");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "outer");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 2);
        let inner = loops.iter().find(|l| l.header == cfg.block_of(3)).unwrap();
        let outer = loops.iter().find(|l| l.header == cfg.block_of(2)).unwrap();
        assert!(is_nested(inner, outer));
        assert!(!is_nested(outer, inner));
    }

    #[test]
    fn loop_with_branch_inside_counts_all_blocks() {
        let mut a = Assembler::new();
        a.li(r(2), 10);
        a.label("top");
        a.beqz(r(3), "skip");
        a.addi(r(4), r(4), 1);
        a.label("skip");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "top");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].blocks.len(), 3); // header, CD body, latch
        assert_eq!(loops[0].instr_count(&cfg), 4);
    }

    #[test]
    fn no_loops_in_straightline() {
        let mut a = Assembler::new();
        a.addi(r(1), r(1), 1);
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let dom = DomTree::dominators(&cfg);
        assert!(find_loops(&cfg, &dom).is_empty());
    }
}
