//! Control-flow graph construction over `cfd-isa` programs.

use cfd_isa::{Instr, Program};
use std::collections::BTreeSet;

/// A basic block: a maximal straight-line PC range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First PC of the block.
    pub start: u32,
    /// One past the last PC of the block.
    pub end: u32,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// PCs covered by this block.
    pub fn pcs(&self) -> impl Iterator<Item = u32> {
        self.start..self.end
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never true for constructed CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A control-flow graph with a virtual exit node.
///
/// Block 0 is the entry (PC 0). The virtual exit ([`Cfg::exit`]) has no PC
/// range; every `Halt` block and every block that falls off the program's
/// end links to it, so post-dominance is well-defined.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The blocks; index = block id. The last block is the virtual exit.
    pub blocks: Vec<BasicBlock>,
    exit: usize,
    /// Block id containing each PC.
    block_of_pc: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of a program.
    ///
    /// Indirect jumps (`jr`) are treated as edges to the virtual exit (our
    /// kernels only use them for returns out of the analyzed region).
    pub fn build(program: &Program) -> Cfg {
        let n = program.len() as u32;
        // Leaders: PC 0, targets of control transfers, fall-throughs after them.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(0);
        for (pc, instr) in program.instrs().iter().enumerate() {
            let pc = pc as u32;
            if let Some(t) = instr.direct_target() {
                leaders.insert(t);
            }
            if (instr.is_control() || matches!(instr, Instr::Halt)) && pc + 1 < n {
                leaders.insert(pc + 1);
            }
        }
        let bounds: Vec<u32> = leaders.into_iter().filter(|&l| l < n).collect();
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(bounds.len() + 1);
        for (i, &start) in bounds.iter().enumerate() {
            let end = bounds.get(i + 1).copied().unwrap_or(n);
            blocks.push(BasicBlock { start, end, succs: Vec::new(), preds: Vec::new() });
        }
        let exit = blocks.len();
        blocks.push(BasicBlock { start: n, end: n, succs: Vec::new(), preds: Vec::new() });

        let mut block_of_pc = vec![0usize; n as usize];
        for (id, b) in blocks.iter().enumerate().take(exit) {
            for pc in b.start..b.end {
                block_of_pc[pc as usize] = id;
            }
        }
        let block_at = |pc: u32| -> usize {
            if pc < n {
                block_of_pc[pc as usize]
            } else {
                exit
            }
        };

        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (id, block) in blocks.iter().enumerate().take(exit) {
            let last_pc = block.end - 1;
            let instr = program.fetch(last_pc).expect("in range");
            match instr {
                Instr::Jump { target } | Instr::Jal { target, .. } => edges.push((id, block_at(target))),
                Instr::Jr { .. } => edges.push((id, exit)),
                Instr::Halt => edges.push((id, exit)),
                Instr::Branch { target, .. }
                | Instr::BranchOnBq { target }
                | Instr::BranchOnTcr { target }
                | Instr::PopTqBrOvf { target } => {
                    edges.push((id, block_at(target)));
                    edges.push((id, block_at(last_pc + 1)));
                }
                _ => edges.push((id, block_at(last_pc + 1))),
            }
        }
        for (u, v) in edges {
            if !blocks[u].succs.contains(&v) {
                blocks[u].succs.push(v);
                blocks[v].preds.push(u);
            }
        }
        Cfg { blocks, exit, block_of_pc }
    }

    /// The entry block id (always 0).
    pub fn entry(&self) -> usize {
        0
    }

    /// The virtual exit block id.
    pub fn exit(&self) -> usize {
        self.exit
    }

    /// Number of blocks including the virtual exit.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no real blocks.
    pub fn is_empty(&self) -> bool {
        self.exit == 0
    }

    /// The block containing `pc`.
    pub fn block_of(&self, pc: u32) -> usize {
        self.block_of_pc[pc as usize]
    }

    /// Reverse postorder over forward edges from the entry.
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut seen = vec![false; self.len()];
        // Iterative DFS computing postorder.
        let mut stack: Vec<(usize, usize)> = vec![(self.entry(), 0)];
        seen[self.entry()] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < self.blocks[node].succs.len() {
                let next = self.blocks[node].succs[*idx];
                *idx += 1;
                if !seen[next] {
                    seen[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::{Assembler, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    fn diamond() -> Program {
        // 0: beqz r1 -> else
        // 1: addi (then)
        // 2: j join
        // else 3: addi
        // join 4: halt
        let mut a = Assembler::new();
        a.beqz(r(1), "else");
        a.addi(r(2), r(2), 1);
        a.j("join");
        a.label("else");
        a.addi(r(2), r(2), 2);
        a.label("join");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn diamond_has_four_blocks_plus_exit() {
        let cfg = Cfg::build(&diamond());
        assert_eq!(cfg.len(), 5);
        let b0 = &cfg.blocks[0];
        assert_eq!(b0.succs.len(), 2);
    }

    #[test]
    fn join_block_has_two_preds() {
        let cfg = Cfg::build(&diamond());
        let join = cfg.block_of(4);
        assert_eq!(cfg.blocks[join].preds.len(), 2);
        assert_eq!(cfg.blocks[join].succs, vec![cfg.exit()]);
    }

    #[test]
    fn loop_back_edge_exists() {
        let mut a = Assembler::new();
        a.li(r(2), 10);
        a.label("top");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "top");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let top = cfg.block_of(1);
        assert!(cfg.blocks[top].succs.contains(&top), "self-loop block");
    }

    #[test]
    fn rpo_starts_at_entry() {
        let cfg = Cfg::build(&diamond());
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry());
        assert_eq!(rpo.len(), cfg.len());
        // Exit comes last in RPO for a diamond.
        assert_eq!(*rpo.last().unwrap(), cfg.exit());
    }

    #[test]
    fn block_of_maps_every_pc() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        for pc in 0..p.len() as u32 {
            let b = cfg.block_of(pc);
            assert!(cfg.blocks[b].pcs().any(|x| x == pc));
        }
    }
}
