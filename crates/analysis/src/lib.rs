//! # cfd-analysis — static control-flow analysis and the CFD compiler pass
//!
//! The paper's §II classifies hard-to-predict branches by the size of their
//! control-dependent regions and the separability of their backward slices.
//! This crate implements that analysis *statically* over `cfd-isa` programs:
//!
//! * [`Cfg`] — basic blocks with a virtual exit,
//! * [`DomTree`] — dominators and post-dominators (Cooper–Harvey–Kennedy),
//! * [`ControlDeps`] — Ferrante-style control dependence,
//! * [`find_loops`] — natural loops,
//! * [`backward_slice`] — a branch's predicate computation within its loop,
//! * [`LoopValues`] / [`MemDep`] — per-register symbolic value ranges and
//!   address expressions, and the sound may-alias oracle built on them,
//! * [`speculation_safety`] — the `ProvenSafe` / `Unsafe` contract for
//!   loads hoisted past loop stores,
//! * [`classify_program`] — the paper's hammock / separable(total/partial) /
//!   inseparable / loop-branch taxonomy ([`BranchClass`]), plus the
//!   precision-tier upgrade to [`BranchClass::SpeculativelySeparable`],
//! * [`apply_cfd`] — an automatic CFD transform for canonical totally
//!   separable branches, with BQ-sized strip mining (the gcc-pass analog),
//! * [`apply_cfd_tq`] — the loop-branch counterpart: decouples canonical
//!   nested loops through the Trip-count Queue (§IV-C),
//! * [`apply_cfd_spec`] — the automatic selector: CFD, CFD-TQ, or
//!   speculative CFD per branch from its classification, every output
//!   re-linted against the speculation contract.
//!
//! # Example
//!
//! ```
//! use cfd_analysis::{classify_program, BranchClass, ClassifyConfig};
//! use cfd_isa::{Assembler, Reg};
//!
//! let (i, n, p) = (Reg::new(1), Reg::new(2), Reg::new(3));
//! let mut a = Assembler::new();
//! a.li(n, 100);
//! a.label("top");
//! a.xor(p, i, 3i64);
//! a.and(p, p, 1i64);
//! a.beqz(p, "skip");
//! for k in 0..8 {
//!     a.addi(Reg::new(4 + k), Reg::new(4 + k), 1);
//! }
//! a.label("skip");
//! a.addi(i, i, 1);
//! a.blt(i, n, "top");
//! a.halt();
//! let program = a.finish()?;
//! let reports = classify_program(&program, None, ClassifyConfig::default());
//! assert!(reports.iter().any(|r| r.class == BranchClass::SeparableTotal));
//! # Ok::<(), cfd_isa::AsmError>(())
//! ```

mod cfg;
mod classify;
mod control_dep;
mod diag;
mod dom;
mod loops;
mod mdep;
mod slice;
mod spec;
mod transform;
mod transform_tq;
mod verify;
mod vrange;

pub use cfg::{BasicBlock, Cfg};
pub use classify::{classify_program, BranchClass, BranchReport, ClassifyConfig};
pub use control_dep::ControlDeps;
pub use diag::{Diagnostic, LintReport, QueueBounds, Rule, Severity};
pub use dom::DomTree;
pub use loops::{find_loops, is_nested, NaturalLoop};
pub use mdep::{AliasVerdict, MemDep};
pub use slice::{backward_slice, backward_slice_with, AliasMode, Slice};
pub use spec::{speculation_safety, DisjointClaim, LoadReport, LoadSafety, SpecReport};
pub use transform::{apply_cfd, apply_cfd_spec, SpecDecision, SpecTransformReport, TransformError, TransformReport};
pub use transform_tq::apply_cfd_tq;
pub use verify::{lint_program, lint_speculation, LintConfig};
pub use vrange::{AddrRange, Expr, IndInfo, LoopValues, MemRef};
