//! Backward slices of branches within loops.
//!
//! The backward slice of a branch, restricted to its enclosing loop, is the
//! set of loop instructions that (transitively) produce the branch's source
//! registers — the paper's "branch slice" / predicate computation. Memory
//! dependences use a register-granularity may-alias heuristic: a load in
//! the slice depends on loop stores with the same base register.

use crate::loops::NaturalLoop;
use cfd_isa::{Instr, Program, Reg, Src2};
use std::collections::BTreeSet;

use crate::cfg::Cfg;

/// A branch's backward slice within a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// PC of the branch the slice feeds.
    pub branch_pc: u32,
    /// PCs of slice instructions (the branch itself excluded).
    pub pcs: BTreeSet<u32>,
    /// Registers demanded from outside the loop (live-ins of the slice).
    pub live_ins: BTreeSet<Reg>,
}

fn sources_of(instr: &Instr) -> Vec<Reg> {
    let (a, b) = instr.sources();
    let mut v = Vec::new();
    if let Some(r) = a {
        if !r.is_zero() {
            v.push(r);
        }
    }
    if let Some(r) = b {
        if !r.is_zero() {
            v.push(r);
        }
    }
    v
}

fn imm_src2(instr: &Instr) -> Option<Src2> {
    match instr {
        Instr::Alu { src2, .. } => Some(*src2),
        _ => None,
    }
}

/// Computes the backward slice of the conditional branch at `branch_pc`
/// within `lp`, iterating to a fixpoint over loop-carried dependences.
pub fn backward_slice(program: &Program, cfg: &Cfg, lp: &NaturalLoop, branch_pc: u32) -> Slice {
    let loop_pcs: Vec<u32> =
        lp.blocks.iter().filter(|&&b| b < cfg.len() - 1).flat_map(|&b| cfg.blocks[b].pcs()).collect();
    let branch = program.fetch(branch_pc).expect("branch pc in range");
    let mut demand: BTreeSet<Reg> = sources_of(&branch).into_iter().collect();
    let mut pcs: BTreeSet<u32> = BTreeSet::new();
    let _ = imm_src2(&branch);

    // Fixpoint: a pass adds any loop instruction writing a demanded register
    // and folds its sources into the demand set. Loads add may-alias stores.
    loop {
        let mut changed = false;
        for &pc in &loop_pcs {
            if pc == branch_pc || pcs.contains(&pc) {
                continue;
            }
            let instr = program.fetch(pc).expect("in range");
            let writes_demanded = instr.dest().is_some_and(|d| demand.contains(&d));
            if writes_demanded {
                pcs.insert(pc);
                for s in sources_of(&instr) {
                    demand.insert(s);
                }
                changed = true;
                // Loads pull in may-aliasing loop stores (same base register).
                if let Instr::Load { base, .. } = instr {
                    for &spc in &loop_pcs {
                        if pcs.contains(&spc) {
                            continue;
                        }
                        if let Some(Instr::Store { base: sbase, src, .. }) = program.fetch(spc) {
                            if sbase == base {
                                pcs.insert(spc);
                                demand.insert(src);
                                demand.insert(sbase);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Live-ins: demanded registers not defined by any slice instruction.
    let defined: BTreeSet<Reg> = pcs.iter().filter_map(|&pc| program.fetch(pc).and_then(|i| i.dest())).collect();
    let live_ins = demand.difference(&defined).copied().collect();
    Slice { branch_pc, pcs, live_ins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use crate::loops::find_loops;
    use cfd_isa::Assembler;

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// soplex-like loop: load test[i], compare, branch; CD region updates
    /// other arrays.
    fn soplex_like() -> (Program, Cfg, NaturalLoop, u32) {
        let (i, n, base, x, eps, p, tmp, out) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(eps, 50);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp); // x = test[i]
        a.slt(p, x, eps); // p = x < eps
        let branch_pc = a.here();
        a.beqz(p, "skip");
        // CD region: store to an unrelated array
        a.sd(x, 0x8000, i);
        a.addi(out, out, 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        let lp = loops.into_iter().next().unwrap();
        (program, cfg, lp, branch_pc)
    }

    #[test]
    fn slice_contains_predicate_computation_only() {
        let (program, cfg, lp, branch_pc) = soplex_like();
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        // Slice: sll, add, ld, slt, and the induction addi (i feeds tmp).
        assert!(s.pcs.contains(&(branch_pc - 1)), "slt in slice");
        assert!(s.pcs.contains(&(branch_pc - 2)), "ld in slice");
        // CD-region instructions must NOT be in the slice.
        assert!(!s.pcs.contains(&(branch_pc + 1)), "CD store not in slice");
        assert!(!s.pcs.contains(&(branch_pc + 2)), "CD addi not in slice");
    }

    #[test]
    fn live_ins_are_loop_invariants() {
        let (program, cfg, lp, branch_pc) = soplex_like();
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        // eps (r5) and base (r3) are defined outside the loop.
        assert!(s.live_ins.contains(&r(5)));
        assert!(s.live_ins.contains(&r(3)));
    }

    #[test]
    fn loop_carried_dependence_is_found() {
        // p depends on acc which the CD region updates (partial separability).
        let (i, n, acc, p) = (r(1), r(2), r(3), r(4));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.label("top");
        a.slt(p, acc, n); // predicate depends on acc
        let branch_pc = a.here();
        a.beqz(p, "skip");
        a.addi(acc, acc, 1); // CD instruction feeding the slice next iteration
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let lp = find_loops(&cfg, &dom).into_iter().next().unwrap();
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        assert!(s.pcs.contains(&(branch_pc + 1)), "CD addi feeds the slice via acc");
    }

    #[test]
    fn store_aliasing_heuristic() {
        // Slice load and a loop store share a base register -> dependence.
        let (i, n, base, x, p, v) = (r(1), r(2), r(3), r(4), r(5), r(6));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.label("top");
        a.ld(x, 0, base);
        a.slt(p, x, n);
        let branch_pc = a.here();
        a.beqz(p, "skip");
        a.sd(v, 8, base); // same base register as the slice load
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let lp = find_loops(&cfg, &dom).into_iter().next().unwrap();
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        assert!(s.pcs.contains(&(branch_pc + 1)), "aliasing store joins the slice");
    }
}
