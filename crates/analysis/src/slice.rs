//! Backward slices of branches within loops.
//!
//! The backward slice of a branch, restricted to its enclosing loop, is the
//! set of loop instructions that (transitively) produce the branch's source
//! registers — the paper's "branch slice" / predicate computation. Memory
//! dependences consult the sound address-range oracle
//! ([`MemDep`](crate::mdep::MemDep)) first: a store proven disjoint from a
//! slice load is skipped, a store with a bounded overlapping footprint
//! joins the slice, and only pairs the oracle cannot bound fall back to
//! the register-granularity heuristic (same base register, not redefined
//! between the two references).

use crate::loops::NaturalLoop;
use crate::mdep::{AliasVerdict, MemDep};
use cfd_isa::{AluOp, Instr, Program, Reg, Src2};
use std::collections::BTreeSet;

use crate::cfg::Cfg;

/// A branch's backward slice within a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// PC of the branch the slice feeds.
    pub branch_pc: u32,
    /// PCs of slice instructions (the branch itself excluded).
    pub pcs: BTreeSet<u32>,
    /// Registers demanded from outside the loop (live-ins of the slice).
    pub live_ins: BTreeSet<Reg>,
}

/// How load/store dependences are resolved while slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasMode {
    /// Register-name heuristic only (the paper's baseline tier).
    Heuristic,
    /// Address-range oracle first, heuristic for unresolvable pairs.
    Precise,
}

fn sources_of(instr: &Instr) -> Vec<Reg> {
    let (a, b) = instr.sources();
    let mut v = Vec::new();
    if let Some(r) = a {
        if !r.is_zero() {
            v.push(r);
        }
    }
    if let Some(r) = b {
        if !r.is_zero() {
            v.push(r);
        }
    }
    v
}

/// Whether the register-name match between a load and a store at
/// `(a_pc, b_pc)` survives: a redefinition of `base` between the two
/// references (program order) means they read *different* pointer
/// values, so the name carries no alias information. A plain
/// self-increment `add base, base, imm` is exempt — a strided pointer
/// walk keeps the references in the same stream across iterations.
fn name_match_valid(program: &Program, loop_pcs: &[u32], base: Reg, a_pc: u32, b_pc: u32) -> bool {
    let (lo, hi) = (a_pc.min(b_pc), a_pc.max(b_pc));
    !loop_pcs.iter().any(|&pc| {
        if pc <= lo || pc >= hi {
            return false;
        }
        let instr = program.fetch(pc).expect("in range");
        if instr.dest() != Some(base) {
            return false;
        }
        !matches!(
            instr,
            Instr::Alu { op: AluOp::Add, rd, rs1, src2: Src2::Imm(_) } if rd == rs1
        )
    })
}

/// Computes the backward slice of the conditional branch at `branch_pc`
/// within `lp`, iterating to a fixpoint over loop-carried dependences.
/// Memory dependences use [`AliasMode::Precise`].
pub fn backward_slice(program: &Program, cfg: &Cfg, lp: &NaturalLoop, branch_pc: u32) -> Slice {
    backward_slice_with(program, cfg, lp, branch_pc, AliasMode::Precise)
}

/// [`backward_slice`] with an explicit alias-resolution mode.
pub fn backward_slice_with(program: &Program, cfg: &Cfg, lp: &NaturalLoop, branch_pc: u32, mode: AliasMode) -> Slice {
    let loop_pcs: Vec<u32> =
        lp.blocks.iter().filter(|&&b| b < cfg.len() - 1).flat_map(|&b| cfg.blocks[b].pcs()).collect();
    let branch = program.fetch(branch_pc).expect("branch pc in range");
    let mut demand: BTreeSet<Reg> = sources_of(&branch).into_iter().collect();
    let mut pcs: BTreeSet<u32> = BTreeSet::new();
    let oracle = match mode {
        AliasMode::Heuristic => None,
        AliasMode::Precise => Some(MemDep::analyze(program, cfg, lp)),
    };

    // Fixpoint: a pass adds any loop instruction writing a demanded register
    // and folds its sources into the demand set. Loads add may-alias stores.
    loop {
        let mut changed = false;
        for &pc in &loop_pcs {
            if pc == branch_pc || pcs.contains(&pc) {
                continue;
            }
            let instr = program.fetch(pc).expect("in range");
            let writes_demanded = instr.dest().is_some_and(|d| demand.contains(&d));
            if writes_demanded {
                pcs.insert(pc);
                for s in sources_of(&instr) {
                    demand.insert(s);
                }
                changed = true;
                if let Instr::Load { base, .. } = instr {
                    for &spc in &loop_pcs {
                        if pcs.contains(&spc) {
                            continue;
                        }
                        let Some(Instr::Store { base: sbase, src, .. }) = program.fetch(spc) else {
                            continue;
                        };
                        let joins = match oracle.as_ref().map(|o| o.verdict(pc, spc)) {
                            Some(AliasVerdict::ProvenDisjoint) => false,
                            Some(AliasVerdict::MayAlias) => true,
                            // Unresolvable (or heuristic mode): fall back to
                            // the register-name heuristic.
                            Some(AliasVerdict::Unknown) | None => {
                                sbase == base && name_match_valid(program, &loop_pcs, base, pc, spc)
                            }
                        };
                        if joins {
                            pcs.insert(spc);
                            demand.insert(src);
                            demand.insert(sbase);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Live-ins: demanded registers not defined by any slice instruction.
    let defined: BTreeSet<Reg> = pcs.iter().filter_map(|&pc| program.fetch(pc).and_then(|i| i.dest())).collect();
    let live_ins = demand.difference(&defined).copied().collect();
    Slice { branch_pc, pcs, live_ins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use crate::loops::find_loops;
    use cfd_isa::Assembler;

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    fn prep(program: &Program) -> (Cfg, NaturalLoop) {
        let cfg = Cfg::build(program);
        let dom = DomTree::dominators(&cfg);
        let lp = find_loops(&cfg, &dom).into_iter().next().unwrap();
        (cfg, lp)
    }

    /// soplex-like loop: load test[i], compare, branch; CD region updates
    /// other arrays.
    fn soplex_like() -> (Program, Cfg, NaturalLoop, u32) {
        let (i, n, base, x, eps, p, tmp, out) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(eps, 50);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp); // x = test[i]
        a.slt(p, x, eps); // p = x < eps
        let branch_pc = a.here();
        a.beqz(p, "skip");
        // CD region: store to an unrelated array
        a.sd(x, 0x8000, i);
        a.addi(out, out, 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let cfg = Cfg::build(&program);
        let dom = DomTree::dominators(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        let lp = loops.into_iter().next().unwrap();
        (program, cfg, lp, branch_pc)
    }

    #[test]
    fn slice_contains_predicate_computation_only() {
        let (program, cfg, lp, branch_pc) = soplex_like();
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        // Slice: sll, add, ld, slt, and the induction addi (i feeds tmp).
        assert!(s.pcs.contains(&(branch_pc - 1)), "slt in slice");
        assert!(s.pcs.contains(&(branch_pc - 2)), "ld in slice");
        // CD-region instructions must NOT be in the slice.
        assert!(!s.pcs.contains(&(branch_pc + 1)), "CD store not in slice");
        assert!(!s.pcs.contains(&(branch_pc + 2)), "CD addi not in slice");
    }

    #[test]
    fn live_ins_are_loop_invariants() {
        let (program, cfg, lp, branch_pc) = soplex_like();
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        // eps (r5) and base (r3) are defined outside the loop.
        assert!(s.live_ins.contains(&r(5)));
        assert!(s.live_ins.contains(&r(3)));
    }

    #[test]
    fn loop_carried_dependence_is_found() {
        // p depends on acc which the CD region updates (partial separability).
        let (i, n, acc, p) = (r(1), r(2), r(3), r(4));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.label("top");
        a.slt(p, acc, n); // predicate depends on acc
        let branch_pc = a.here();
        a.beqz(p, "skip");
        a.addi(acc, acc, 1); // CD instruction feeding the slice next iteration
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, lp) = prep(&program);
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        assert!(s.pcs.contains(&(branch_pc + 1)), "CD addi feeds the slice via acc");
    }

    /// The pointer-chasing shape that keeps the heuristic alive: the base
    /// is itself loaded from memory, so no address is resolvable.
    fn pointer_kernel() -> (Program, u32) {
        let (i, n, head, base, x, p, v) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(head, 0x1000);
        a.label("top");
        a.ld(base, 0, head); // base = *head: statically unknown
        a.ld(x, 0, base);
        a.slt(p, x, n);
        let branch_pc = a.here();
        a.beqz(p, "skip");
        a.sd(v, 8, base); // same base register as the slice load
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        (a.finish().unwrap(), branch_pc)
    }

    #[test]
    fn store_aliasing_heuristic() {
        // Both addresses are unresolvable: the register-name heuristic
        // (same base, no intervening redefinition) adds the dependence.
        let (program, branch_pc) = pointer_kernel();
        let (cfg, lp) = prep(&program);
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        assert!(s.pcs.contains(&(branch_pc + 1)), "aliasing store joins the slice");
        // The heuristic-only mode agrees.
        let h = backward_slice_with(&program, &cfg, &lp, branch_pc, AliasMode::Heuristic);
        assert!(h.pcs.contains(&(branch_pc + 1)));
    }

    #[test]
    fn base_redefinition_invalidates_name_match() {
        // The base register is overwritten with an unrelated pointer
        // between the slice load and the store: the name match means
        // nothing and must not create a dependence.
        let (i, n, head, base, x, p, v, other) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(head, 0x1000);
        a.label("top");
        a.ld(base, 0, head);
        a.ld(x, 0, base); // slice load through the old base
        a.slt(p, x, n);
        let branch_pc = a.here();
        a.beqz(p, "skip");
        a.ld(other, 8, head);
        a.add(base, other, i); // base redefined: different pointer now
        a.sd(v, 8, base); // name-equal, but a different stream
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, lp) = prep(&program);
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        assert!(!s.pcs.contains(&(branch_pc + 3)), "redefined-base store must not join the slice");
        // A strided self-increment is exempt: it keeps the stream.
        let (program2, branch_pc2) = {
            let mut a = Assembler::new();
            a.li(n, 100);
            a.li(head, 0x1000);
            a.label("top");
            a.ld(base, 0, head);
            a.ld(x, 0, base);
            a.slt(p, x, n);
            let bpc = a.here();
            a.beqz(p, "skip");
            a.addi(base, base, 8); // strided walk, same stream
            a.sd(v, 0, base);
            a.label("skip");
            a.addi(i, i, 1);
            a.blt(i, n, "top");
            a.halt();
            (a.finish().unwrap(), bpc)
        };
        let (cfg2, lp2) = prep(&program2);
        let s2 = backward_slice(&program2, &cfg2, &lp2, branch_pc2);
        assert!(s2.pcs.contains(&(branch_pc2 + 2)), "strided store stays a dependence");
    }

    #[test]
    fn precise_oracle_drops_proven_disjoint_store() {
        // Same base register, but the store writes a provably disjoint
        // range (one full array above the scanned row): under the old
        // name heuristic this store joined the slice; the address-range
        // oracle proves it cannot alias on any pair of iterations.
        let (i, n, base, x, p, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.slt(p, x, n);
        let branch_pc = a.here();
        a.beqz(p, "skip");
        a.sd(x, 8 * 100, tmp); // same base register, disjoint range
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, lp) = prep(&program);
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        assert!(!s.pcs.contains(&(branch_pc + 1)), "proven-disjoint store stays out of the slice");
        let h = backward_slice_with(&program, &cfg, &lp, branch_pc, AliasMode::Heuristic);
        assert!(h.pcs.contains(&(branch_pc + 1)), "the heuristic tier still entangles it");
    }

    #[test]
    fn precise_oracle_adds_cross_name_overlap() {
        // Different base registers, overlapping resolved ranges: the name
        // heuristic misses the dependence, the oracle does not.
        let (i, n, base, base2, x, p, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut a = Assembler::new();
        a.li(n, 100);
        a.li(base, 0x1000);
        a.li(base2, 0x1100); // overlaps [0x1000, 0x1318]
        a.li(i, 0);
        a.label("top");
        a.sll(tmp, i, 3i64);
        a.add(tmp, tmp, base);
        a.ld(x, 0, tmp);
        a.slt(p, x, n);
        let branch_pc = a.here();
        a.beqz(p, "skip");
        a.sd(x, 0, base2); // different register, aliasing address
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let (cfg, lp) = prep(&program);
        let s = backward_slice(&program, &cfg, &lp, branch_pc);
        assert!(s.pcs.contains(&(branch_pc + 1)), "overlapping store joins despite the name mismatch");
        let h = backward_slice_with(&program, &cfg, &lp, branch_pc, AliasMode::Heuristic);
        assert!(!h.pcs.contains(&(branch_pc + 1)), "the name heuristic alone misses it");
    }
}
