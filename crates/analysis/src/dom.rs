//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

use crate::cfg::Cfg;

/// An immediate-dominator tree over CFG blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; `idom[root] == root`.
    idom: Vec<usize>,
    root: usize,
}

impl DomTree {
    /// Computes the dominator tree rooted at the CFG entry.
    pub fn dominators(cfg: &Cfg) -> DomTree {
        let succs: Vec<&[usize]> = cfg.blocks.iter().map(|b| b.succs.as_slice()).collect();
        let preds: Vec<&[usize]> = cfg.blocks.iter().map(|b| b.preds.as_slice()).collect();
        Self::compute(cfg.len(), cfg.entry(), &succs, &preds)
    }

    /// Computes the post-dominator tree rooted at the virtual exit
    /// (dominators of the reversed CFG).
    pub fn post_dominators(cfg: &Cfg) -> DomTree {
        let succs: Vec<&[usize]> = cfg.blocks.iter().map(|b| b.preds.as_slice()).collect();
        let preds: Vec<&[usize]> = cfg.blocks.iter().map(|b| b.succs.as_slice()).collect();
        Self::compute(cfg.len(), cfg.exit(), &succs, &preds)
    }

    fn compute(n: usize, root: usize, succs: &[&[usize]], preds: &[&[usize]]) -> DomTree {
        // Reverse postorder from `root` over `succs`.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        seen[root] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < succs[node].len() {
                let next = succs[node][*idx];
                *idx += 1;
                if !seen[next] {
                    seen[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_num[b] = i;
        }

        const UNDEF: usize = usize::MAX;
        let mut idom = vec![UNDEF; n];
        idom[root] = root;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom = UNDEF;
                for &p in preds[b] {
                    if idom[p] != UNDEF {
                        new_idom = if new_idom == UNDEF { p } else { Self::intersect(&idom, &rpo_num, p, new_idom) };
                    }
                }
                if new_idom != UNDEF && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // Unreachable nodes dominate themselves (defensive).
        for (b, d) in idom.iter_mut().enumerate() {
            if *d == UNDEF {
                *d = b;
            }
        }
        DomTree { idom, root }
    }

    fn intersect(idom: &[usize], rpo_num: &[usize], mut a: usize, mut b: usize) -> usize {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a];
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b];
            }
        }
        a
    }

    /// The immediate dominator of `b` (`b` itself for the root).
    pub fn idom(&self, b: usize) -> usize {
        self.idom[b]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            if x == self.root || self.idom[x] == x {
                return a == x;
            }
            x = self.idom[x];
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: usize, b: usize) -> bool {
        a != b && self.dominates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_isa::{Assembler, Reg};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    fn diamond_cfg() -> Cfg {
        let mut a = Assembler::new();
        a.beqz(r(1), "else");
        a.addi(r(2), r(2), 1);
        a.j("join");
        a.label("else");
        a.addi(r(2), r(2), 2);
        a.label("join");
        a.halt();
        Cfg::build(&a.finish().unwrap())
    }

    #[test]
    fn diamond_dominators() {
        let cfg = diamond_cfg();
        let dom = DomTree::dominators(&cfg);
        let head = cfg.block_of(0);
        let then_b = cfg.block_of(1);
        let else_b = cfg.block_of(3);
        let join = cfg.block_of(4);
        assert!(dom.dominates(head, then_b));
        assert!(dom.dominates(head, else_b));
        assert!(dom.dominates(head, join));
        assert!(!dom.dominates(then_b, join), "join reached around then");
        assert_eq!(dom.idom(join), head);
    }

    #[test]
    fn diamond_post_dominators() {
        let cfg = diamond_cfg();
        let pdom = DomTree::post_dominators(&cfg);
        let head = cfg.block_of(0);
        let then_b = cfg.block_of(1);
        let join = cfg.block_of(4);
        assert!(pdom.dominates(join, head));
        assert!(pdom.dominates(join, then_b));
        assert!(!pdom.dominates(then_b, head), "then is skippable");
        assert_eq!(pdom.idom(head), join);
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut a = Assembler::new();
        a.li(r(2), 10);
        a.label("top");
        a.addi(r(1), r(1), 1);
        a.beqz(r(3), "skip");
        a.addi(r(4), r(4), 1);
        a.label("skip");
        a.blt(r(1), r(2), "top");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let dom = DomTree::dominators(&cfg);
        let top = cfg.block_of(1);
        let body = cfg.block_of(3);
        let latch = cfg.block_of(4);
        assert!(dom.dominates(top, body));
        assert!(dom.dominates(top, latch));
        assert!(dom.strictly_dominates(top, latch));
    }

    #[test]
    fn straightline_chain() {
        let mut a = Assembler::new();
        a.addi(r(1), r(1), 1);
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        let dom = DomTree::dominators(&cfg);
        assert!(dom.dominates(cfg.entry(), cfg.exit()));
        let pdom = DomTree::post_dominators(&cfg);
        assert!(pdom.dominates(cfg.exit(), cfg.entry()));
    }
}
